//! # proptest (vendored shim)
//!
//! A dependency-light stand-in for the slice of the proptest API the
//! `geom` property tests use: `Strategy` with `prop_map`, range and
//! tuple strategies, `collection::vec`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Each property runs a fixed
//! number of deterministic cases (no shrinking — a failing case prints
//! its assertion like a plain test).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Number of generated cases per property.
pub const CASES: usize = 128;

/// The per-test random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator for the property named `name`.
    pub fn for_test(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn i64_in(&mut self, r: Range<i64>) -> i64 {
        self.0.random_range(r)
    }

    fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.0.random_range(r)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.i64_in(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs [`CASES`] times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property (plain `assert!` semantics in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality (plain `assert_eq!` semantics in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 10i64..20)
    }

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in -50i64..50, (a, b) in arb_pair()) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(a < b, "{a} {b}");
        }

        #[test]
        fn mapped_vecs_respect_length(v in collection::vec((0i64..5).prop_map(|x| x * 2), 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert_eq!(v.iter().filter(|x| **x % 2 != 0).count(), 0);
        }
    }
}
