//! # criterion (vendored shim)
//!
//! A minimal, dependency-free stand-in for the slice of the Criterion
//! API the `bench` crate uses (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the two entry macros). It
//! measures wall-clock means over a fixed sample count and prints one
//! line per benchmark — enough to compare the paper's performance
//! dimensions without the statistics machinery of the real crate.

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up call, then `sample_size` timed
    /// iterations, reporting the mean.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("{}/{id}: mean {mean:?} over {} iters", self.name, b.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called once for warm-up and `sample_size` times
    /// measured.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// Declares a function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // One warm-up + five timed.
        assert_eq!(calls, 6);
    }
}
