//! # rand (vendored shim)
//!
//! A dependency-free stand-in for the small slice of the `rand` crate
//! API this workspace uses: `Rng`/`RngExt` with `random_range`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng`. The build is fully
//! offline, so the real crate cannot be fetched; the generator here is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms and statistically strong enough for the Monte Carlo
//! experiments in `defect`.

use std::ops::{Range, RangeInclusive};

/// A raw generator of uniformly distributed 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range sampling on top of any [`Rng`] (mirrors `rand`'s
/// `Rng::random_range`, split into an extension trait so the base trait
/// stays object-safe).
pub trait RngExt: Rng {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire-style
/// reduction without the rejection loop; the bias is < 2⁻⁶⁴·span and
/// irrelevant at the sample counts used here).
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(below(rng, span) as i64)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(below(rng, span + 1) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(takes_dynish(&mut rng) < 10);
    }
}
