//! # cat — the complete LIFT + AnaFAULT reproduction, one roof
//!
//! An umbrella crate re-exporting the whole Computer-Aided Test system
//! of *"Automatic Fault Extraction and Simulation of Layout Realistic
//! Faults for Integrated Analogue Circuits"* (Sebeke, Teixeira, Ohletz
//! — DATE 1995):
//!
//! | crate | role |
//! |---|---|
//! | [`geom`] | Manhattan geometry, boolean regions, spatial index |
//! | [`layout`] | layers, technology rules, cells, GDSII |
//! | [`extract`] | layout → transistor netlist, LVS |
//! | [`defect`] | Tab. 1 mechanisms, defect sizes, critical areas |
//! | [`spice`] | MNA kernel simulator (DC, transient, MOS level-1) |
//! | [`lift`] | realistic fault extraction (GLRFM) |
//! | [`anafault`] | fault models, injection, campaigns, coverage |
//! | [`diagnose`] | fault dictionaries, ambiguity classes, waveform matching |
//! | [`cat_core`] | the linked flow, Fig. 1 funnel, L²RFM |
//! | [`vco`] | the paper's 26-transistor evaluation circuit |
//!
//! ```no_run
//! use cat::prelude::*;
//!
//! // Extraction + LIFT run once per design …
//! let (flat, tech) = cat::vco::vco_layout();
//! let sys = CatSystem::from_layout(
//!     &flat, &tech,
//!     &ExtractOptions::default(),
//!     &LiftOptions::default(),
//! )?;
//! assert_eq!(sys.netlist.mosfets.len(), 26);
//!
//! // … then campaigns are configured through the builder and stream
//! // one progress event per completed fault.
//! let mut tb = sys.circuit.clone();
//! cat::vco::attach_sources(&mut tb, &cat::vco::TestbenchParams::default());
//! let campaign = sys
//!     .campaign_builder()
//!     .testbench(tb)
//!     .tran(TranSpec::new(10e-9, 4e-6).with_uic())
//!     .observe(cat::vco::OBSERVED_NODE) // repeat to probe more pins
//!     .early_stop(true)                 // drop faults once detected
//!     .build()?;
//! let result = sys.simulate_with_progress(&campaign, |p| {
//!     eprintln!("{}/{} {}", p.completed, p.total, p.record.fault);
//! })?;
//! println!("{}", cat::anafault::protocol::to_json(&result));
//! # Ok::<(), cat::cat_core::CatError>(())
//! ```
//!
//! Every fallible step above funnels into [`cat_core::CatError`]. The
//! pre-0.2 positional entry points (`CatSystem::campaign`,
//! `CatSystem::run_campaign`) remain as `#[deprecated]` shims for one
//! release — see `cat_core::flow` for the migration table.

pub use anafault;
pub use cat_core;
pub use cat_telemetry;
pub use defect;
pub use diagnose;
pub use extract;
pub use geom;
pub use layout;
pub use lift;
pub use spice;
pub use vco;

/// The names most flows need.
pub mod prelude {
    pub use anafault::{
        Campaign, CampaignBuilder, CampaignProgress, CampaignReport, CampaignResult,
        CampaignTelemetry, DetectionSpec, Fault, FaultEffect, FaultTelemetry, HardFaultModel,
    };
    pub use cat_core::{CatError, CatSystem, FaultFunnel};
    pub use defect::{MechanismTable, SizeDistribution};
    pub use extract::ExtractOptions;
    pub use layout::{Cell, CellBuilder, Layer, Library, Technology};
    pub use lift::{LiftOptions, LiftResult};
    pub use spice::tran::{tran, TranSpec};
    pub use spice::{Circuit, Wave};
}
