//! The LIFT → AnaFAULT interface: the textual fault list must round
//! trip and drive the simulator to identical outcomes ("the fault list
//! obtained from LIFT is merged into the configuration file").

use anafault::faultlist::{read_fault_list, write_fault_list};
use anafault::{DetectionSpec, FaultOutcome, HardFaultModel};
use cat::prelude::*;

#[test]
fn lift_list_round_trips_through_text() {
    let (sys, _) = bench::vco_system();
    let faults = sys.fault_list();
    let text = write_fault_list(&faults);
    let back = read_fault_list(&text).expect("parses");
    assert_eq!(faults.len(), back.len());
    for (a, b) in faults.iter().zip(&back) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.label, b.label);
        assert_eq!(a.effect, b.effect);
    }
}

#[test]
fn campaign_outcomes_identical_through_the_file_format() {
    let (sys, tb) = bench::vco_system();
    let direct: Vec<Fault> = sys.fault_list().into_iter().take(8).collect();
    let text = write_fault_list(&direct);
    let reread = read_fault_list(&text).expect("parses");

    let campaign = sys
        .campaign_builder()
        .testbench(tb)
        .tran(bench::paper_tran())
        .observe(vco::OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .build()
        .expect("complete configuration");
    let r1 = campaign.run(&direct).expect("runs");
    let r2 = campaign.run(&reread).expect("runs");
    let o1: Vec<&FaultOutcome> = r1.records.iter().map(|r| &r.outcome).collect();
    let o2: Vec<&FaultOutcome> = r2.records.iter().map(|r| &r.outcome).collect();
    assert_eq!(o1, o2);
}

#[test]
fn every_lift_fault_injects_into_the_extracted_circuit() {
    let (sys, tb) = bench::vco_system();
    for fault in sys.fault_list() {
        let faulty = anafault::inject(&tb, &fault, HardFaultModel::paper_resistor());
        assert!(
            faulty.is_ok(),
            "#{} {}: {:?}",
            fault.id,
            fault.label,
            faulty.err()
        );
        // Element/node bookkeeping stays consistent.
        assert!(faulty.expect("injected").validate().is_ok());
    }
}

#[test]
fn split_node_orders_add_up() {
    // Paper Fig. 2: a split node turns a node of order n into nodes of
    // order k and n-k. Verify on every split-node fault LIFT emits.
    let (sys, tb) = bench::vco_system();
    let mut checked = 0;
    for f in sys.fault_list() {
        let FaultEffect::SplitNode {
            ref node,
            ref move_terminals,
        } = f.effect
        else {
            continue;
        };
        let node_id = tb.find_node(node).expect("node exists");
        let n = tb.node_order(node_id);
        let k = move_terminals.len();
        assert!(k >= 1 && k < n, "split of order-{n} node moves {k}");
        let faulty = anafault::inject(&tb, &f, HardFaultModel::paper_resistor()).expect("injects");
        // After injection: old node keeps n-k attachments (+1 for the
        // bridging open-model resistor), new node has k (+1).
        let old_order = faulty.node_order(faulty.find_node(node).expect("kept"));
        assert_eq!(old_order, n - k + 1);
        checked += 1;
    }
    // The current LIFT list may keep zero split nodes above threshold;
    // fall back to a constructed one so the invariant is always
    // exercised.
    if checked == 0 {
        // In the extracted circuit C1's terminal 1 is the top plate on
        // net 6 (terminal 0 is the grounded bottom plate).
        let f = Fault::new(
            999,
            "OPN synthetic split 6",
            FaultEffect::SplitNode {
                node: "6".into(),
                move_terminals: vec![("C1".into(), 1)],
            },
        );
        let n = tb.node_order(tb.find_node("6").expect("node 6"));
        let faulty = anafault::inject(&tb, &f, HardFaultModel::paper_resistor()).expect("injects");
        assert_eq!(
            faulty.node_order(faulty.find_node("6").expect("kept")),
            n - 1 + 1
        );
    }
}
