//! End-to-end integration: the full paper flow from generated layout
//! through GDSII, extraction, LVS, LIFT and a fault-simulation
//! campaign, asserting the paper's §VI numbers (within documented
//! tolerances — see EXPERIMENTS.md).

use cat::prelude::*;
use extract::lvs::{compare, CanonNetlist};
use lift::schematic::schematic_faults;

#[test]
fn paper_section_vi_fault_counts() {
    let sch = schematic_faults(&vco::vco_schematic());
    // "From the schematic 78 possible single open faults can be assumed
    //  on the transistors and one open fault on the capacitor."
    assert_eq!(sch.opens.len(), 79);
    // "Thus, the number of shorts is 73, including the short on the
    //  capacitor."
    assert_eq!(sch.shorts.len(), 73);
    assert_eq!(sch.skipped_designed_shorts, 6);
    assert_eq!(sch.total(), 152);
}

#[test]
fn lift_reduction_matches_paper_shape() {
    let report = bench::lift_reduction();
    let s = &report.lift.stats;
    // Paper: 70 extracted failures, 53 % reduction. Exact counts depend
    // on the layout; the shape requirement is a reduction around half
    // with bridges as the largest class.
    assert!(
        (60..=85).contains(&s.total()),
        "extracted {} faults",
        s.total()
    );
    let red = report.reduction_percent();
    assert!((44.0..=62.0).contains(&red), "reduction {red} %");
    assert!(
        s.bridges >= s.stuck_opens && s.bridges > s.line_opens,
        "bridging must dominate: {s:?}"
    );
    // Every kept fault is at least as likely as the threshold.
    for f in &report.lift.faults {
        assert!(f.probability >= 3e-8);
    }
}

#[test]
fn gds_roundtrip_extraction_lvs() {
    let (lib, tech) = vco::vco_library();
    let bytes = layout::gds::write_library(&lib).expect("gds writes");
    let lib2 = layout::gds::read_library(&bytes).expect("gds reads");
    let flat = lib2.flatten("vco").expect("flattens");
    let netlist = extract::extract(&flat, &tech, &ExtractOptions::default()).expect("extracts");
    assert_eq!(netlist.mosfets.len(), 26);
    assert_eq!(netlist.capacitors.len(), 1);
    let report = compare(
        &CanonNetlist::from_extracted(&netlist),
        &CanonNetlist::from_circuit(&vco::vco_schematic()),
        &["vdd", "0", "1", "11"],
    );
    assert!(report.matched, "{:?}", report.mismatches);
    // Name correspondence survives the flow (x-major extraction order
    // matches the schematic's column order).
    assert!(report.pairing.iter().any(|(l, s)| l == "M11" && s == "M11"));
}

#[test]
fn campaign_on_top_faults_detects_most() {
    let (sys, tb) = bench::vco_system();
    // The fault budget keeps the 12 most probable faults — LIFT's list
    // arrives ranked.
    let campaign = sys
        .campaign_builder()
        .testbench(tb)
        .tran(bench::paper_tran())
        .observe(vco::OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .max_faults(12)
        .build()
        .expect("complete configuration");
    let result = sys.simulate(&campaign).expect("nominal simulates");
    assert_eq!(result.records.len(), 12);
    assert!(
        result.final_coverage() >= 75.0,
        "top-probability faults are gross defects; coverage {}",
        result.final_coverage()
    );
    assert!(result.failures().is_empty(), "{:?}", result.failures());
}

#[test]
fn funnel_narrows_monotonically() {
    let funnel = bench::fault_funnel();
    let counts: Vec<usize> = funnel.stages.iter().map(|s| s.count).collect();
    assert_eq!(counts.len(), 3);
    assert!(
        counts[0] >= counts[1] && counts[1] >= counts[2],
        "{counts:?}"
    );
    assert_eq!(counts[0], 152);
    assert!(funnel.total_reduction_percent() > 40.0);
}

#[test]
fn vco_layout_drc_classes_are_bounded() {
    use layout::{DrcRule, Layer};
    let (flat, tech) = vco::vco_layout();
    let violations = layout::drc_check(&flat, &tech);
    // Clean layers: no diffusion or well findings at all.
    assert!(
        violations
            .iter()
            .all(|v| v.layer != Layer::Active && v.layer != Layer::Nwell),
        "diffusion/well must be clean"
    );
    // Cut-spacing findings only come from the intentional doubled pairs:
    // their gap is exactly the cut surround (500 nm).
    for v in &violations {
        if v.layer.is_cut() && v.rule == DrcRule::MinSpacing {
            assert!(
                v.measured >= 450 && v.measured <= 1_100,
                "unexpected cut gap: {v}"
            );
        }
    }
    // No metal wire is drawn under-width.
    assert!(
        violations.iter().all(|v| !(v.rule == DrcRule::MinWidth
            && (v.layer == Layer::Metal1 || v.layer == Layer::Metal2))),
        "metal widths must be clean"
    );
}
