//! Integration tests for the telemetry layer: pattern sharing across a
//! full fig5-style campaign, and the NDJSON event stream parsing back
//! through the `anafault::protocol` reader.

use std::collections::HashSet;
use std::sync::Arc;

use anafault::{Campaign, DetectionSpec, HardFaultModel};
use cat_telemetry::{MemorySink, Registry};
use spice::devices::UnknownMap;
use spice::sparse::{pattern_coords, DENSE_CUTOFF};
use spice::tran::TranSpec;
use vco::OBSERVED_NODE;

/// The fig5 fault list shares symbolic patterns aggressively: a
/// campaign over all ~71 extracted faults must build **exactly one
/// pattern per distinct stamp topology** — every further fault on the
/// same topology is a cache hit. The expected topology count is
/// derived independently here by injecting each fault and collecting
/// its stamp coordinates into a set.
#[test]
fn fig5_campaign_builds_one_pattern_per_topology() {
    let (sys, tb) = bench::vco_system();
    let faults = sys.fault_list();
    assert!(
        faults.len() >= 60,
        "fig5 fault list unexpectedly small: {} faults",
        faults.len()
    );

    let model = HardFaultModel::paper_resistor();
    // Trimmed transient (40 output steps instead of 400) with fault
    // dropping: the cache invariants don't depend on test length, and
    // this keeps the debug-mode campaign to a few seconds.
    let campaign = Campaign::builder()
        .testbench(tb.clone())
        .tran(TranSpec::new(10e-9, 0.4e-6).with_uic())
        .observe(OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(model)
        .early_stop(true)
        .build()
        .expect("complete configuration");
    let result = campaign.run(&faults).expect("nominal run succeeds");

    // Independent ground truth: the distinct stamp-coordinate sets of
    // the nominal circuit plus every injectable, valid faulty circuit.
    // Injection failures and invalid circuits never reach the solver,
    // so they take no cache lookup.
    let mut distinct: HashSet<Vec<(u32, u32)>> = HashSet::new();
    let nominal_map = UnknownMap::new(&tb);
    assert!(
        nominal_map.dim() >= DENSE_CUTOFF,
        "the VCO testbench must use the sparse engine for this test to bite"
    );
    distinct.insert(pattern_coords(&tb, &nominal_map));
    let mut lookups = 1u64; // the nominal simulation
    for fault in &faults {
        let Ok(faulty) = anafault::inject(&tb, fault, model) else {
            continue;
        };
        if faulty.validate().is_err() {
            continue;
        }
        let map = UnknownMap::new(&faulty);
        distinct.insert(pattern_coords(&faulty, &map));
        lookups += 1;
    }

    let t = result.telemetry;
    assert_eq!(
        t.pattern_cache_misses as usize,
        distinct.len(),
        "exactly one symbolic analysis per distinct topology"
    );
    assert_eq!(
        t.pattern_cache_entries,
        distinct.len(),
        "every miss inserts exactly one cache entry"
    );
    assert_eq!(
        t.pattern_cache_hits,
        lookups - distinct.len() as u64,
        "every other lookup reuses a cached pattern"
    );
    // The whole point of the cache: topologies are far fewer than
    // simulations.
    assert!(
        (distinct.len() as u64) < t.pattern_cache_hits,
        "pattern sharing should dominate ({} topologies, {} hits)",
        distinct.len(),
        t.pattern_cache_hits
    );
    // Fault dropping fired on this trimmed run.
    assert!(t.early_stops > 0);
}

/// Every NDJSON event the telemetry sink emits — counters, histograms
/// with their bucket edges, nested spans — parses back through the
/// `anafault::protocol` JSON reader.
#[test]
fn ndjson_events_round_trip_through_protocol_parser() {
    let sink = Arc::new(MemorySink::new());
    cat_telemetry::set_sink(Some(sink.clone()));
    cat_telemetry::set_enabled(true);

    // A private registry keeps this test's counters isolated from
    // whatever other tests in this binary do to the global one.
    let reg = Registry::new();
    reg.counter("t.test.counter").add(7);
    let h = reg.histogram("t.test.hist", &[1.0, 10.0, 100.0]);
    // Edge-boundary values: a sample equal to an edge belongs to that
    // edge's bucket; one sample overflows past the last edge.
    for v in [0.5, 1.0, 10.0, 100.0, 1000.0] {
        h.record(v);
    }
    {
        let _outer = cat_telemetry::span!("t.test.outer");
        let _inner = cat_telemetry::span!("t.test.inner"); // depth 1
    }
    cat_telemetry::sink::emit_registry(&reg);
    cat_telemetry::set_sink(None);
    cat_telemetry::set_enabled(false);

    let lines = sink.lines();
    assert!(!lines.is_empty());
    let mut span_depths: HashSet<u64> = HashSet::new();
    let mut hist_checked = false;
    for line in &lines {
        let doc = anafault::protocol::parse_json(line)
            .unwrap_or_else(|e| panic!("NDJSON line must parse: {e}\n{line}"));
        match doc.field("type").unwrap().as_str().unwrap() {
            "counter" => {
                doc.field("name").unwrap().as_str().unwrap();
                doc.field("value").unwrap().as_u64().unwrap();
            }
            "histogram" => {
                let edges = doc.field("edges").unwrap().as_f64_array().unwrap();
                let counts = doc.field("counts").unwrap().as_array().unwrap();
                assert_eq!(
                    counts.len(),
                    edges.len() + 1,
                    "one bucket per edge plus the overflow bucket"
                );
                if doc.field("name").unwrap().as_str().unwrap() == "t.test.hist" {
                    assert_eq!(edges, vec![1.0, 10.0, 100.0]);
                    let counts: Vec<u64> = counts.iter().map(|c| c.as_u64().unwrap()).collect();
                    assert_eq!(counts, vec![2, 1, 1, 1]);
                    assert_eq!(doc.field("count").unwrap().as_u64().unwrap(), 5);
                    assert_eq!(doc.field("min").unwrap().as_f64().unwrap(), 0.5);
                    assert_eq!(doc.field("max").unwrap().as_f64().unwrap(), 1000.0);
                    hist_checked = true;
                }
            }
            "span" => {
                let seconds = doc.field("seconds").unwrap().as_f64().unwrap();
                assert!(seconds >= 0.0);
                span_depths.insert(doc.field("depth").unwrap().as_u64().unwrap());
            }
            other => panic!("unknown event type `{other}`"),
        }
    }
    assert!(hist_checked, "the test histogram must appear in the stream");
    assert!(
        span_depths.contains(&0) && span_depths.contains(&1),
        "nested spans must report their depths (saw {span_depths:?})"
    );

    // The counter event of the private registry made it through with
    // its value intact.
    let counter_line = lines
        .iter()
        .find(|l| l.contains("\"t.test.counter\""))
        .expect("counter event present");
    let doc = anafault::protocol::parse_json(counter_line).unwrap();
    assert_eq!(doc.field("value").unwrap().as_u64().unwrap(), 7);
}
