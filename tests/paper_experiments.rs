//! Shape-level checks of the paper's figures (the full regenerations
//! live in `crates/bench/src/bin`; these tests assert the qualitative
//! claims cheaply enough for CI).

use anafault::{DetectionSpec, HardFaultModel};
use cat::prelude::*;
use spice::SolverKind;

#[test]
fn fig4_fault_classes_behave_as_described() {
    let fig = bench::fig4_waveforms();
    // Fault-free output oscillates rail to rail.
    let f0 = fig.fault_free.frequency().expect("fault-free oscillates");
    assert!(fig.fault_free.amplitude() > 4.5);
    // The switch ds-short changes the frequency but keeps oscillating
    // ("at the first glance an increased oscillation would be
    //  attributed to some kind of soft rather than to a hard fault").
    let (label_ds, wave_ds) = &fig.f_ds;
    assert!(label_ds.contains("n_ds_short"));
    match wave_ds.frequency() {
        Some(f) => assert!(
            (f - f0).abs() / f0 > 0.2,
            "ds short must shift the frequency: {f0} -> {f}"
        ),
        None => panic!("ds short should keep oscillating"),
    }
    // The metal1 1->5 bridge kills the oscillation (constant output
    // after the first cycle).
    let (_, wave_m1) = &fig.f_m1;
    let late: Vec<f64> = wave_m1
        .times()
        .iter()
        .zip(wave_m1.values())
        .filter(|(t, _)| **t > 2e-6)
        .map(|(_, v)| *v)
        .collect();
    let swing = late.iter().copied().fold(f64::MIN, f64::max)
        - late.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        swing < 1.0,
        "1->5 short pins the output, late swing {swing}"
    );
}

#[test]
fn fig6_resistance_sweep_degrades_monotonically() {
    let sweep = bench::fig6_sweep(&[1000.0, 21.0, 1.0]);
    let amp: Vec<f64> = sweep.iter().map(|(_, w)| w.amplitude()).collect();
    // 1 kΩ barely visible, 21 Ω clearly degraded, 1 Ω dead.
    assert!(amp[0] > 4.0, "1 kΩ nearly nominal, got Vpp {}", amp[0]);
    assert!(amp[1] < amp[0], "21 Ω worse than 1 kΩ");
    assert!(
        amp[2] < 1.0,
        "1 Ω stops the oscillation, got Vpp {}",
        amp[2]
    );
    // And the 1 kΩ case still oscillates.
    assert!(sweep[0].1.frequency().is_some());
}

#[test]
fn fault_models_agree_on_outcomes() {
    // Paper: resistor and source model yield "nearly identical fault
    // coverage plots". Check outcome agreement on the top faults.
    let (sys, tb) = bench::vco_system();
    let faults: Vec<Fault> = sys.fault_list().into_iter().take(10).collect();
    let run = |model: HardFaultModel| {
        sys.campaign_builder()
            .testbench(tb.clone())
            .tran(bench::paper_tran())
            .observe(vco::OBSERVED_NODE)
            .detection(DetectionSpec::paper_fig5())
            .model(model)
            .build()
            .expect("complete configuration")
            .run(&faults)
            .expect("runs")
    };
    let r = run(HardFaultModel::paper_resistor());
    let s = run(HardFaultModel::Source);
    let detected = |result: &anafault::CampaignResult| -> Vec<bool> {
        result
            .records
            .iter()
            .map(|rec| matches!(rec.outcome, anafault::FaultOutcome::Detected { .. }))
            .collect()
    };
    assert_eq!(detected(&r), detected(&s), "models disagree");
}

#[test]
fn sparse_and_dense_solvers_agree_on_every_netlist() {
    // The pattern-reusing sparse engine must be a drop-in replacement
    // for the dense LU: on the DC-biased VCO and on fault-injected
    // variants, Newton converged through either backend must land on
    // the same operating point with |Δx| < 1e-9.
    //
    // The comparison polishes both backends from one common starting
    // point under a tight tolerance. (Raw single-solve solutions can
    // legitimately differ by ~cond·ε — a 0.01 Ω bridge over a gmin
    // path puts the condition number near 1e14, where *any* two pivot
    // orders disagree around 1e-8 — but Newton's fixed point does not
    // depend on the linear solver, so converged solutions must agree.)
    use spice::dcop::{solve_newton_in, NewtonOpts};
    use spice::devices::{StampParams, StampPlan, UnknownMap};
    use spice::MnaSolver;

    let (sys, _) = bench::vco_system();
    // DC-biased testbench (settled supply, mid-range control voltage):
    // a non-trivial operating point on every node.
    let tb = vco::vco_dc_testbench(&vco::TestbenchParams::default());

    let mut circuits = vec![("nominal".to_string(), tb.clone())];
    for f in sys.fault_list().into_iter().take(8) {
        let faulty = anafault::inject(&tb, &f, HardFaultModel::paper_resistor())
            .expect("paper faults inject cleanly");
        circuits.push((format!("#{} {}", f.id, f.label), faulty));
    }

    let mut compared = 0;
    for (label, ckt) in circuits {
        let map = UnknownMap::new(&ckt);
        let plan = StampPlan::new(&ckt).expect("models resolve");
        let x0 = match spice::dcop::dc_operating_point(&ckt) {
            Ok(x) => x,
            // Some hard faults genuinely defeat the operating-point
            // ladder; the verdict-identity test below covers those.
            Err(_) => continue,
        };
        let params = StampParams::default();
        // Tolerance ladder: each backend polishes at the tightest rung
        // it can reach. A bridge fault at condition ~1e14 (0.01 Ω short
        // over a gmin path) can stagnate just above the tightest dx
        // threshold under one pivot order and not the other — its
        // Newton stagnation floor (~2e-9) sits above the comparison
        // bar, so the 1e-9 assertion only applies when *both* backends
        // reach the tightest rung; the verdict-identity test below
        // still covers the stagnating fault end to end.
        let polish = |kind: SolverKind| {
            let mut solver = MnaSolver::for_circuit(&ckt, &map, kind, None);
            if kind == SolverKind::Sparse {
                assert!(
                    solver.is_sparse(),
                    "{label}: VCO systems take the sparse path"
                );
            }
            let ladder = [(1e-12, 1e-10), (1e-10, 1e-8), (1e-9, 1e-7)];
            for (rung, &(vabstol, reltol)) in ladder.iter().enumerate() {
                let opts = NewtonOpts {
                    vabstol,
                    reltol,
                    max_iter: 400,
                    ..NewtonOpts::default()
                };
                if let Ok((x, _)) =
                    solve_newton_in(&mut solver, &ckt, &map, &plan, &x0, &params, &opts, "agree")
                {
                    return Some((x, rung));
                }
            }
            None
        };
        match (polish(SolverKind::Dense), polish(SolverKind::Sparse)) {
            (Some((xd, 0)), Some((xs, 0))) => {
                let delta = xd
                    .iter()
                    .zip(&xs)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(delta < 1e-9, "{label}: |Δx| = {delta:e}");
                compared += 1;
            }
            (Some(_), Some(_)) => {} // a stagnating ill-conditioned fault
            (None, None) => {}       // both agree the point is unreachable
            (d, s) => panic!(
                "{label}: backends disagree about solvability: dense {} vs sparse {}",
                d.is_some(),
                s.is_some()
            ),
        }
    }
    assert!(compared >= 6, "only {compared} netlists compared");
}

#[test]
fn sparse_and_dense_campaigns_reach_identical_verdicts() {
    // The acceptance bar for the sparse engine: same fault verdicts as
    // the dense path on the Fig. 5 campaign settings (a 15-fault slice
    // keeps CI affordable; the full comparison lives in the fig5
    // binary).
    let (sys, tb) = bench::vco_system();
    let faults: Vec<Fault> = sys.fault_list().into_iter().take(15).collect();
    let run = |kind: SolverKind| {
        sys.campaign_builder()
            .testbench(tb.clone())
            .tran(bench::paper_tran_with_solver(kind))
            .observe(vco::OBSERVED_NODE)
            .detection(DetectionSpec::paper_fig5())
            .build()
            .expect("complete configuration")
            .run(&faults)
            .expect("runs")
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    for (d, s) in dense.records.iter().zip(&sparse.records) {
        let verdict = |o: &anafault::FaultOutcome| -> &'static str {
            match o {
                anafault::FaultOutcome::Detected { .. } => "detected",
                anafault::FaultOutcome::NotDetected => "not-detected",
                anafault::FaultOutcome::InjectionFailed(_) => "injection-failed",
                anafault::FaultOutcome::SimulationFailed(_) => "simulation-failed",
            }
        };
        assert_eq!(
            verdict(&d.outcome),
            verdict(&s.outcome),
            "fault #{} {}: dense {:?} vs sparse {:?}",
            d.fault.id,
            d.fault.label,
            d.outcome,
            s.outcome
        );
    }
}

#[test]
fn coverage_curve_is_monotone_and_saturates_early() {
    // A miniature Fig. 5: top 15 faults only (the full campaign runs in
    // the fig5 binary).
    let (sys, tb) = bench::vco_system();
    let faults: Vec<Fault> = sys.fault_list().into_iter().take(15).collect();
    let result = sys
        .campaign_builder()
        .testbench(tb)
        .tran(bench::paper_tran())
        .observe(vco::OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .build()
        .expect("complete configuration")
        .run(&faults)
        .expect("runs");
    let samples: Vec<f64> = (0..=40).map(|i| i as f64 * 1e-7).collect();
    let curve = result.coverage_curve(&samples);
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1, "coverage must not decrease");
    }
    // Detections concentrate in the earlier part of the record: all of
    // them land by 75 % of test time (the paper reports 55 % for its
    // layout; our measured full-campaign value is 69 %).
    let at_75 = curve
        .iter()
        .find(|(t, _)| *t >= 3e-6)
        .map(|(_, c)| *c)
        .expect("sample at 75 % time");
    assert_eq!(
        at_75,
        result.final_coverage(),
        "all detections land by 75 % of the test"
    );
    // And at least half the final coverage is reached by half time.
    let half = curve
        .iter()
        .find(|(t, _)| *t >= 2e-6)
        .map(|(_, c)| *c)
        .expect("sample at half time");
    assert!(
        half >= 0.5 * result.final_coverage(),
        "half {half}, final {}",
        result.final_coverage()
    );
}
