//! Shape-level checks of the paper's figures (the full regenerations
//! live in `crates/bench/src/bin`; these tests assert the qualitative
//! claims cheaply enough for CI).

use anafault::{DetectionSpec, HardFaultModel};
use cat::prelude::*;

#[test]
fn fig4_fault_classes_behave_as_described() {
    let fig = bench::fig4_waveforms();
    // Fault-free output oscillates rail to rail.
    let f0 = fig.fault_free.frequency().expect("fault-free oscillates");
    assert!(fig.fault_free.amplitude() > 4.5);
    // The switch ds-short changes the frequency but keeps oscillating
    // ("at the first glance an increased oscillation would be
    //  attributed to some kind of soft rather than to a hard fault").
    let (label_ds, wave_ds) = &fig.f_ds;
    assert!(label_ds.contains("n_ds_short"));
    match wave_ds.frequency() {
        Some(f) => assert!(
            (f - f0).abs() / f0 > 0.2,
            "ds short must shift the frequency: {f0} -> {f}"
        ),
        None => panic!("ds short should keep oscillating"),
    }
    // The metal1 1->5 bridge kills the oscillation (constant output
    // after the first cycle).
    let (_, wave_m1) = &fig.f_m1;
    let late: Vec<f64> = wave_m1
        .times()
        .iter()
        .zip(wave_m1.values())
        .filter(|(t, _)| **t > 2e-6)
        .map(|(_, v)| *v)
        .collect();
    let swing = late.iter().copied().fold(f64::MIN, f64::max)
        - late.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        swing < 1.0,
        "1->5 short pins the output, late swing {swing}"
    );
}

#[test]
fn fig6_resistance_sweep_degrades_monotonically() {
    let sweep = bench::fig6_sweep(&[1000.0, 21.0, 1.0]);
    let amp: Vec<f64> = sweep.iter().map(|(_, w)| w.amplitude()).collect();
    // 1 kΩ barely visible, 21 Ω clearly degraded, 1 Ω dead.
    assert!(amp[0] > 4.0, "1 kΩ nearly nominal, got Vpp {}", amp[0]);
    assert!(amp[1] < amp[0], "21 Ω worse than 1 kΩ");
    assert!(
        amp[2] < 1.0,
        "1 Ω stops the oscillation, got Vpp {}",
        amp[2]
    );
    // And the 1 kΩ case still oscillates.
    assert!(sweep[0].1.frequency().is_some());
}

#[test]
fn fault_models_agree_on_outcomes() {
    // Paper: resistor and source model yield "nearly identical fault
    // coverage plots". Check outcome agreement on the top faults.
    let (sys, tb) = bench::vco_system();
    let faults: Vec<Fault> = sys.fault_list().into_iter().take(10).collect();
    let run = |model: HardFaultModel| {
        sys.campaign_builder()
            .testbench(tb.clone())
            .tran(bench::paper_tran())
            .observe(vco::OBSERVED_NODE)
            .detection(DetectionSpec::paper_fig5())
            .model(model)
            .build()
            .expect("complete configuration")
            .run(&faults)
            .expect("runs")
    };
    let r = run(HardFaultModel::paper_resistor());
    let s = run(HardFaultModel::Source);
    let detected = |result: &anafault::CampaignResult| -> Vec<bool> {
        result
            .records
            .iter()
            .map(|rec| matches!(rec.outcome, anafault::FaultOutcome::Detected { .. }))
            .collect()
    };
    assert_eq!(detected(&r), detected(&s), "models disagree");
}

#[test]
fn coverage_curve_is_monotone_and_saturates_early() {
    // A miniature Fig. 5: top 15 faults only (the full campaign runs in
    // the fig5 binary).
    let (sys, tb) = bench::vco_system();
    let faults: Vec<Fault> = sys.fault_list().into_iter().take(15).collect();
    let result = sys
        .campaign_builder()
        .testbench(tb)
        .tran(bench::paper_tran())
        .observe(vco::OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .build()
        .expect("complete configuration")
        .run(&faults)
        .expect("runs");
    let samples: Vec<f64> = (0..=40).map(|i| i as f64 * 1e-7).collect();
    let curve = result.coverage_curve(&samples);
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1, "coverage must not decrease");
    }
    // Detections concentrate in the earlier part of the record: all of
    // them land by 75 % of test time (the paper reports 55 % for its
    // layout; our measured full-campaign value is 69 %).
    let at_75 = curve
        .iter()
        .find(|(t, _)| *t >= 3e-6)
        .map(|(_, c)| *c)
        .expect("sample at 75 % time");
    assert_eq!(
        at_75,
        result.final_coverage(),
        "all detections land by 75 % of the test"
    );
    // And at least half the final coverage is reached by half time.
    let half = curve
        .iter()
        .find(|(t, _)| *t >= 2e-6)
        .map(|(_, c)| *c)
        .expect("sample at half time");
    assert!(
        half >= 0.5 * result.final_coverage(),
        "half {half}, final {}",
        result.final_coverage()
    );
}
