//! Minimal hand-rolled JSON emission, matching the conventions of
//! `anafault::protocol`: shortest round-trip float formatting and
//! non-finite numbers written as `null` so every document stays
//! strictly standard JSON.

/// Formats a float with the shortest representation that round-trips.
/// Non-finite values serialize as `null`.
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    let short = format!("{x}");
    if short.parse::<f64>() == Ok(x) {
        short
    } else {
        format!("{x:e}")
    }
}

/// Quotes and escapes a string for JSON.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a slice of floats as a JSON array.
pub fn num_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&num(*x));
    }
    out.push(']');
    out
}

/// Formats a slice of unsigned integers as a JSON array.
pub fn uint_array(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for x in [0.0, -1.5, 1e-300, 0.1 + 0.2, f64::MAX] {
            assert_eq!(num(x).parse::<f64>().unwrap(), x);
        }
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_format() {
        assert_eq!(num_array(&[1.0, 2.5]), "[1, 2.5]");
        assert_eq!(uint_array(&[3, 4]), "[3, 4]");
        assert_eq!(num_array(&[]), "[]");
    }
}
