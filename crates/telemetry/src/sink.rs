//! NDJSON event sink: telemetry events serialized one JSON object
//! per line, in the same hand-rolled writer style as
//! `anafault::protocol` (shortest round-trip floats, non-finite →
//! `null`). Install a sink with [`set_sink`]; nothing is emitted
//! while telemetry is disabled or no sink is installed.

use std::sync::{Arc, Mutex};

use crate::json::{num, num_array, quote, uint_array};
use crate::metrics::{HistogramSnapshot, Registry};

/// One telemetry event. Each variant serializes to a single NDJSON
/// line with a `"type"` discriminant.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    Counter {
        name: String,
        value: u64,
    },
    Histogram {
        name: String,
        snapshot: HistogramSnapshot,
    },
    Span {
        name: String,
        seconds: f64,
        depth: u64,
    },
}

impl Event {
    /// One line of NDJSON (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        match self {
            Event::Counter { name, value } => {
                format!(
                    "{{\"type\": \"counter\", \"name\": {}, \"value\": {}}}",
                    quote(name),
                    value
                )
            }
            Event::Histogram { name, snapshot } => format!(
                "{{\"type\": \"histogram\", \"name\": {}, \"edges\": {}, \"counts\": {}, \
                 \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                quote(name),
                num_array(&snapshot.edges),
                uint_array(&snapshot.counts),
                snapshot.count,
                num(snapshot.sum),
                num(snapshot.min),
                num(snapshot.max),
            ),
            Event::Span {
                name,
                seconds,
                depth,
            } => format!(
                "{{\"type\": \"span\", \"name\": {}, \"seconds\": {}, \"depth\": {}}}",
                quote(name),
                num(*seconds),
                depth
            ),
        }
    }
}

/// Receives telemetry events. Implementations must tolerate being
/// called from any thread.
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &Event);
}

/// Collects events as NDJSON lines in memory (tests, report dumps).
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.lines.lock().unwrap().push(event.to_ndjson());
    }
}

static SINK: Mutex<Option<Arc<dyn EventSink>>> = Mutex::new(None);

/// Installs (or removes, with `None`) the process-wide event sink.
pub fn set_sink(sink: Option<Arc<dyn EventSink>>) {
    *SINK.lock().unwrap() = sink;
}

/// Routes an event to the installed sink, if telemetry is enabled.
pub fn emit(event: &Event) {
    if !crate::enabled() {
        return;
    }
    let sink = SINK.lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.emit(event);
    }
}

/// Emits the current state of `registry` — every counter and
/// histogram — as events. Useful as a final dump before writing a
/// report.
pub fn emit_registry(registry: &Registry) {
    for (name, value) in registry.counter_values() {
        emit(&Event::Counter { name, value });
    }
    for (name, snapshot) in registry.histogram_snapshots() {
        emit(&Event::Histogram { name, snapshot });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_one_line_each() {
        let c = Event::Counter {
            name: "a.b".into(),
            value: 7,
        };
        assert_eq!(
            c.to_ndjson(),
            "{\"type\": \"counter\", \"name\": \"a.b\", \"value\": 7}"
        );
        let h = Event::Histogram {
            name: "h".into(),
            snapshot: HistogramSnapshot {
                edges: vec![1.0],
                counts: vec![2, 0],
                count: 2,
                sum: 0.75,
                min: 0.25,
                max: 0.5,
            },
        };
        let line = h.to_ndjson();
        assert!(line.contains("\"edges\": [1]") && line.contains("\"counts\": [2, 0]"));
        assert!(!line.contains('\n'));
        let s = Event::Span {
            name: "t".into(),
            seconds: 0.5,
            depth: 1,
        };
        assert!(s.to_ndjson().ends_with("\"seconds\": 0.5, \"depth\": 1}"));
    }

    #[test]
    fn emit_respects_enabled_flag() {
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink.clone()));
        crate::set_enabled(false);
        emit(&Event::Counter {
            name: "off".into(),
            value: 1,
        });
        assert!(sink.lines().is_empty());
        set_sink(None);
    }
}
