//! Scoped timers with thread-local nesting depth.
//!
//! `span!("spice.tran")` returns a guard; on drop it records the
//! elapsed seconds into the global histogram `span.spice.tran` and
//! emits a [`crate::Event::Span`] to the installed sink. While
//! telemetry is disabled the guard is inert — no clock read, no
//! allocation.

use std::cell::Cell;
use std::time::Instant;

use crate::sink::{emit, Event};

/// Bucket edges (seconds) for all `span.*` histograms: 1 µs … 100 s.
pub const SPAN_EDGES: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0];

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// A live span; created by [`span`] or the [`crate::span!`] macro.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    name: &'static str,
    armed: Option<(Instant, u64)>,
}

/// Opens a span named `name`. Nested spans on the same thread report
/// increasing `depth`, starting at 0.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { name, armed: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        name,
        armed: Some((Instant::now(), depth)),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, depth)) = self.armed.take() {
            let seconds = start.elapsed().as_secs_f64();
            DEPTH.with(|d| d.set(depth));
            crate::global()
                .histogram(&format!("span.{}", self.name), SPAN_EDGES)
                .record(seconds);
            emit(&Event::Span {
                name: self.name.to_string(),
                seconds,
                depth,
            });
        }
    }
}

/// `span!("name")` — shorthand for [`span`]; bind the result
/// (`let _guard = span!(..)`) so the scope is actually measured.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn disabled_span_is_inert() {
        crate::set_enabled(false);
        let s = span("telemetry.test.inert");
        assert!(s.armed.is_none());
        drop(s);
        assert!(!crate::global()
            .histogram_snapshots()
            .contains_key("span.telemetry.test.inert"));
    }

    #[test]
    fn nesting_depth_and_histogram() {
        // Serialises the process-global pieces this test touches.
        let sink = Arc::new(MemorySink::new());
        crate::set_sink(Some(sink.clone()));
        crate::set_enabled(true);
        {
            let _a = span("telemetry.test.outer");
            let _b = span("telemetry.test.inner");
        }
        crate::set_enabled(false);
        crate::set_sink(None);
        let lines = sink.lines();
        // Inner drops first at depth 1, outer at depth 0.
        assert!(lines[0].contains("\"telemetry.test.inner\"") && lines[0].contains("\"depth\": 1"));
        assert!(lines[1].contains("\"telemetry.test.outer\"") && lines[1].contains("\"depth\": 0"));
        let spans = crate::global().histogram_snapshots();
        assert_eq!(spans["span.telemetry.test.outer"].count, 1);
        // The thread-local depth unwound fully.
        DEPTH.with(|d| assert_eq!(d.get(), 0));
    }
}
