//! Dependency-free telemetry for the CAT stack: atomic counters,
//! bounded histograms, scoped spans and an NDJSON event sink.
//!
//! The whole crate is **zero-cost when disabled** (the default):
//! every entry point first checks one relaxed atomic flag and bails
//! out without allocating, locking or reading the clock. Hot code in
//! `spice` therefore keeps plain `u64` statistics and *flushes* them
//! here at the end of a run, while genuinely cold sites (pattern
//! builds, cache lookups, convergence failures) use [`StaticCounter`]
//! directly.
//!
//! Naming scheme (see `docs/observability.md` in the workspace root):
//! dot-separated, `crate.subsystem.metric`, e.g.
//! `spice.sparse.refactorisations` or `anafault.campaign.faults`.
//! Span histograms are registered as `span.<name>`.
//!
//! ```
//! cat_telemetry::set_enabled(true);
//! let c = cat_telemetry::global().counter("demo.events");
//! c.inc();
//! {
//!     let _outer = cat_telemetry::span!("demo.outer");
//!     let _inner = cat_telemetry::span!("demo.inner"); // depth 1
//! }
//! assert_eq!(cat_telemetry::global().counter_values()["demo.events"], 1);
//! cat_telemetry::set_enabled(false);
//! ```

pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use metrics::{Counter, Histogram, HistogramSnapshot, Registry, StaticCounter};
pub use sink::{set_sink, Event, EventSink, MemorySink};
pub use span::{span, Span, SPAN_EDGES};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry collection is on. One relaxed load — callers
/// on hot paths gate all other work behind this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry that named counters and histograms live
/// in. Instrumented crates resolve their metrics here lazily.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}
