//! Counters, bounded histograms and the registry they live in.
//!
//! Everything is lock-free on the record path (atomics only); the
//! registry itself takes a mutex, but instrumented code resolves its
//! metrics once (see [`StaticCounter`]) so registry locks stay off
//! hot paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram. `edges` are ascending bucket *upper*
/// bounds; an implicit overflow bucket catches everything above the
/// last edge, so `buckets.len() == edges.len() + 1`. Sum/min/max are
/// maintained with compare-and-swap on the float bit patterns —
/// bounded memory, no allocation after construction.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// `edges` must be finite and strictly ascending.
    pub fn new(edges: &[f64]) -> Histogram {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]) && edges.iter().all(|e| e.is_finite()),
            "histogram edges must be finite and strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    pub fn record(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self.edges.partition_point(|&e| e < x);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fold_bits(&self.sum_bits, x, |acc, x| acc + x);
        fold_bits(&self.min_bits, x, f64::min);
        fold_bits(&self.max_bits, x, f64::max);
    }

    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// CAS-loop update of a float stored as bits in an atomic.
fn fold_bits(cell: &AtomicU64, x: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur), x).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]. `counts[i]` holds samples
/// with `value <= edges[i]` (and above the previous edge); the final
/// entry is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub edges: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given edges (used for defaults).
    pub fn empty(edges: &[f64]) -> HistogramSnapshot {
        Histogram::new(edges).snapshot()
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// JSON object with `edges`, `counts`, `count`, `sum`, `min`,
    /// `max` (min/max are `null` while empty — they are infinities).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"edges\": {}, \"counts\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
            json::num_array(&self.edges),
            json::uint_array(&self.counts),
            self.count,
            json::num(self.sum),
            json::num(self.min),
            json::num(self.max),
        )
    }
}

/// A named collection of counters and histograms. The process-wide
/// instance is [`crate::global`]; tests may build private ones.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub const fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Returns the histogram registered under `name`, creating it
    /// with `edges` on first use (later callers inherit the original
    /// edges).
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(edges));
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Current value of every registered counter.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every registered histogram.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Zeroes every counter and histogram *in place* — registered
    /// `Arc` handles (including [`StaticCounter`] caches) stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// A counter declared as a `static` at its use site and resolved in
/// the global registry on first increment. When telemetry is
/// disabled, `add` is a single relaxed load — safe on cold-ish paths
/// like cache lookups or convergence failures.
///
/// ```
/// static BUILDS: cat_telemetry::StaticCounter =
///     cat_telemetry::StaticCounter::new("demo.builds");
/// BUILDS.inc(); // no-op while disabled
/// ```
#[derive(Debug)]
pub struct StaticCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl StaticCounter {
    pub const fn new(name: &'static str) -> StaticCounter {
        StaticCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| crate::global().counter(self.name))
                .add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new(&[1.0, 10.0]);
        for x in [0.5, 1.0, 2.0, 50.0] {
            h.record(x);
        }
        h.record(f64::NAN); // ignored
        let s = h.snapshot();
        // 0.5 and 1.0 land at or below the first edge; 2.0 in the
        // second bucket; 50.0 overflows.
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 53.5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 50.0);
        assert_eq!(s.mean(), 53.5 / 4.0);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = HistogramSnapshot::empty(&[1.0]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        // min/max serialize as null while empty.
        assert!(s.to_json().contains("\"min\": null"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_edges_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_reuses_and_resets() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        let h = r.histogram("h", &[1.0]);
        h.record(0.5);
        assert_eq!(r.histogram("h", &[99.0]).edges(), &[1.0]);
        r.reset();
        assert_eq!(a.get(), 0);
        assert!(r.histogram_snapshots()["h"].is_empty());
        // The original handle still feeds the registry after reset.
        a.inc();
        assert_eq!(r.counter_values()["x"], 1);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = Arc::new(Histogram::new(&[0.5]));
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(if i % 2 == 0 { 0.25 } else { 0.75 });
                        c.inc();
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.counts, vec![2000, 2000]);
        assert_eq!(s.sum, 2000.0 * 0.25 + 2000.0 * 0.75);
        assert_eq!(c.get(), 4000);
    }
}
