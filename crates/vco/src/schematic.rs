//! The VCO schematic and testbench.
//!
//! Block structure (paper Fig. 3): V-to-I conversion (M1–M7), analogue
//! switch (M8/M9), Schmitt trigger (M10–M15, M11 is the device the
//! paper's Fig. 6 experiment bridges to ground), control inverter
//! (M16/M17), output buffers (M18–M21), bias/trickle network
//! (M22–M26) and the timing capacitor C1.
//!
//! Six devices are diode-connected (designed gate–drain shorts):
//! M2, M3, M5, M22, M23, M24.

use spice::{Circuit, ElementKind, MosModel, Waveform};

/// The node the paper observes: `V(11)`, the buffered output.
pub const OBSERVED_NODE: &str = "11";

/// Model names shared with the extraction flow.
pub const NMOS_MODEL: &str = "nmos1u";
/// PMOS model name.
pub const PMOS_MODEL: &str = "pmos1u";

/// Testbench knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestbenchParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Supply ramp time (s) — "after the activation of the supply
    /// voltage the simulation started".
    pub ramp: f64,
    /// Control voltage (V), held constant as in the paper.
    pub vin: f64,
    /// Supply source impedance (Ω). A real test setup's regulator,
    /// probe and bond wires are not ideal; this is what makes
    /// supply-bridging faults (the Fig. 6 sweep) observable.
    pub r_supply: f64,
}

impl Default for TestbenchParams {
    fn default() -> Self {
        TestbenchParams {
            vdd: 5.0,
            ramp: 50e-9,
            vin: 2.2,
            r_supply: 25.0,
        }
    }
}

/// One device row of the design table.
pub(crate) struct Dev {
    pub(crate) name: &'static str,
    pub(crate) pmos: bool,
    /// d, g, s node names (bulk implied: NMOS→0, PMOS→vdd).
    pub(crate) d: &'static str,
    pub(crate) g: &'static str,
    pub(crate) s: &'static str,
    /// W and L in micrometres.
    pub(crate) w_um: f64,
    pub(crate) l_um: f64,
}

/// The 26-device design table. Node names echo the paper's figures
/// (`1` = control input, `5` = discharge rail, `6` = capacitor node,
/// `9` = Schmitt output, `11` = buffered output).
pub(crate) const DEVICES: &[Dev] = &[
    // --- V-to-I converter ---
    Dev {
        name: "M1",
        pmos: false,
        d: "2",
        g: "1",
        s: "n1",
        w_um: 2.0,
        l_um: 2.0,
    },
    Dev {
        name: "M2",
        pmos: false,
        d: "n1",
        g: "n1",
        s: "0",
        w_um: 8.0,
        l_um: 1.0,
    }, // diode
    Dev {
        name: "M3",
        pmos: true,
        d: "2",
        g: "2",
        s: "vdd",
        w_um: 8.0,
        l_um: 2.0,
    }, // diode
    Dev {
        name: "M4",
        pmos: true,
        d: "3",
        g: "2",
        s: "vdd",
        w_um: 8.0,
        l_um: 2.0,
    },
    Dev {
        name: "M5",
        pmos: false,
        d: "3",
        g: "3",
        s: "0",
        w_um: 4.0,
        l_um: 2.0,
    }, // diode
    Dev {
        name: "M6",
        pmos: true,
        d: "4",
        g: "2",
        s: "vdd",
        w_um: 8.0,
        l_um: 2.0,
    },
    // Half-strength discharge sink: a permanent 5-6 switch short then
    // *slows* the oscillation instead of stopping it (the paper's
    // fault #6 changes the frequency).
    Dev {
        name: "M7",
        pmos: false,
        d: "5",
        g: "3",
        s: "0",
        w_um: 2.0,
        l_um: 2.0,
    },
    // --- analogue switch ---
    Dev {
        name: "M8",
        pmos: true,
        d: "6",
        g: "ctrl",
        s: "4",
        w_um: 10.0,
        l_um: 1.0,
    },
    Dev {
        name: "M9",
        pmos: false,
        d: "6",
        g: "ctrl",
        s: "5",
        w_um: 6.0,
        l_um: 1.0,
    },
    // --- Schmitt trigger (input 6, output 9) ---
    // M11 is the N-side feedback device whose drain ties to the supply
    // — the transistor the paper's Fig. 6 experiment bridges to ground.
    Dev {
        name: "M10",
        pmos: false,
        d: "nsm",
        g: "6",
        s: "0",
        w_um: 6.0,
        l_um: 1.0,
    },
    Dev {
        name: "M11",
        pmos: false,
        d: "vdd",
        g: "9",
        s: "nsm",
        w_um: 12.0,
        l_um: 1.0,
    },
    Dev {
        name: "M12",
        pmos: false,
        d: "9",
        g: "6",
        s: "nsm",
        w_um: 6.0,
        l_um: 1.0,
    },
    Dev {
        name: "M13",
        pmos: true,
        d: "psm",
        g: "6",
        s: "vdd",
        w_um: 12.0,
        l_um: 1.0,
    },
    Dev {
        name: "M14",
        pmos: true,
        d: "9",
        g: "6",
        s: "psm",
        w_um: 12.0,
        l_um: 1.0,
    },
    Dev {
        name: "M15",
        pmos: true,
        d: "0",
        g: "9",
        s: "psm",
        w_um: 24.0,
        l_um: 1.0,
    },
    // --- control inverter ---
    Dev {
        name: "M16",
        pmos: true,
        d: "ctrl",
        g: "9",
        s: "vdd",
        w_um: 12.0,
        l_um: 1.0,
    },
    Dev {
        name: "M17",
        pmos: false,
        d: "ctrl",
        g: "9",
        s: "0",
        w_um: 6.0,
        l_um: 1.0,
    },
    // --- output buffers ---
    Dev {
        name: "M18",
        pmos: true,
        d: "10",
        g: "9",
        s: "vdd",
        w_um: 12.0,
        l_um: 1.0,
    },
    Dev {
        name: "M19",
        pmos: false,
        d: "10",
        g: "9",
        s: "0",
        w_um: 6.0,
        l_um: 1.0,
    },
    Dev {
        name: "M20",
        pmos: true,
        d: "11",
        g: "10",
        s: "vdd",
        w_um: 16.0,
        l_um: 1.0,
    },
    Dev {
        name: "M21",
        pmos: false,
        d: "11",
        g: "10",
        s: "0",
        w_um: 8.0,
        l_um: 1.0,
    },
    // --- bias string and trickle sources ---
    Dev {
        name: "M22",
        pmos: true,
        d: "12",
        g: "12",
        s: "vdd",
        w_um: 3.0,
        l_um: 4.0,
    }, // diode
    Dev {
        name: "M23",
        pmos: false,
        d: "12",
        g: "12",
        s: "13",
        w_um: 3.0,
        l_um: 4.0,
    }, // diode
    Dev {
        name: "M24",
        pmos: false,
        d: "13",
        g: "13",
        s: "0",
        w_um: 3.0,
        l_um: 4.0,
    }, // diode
    Dev {
        name: "M25",
        pmos: true,
        d: "6",
        g: "12",
        s: "vdd",
        w_um: 2.0,
        l_um: 20.0,
    },
    Dev {
        name: "M26",
        pmos: false,
        d: "6",
        g: "13",
        s: "0",
        w_um: 2.0,
        l_um: 24.0,
    },
];

/// Timing capacitor value (F).
pub const C_TIMING: f64 = 2e-12;

/// Names of the diode-connected devices (designed gate–drain shorts).
pub const DIODE_CONNECTED: [&str; 6] = ["M2", "M3", "M5", "M22", "M23", "M24"];

/// Builds the bare VCO circuit (no sources). Nodes: `vdd`, `0`, `1`
/// (control in), internal nodes, `11` (output).
pub fn vco_schematic() -> Circuit {
    let mut c = Circuit::new("vco 26-transistor (Sebeke/Teixeira/Ohletz DATE'95)");
    c.add_model(MosModel::default_nmos(NMOS_MODEL));
    c.add_model(MosModel::default_pmos(PMOS_MODEL));
    let vdd = c.node("vdd");
    for dev in DEVICES {
        let d = c.node(dev.d);
        let g = c.node(dev.g);
        let s = c.node(dev.s);
        let (model, bulk) = if dev.pmos {
            (PMOS_MODEL, vdd)
        } else {
            (NMOS_MODEL, Circuit::GROUND)
        };
        c.add(
            dev.name,
            vec![d, g, s, bulk],
            ElementKind::Mosfet {
                model: model.to_string(),
                w: dev.w_um * 1e-6,
                l: dev.l_um * 1e-6,
            },
        );
    }
    let n6 = c.node("6");
    c.add(
        "C1",
        vec![n6, Circuit::GROUND],
        ElementKind::Capacitor {
            c: C_TIMING,
            ic: Some(0.0),
        },
    );
    c
}

/// Attaches the paper's stimulus to any circuit with `vdd` and `1`
/// nodes (works for both the schematic and the layout-extracted
/// netlist, which share node names): supply ramp on `vdd`, constant
/// control voltage on node `1` — "an explicit test stimulus was not
/// required and the VCO control voltage was held constant".
pub fn attach_sources(c: &mut Circuit, params: &TestbenchParams) {
    let vdd = c.node("vdd");
    let vin = c.node("1");
    let vdd_raw = c.node("vddraw");
    c.add(
        "VDD",
        vec![vdd_raw, Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: params.vdd,
                td: 0.0,
                tr: params.ramp,
                tf: params.ramp,
                pw: f64::INFINITY,
                period: f64::INFINITY,
            },
        },
    );
    c.add(
        "RSUP",
        vec![vdd_raw, vdd],
        ElementKind::Resistor {
            r: params.r_supply.max(1e-3),
        },
    );
    c.add(
        "VIN",
        vec![vin, Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Dc(params.vin),
        },
    );
}

/// The VCO with its testbench: supply ramp on `vdd`, constant control
/// voltage on node `1`.
pub fn vco_testbench(params: &TestbenchParams) -> Circuit {
    let mut c = vco_schematic();
    attach_sources(&mut c, params);
    c
}

/// The VCO biased with *settled* DC sources (no supply ramp): `vdd`
/// held at `params.vdd`, the control node at `params.vin`. The
/// operating-point workload used by the kernel benchmarks and the
/// solver-agreement tests — a transient from this circuit is
/// uninteresting, but its DC solve exercises every device region.
pub fn vco_dc_testbench(params: &TestbenchParams) -> Circuit {
    let mut c = vco_schematic();
    let vdd = c.node("vdd");
    let vin = c.node("1");
    c.add(
        "VDD",
        vec![vdd, Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Dc(params.vdd),
        },
    );
    c.add(
        "VIN",
        vec![vin, Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Dc(params.vin),
        },
    );
    c
}

/// Device count helpers used by the experiment tables.
pub fn transistor_count(c: &Circuit) -> usize {
    c.elements()
        .iter()
        .filter(|e| matches!(e.kind, ElementKind::Mosfet { .. }))
        .count()
}

/// Number of MOSFETs whose gate and drain share a node (designed
/// shorts).
pub fn diode_connected_count(c: &Circuit) -> usize {
    c.elements()
        .iter()
        .filter(|e| matches!(e.kind, ElementKind::Mosfet { .. }) && e.nodes[0] == e.nodes[1])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::tran::{tran, TranSpec};

    #[test]
    fn paper_counts_match() {
        let c = vco_schematic();
        assert_eq!(
            transistor_count(&c),
            26,
            "the paper's VCO has 26 transistors"
        );
        assert_eq!(
            diode_connected_count(&c),
            6,
            "six designed gate-drain shorts"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn oscillates_at_default_control_voltage() {
        let c = vco_testbench(&TestbenchParams::default());
        // The paper's run: 400-step transient over 4 µs.
        let res = tran(&c, &TranSpec::new(10e-9, 4e-6).with_uic()).unwrap();
        let out = res.wave(OBSERVED_NODE).unwrap();
        assert!(
            out.amplitude() > 4.0,
            "output should swing rail to rail, got {}",
            out.amplitude()
        );
        let f = out.frequency().expect("output oscillates");
        assert!(
            (0.3e6..20e6).contains(&f),
            "oscillation frequency {f} out of expected range"
        );
    }

    #[test]
    fn frequency_increases_with_control_voltage() {
        let freq_at = |vin: f64| {
            let c = vco_testbench(&TestbenchParams {
                vin,
                ..Default::default()
            });
            let res = tran(&c, &TranSpec::new(10e-9, 4e-6).with_uic()).unwrap();
            res.wave(OBSERVED_NODE).unwrap().frequency()
        };
        let f_low = freq_at(1.8);
        let f_high = freq_at(3.0);
        match (f_low, f_high) {
            (Some(lo), Some(hi)) => assert!(hi > lo * 1.2, "VCO gain: {lo} -> {hi}"),
            (None, Some(_)) => {} // barely-started oscillation at low vin is acceptable
            other => panic!("expected oscillation at high vin: {other:?}"),
        }
    }

    #[test]
    fn capacitor_node_swings_between_thresholds() {
        let c = vco_testbench(&TestbenchParams::default());
        let res = tran(&c, &TranSpec::new(10e-9, 4e-6).with_uic()).unwrap();
        let cap = res.wave("6").unwrap();
        // The cap node must stay inside the rails and show a sawtooth of
        // at least a few hundred millivolts (the Schmitt hysteresis).
        assert!(cap.max() < 5.1 && cap.min() > -0.1);
        // Ignore the power-up transient: measure after 1 µs.
        let window: Vec<f64> = cap
            .times()
            .iter()
            .zip(cap.values())
            .filter(|(t, _)| **t > 1e-6)
            .map(|(_, v)| *v)
            .collect();
        let max = window.iter().copied().fold(f64::MIN, f64::max);
        let min = window.iter().copied().fold(f64::MAX, f64::min);
        assert!(max - min > 0.3, "hysteresis swing {}", max - min);
    }
}
