//! # vco — the paper's evaluation circuit
//!
//! A 26-transistor CMOS voltage-controlled oscillator matching the
//! description in §VI and Fig. 3 of the paper: a V-to-I converter, an
//! analogue switch, a Schmitt trigger, output buffers and one
//! capacitor, fabricated (here: generated) in a single-poly,
//! double-metal CMOS technology. Six transistors are diode-connected
//! (designed gate–drain shorts), which is what makes the schematic
//! short count come out at 73 instead of 79.
//!
//! * [`schematic`] — the transistor-level circuit and its testbench
//!   (supply ramp + constant control voltage; the paper used no other
//!   stimulus);
//! * [`layout`] — a full-custom layout generator for the same circuit
//!   (two device rows, metal-1 routing channel, metal-2 verticals, a
//!   metal-1/metal-2 plate capacitor), whose extraction LVS-matches the
//!   schematic.
//!
//! Node naming echoes the paper's figures: the observed output is
//! `V(11)`, the control input is node `1`, the discharge rail and the
//! capacitor node are `5` and `6` (the paper's example faults
//! `#6 BRI n_ds_short 5->6` and `#339 BRI metal1_short 1->5` live
//! there).

pub mod layout;
pub mod schematic;

pub use layout::{vco_layout, vco_library};
pub use schematic::{
    attach_sources, vco_dc_testbench, vco_schematic, vco_testbench, TestbenchParams, OBSERVED_NODE,
};
