//! Full-custom layout generator for the VCO.
//!
//! Floorplan (single-poly, double-metal CMOS, λ = 500 nm):
//!
//! ```text
//!   y=90µ  ───────────── vdd rail (m1) ─────────────
//!   y=70µ  [P] [ ] [P] [P] ... PMOS row (n-well)      ┌──────────┐
//!   y=12…54µ ════ horizontal m1 routing tracks ═══════│  C1 m1/m2│
//!   y=0    [ ] [N] [ ] [ ] ... NMOS row               └──────────┘
//!   y=-15µ ───────────── gnd rail (m1) ─────────────
//! ```
//!
//! Discipline: horizontal net routing in metal-1 tracks (one per net),
//! vertical connections in metal-2 with vias, gates rise in poly to a
//! contact on their net's track, supply connections drop straight to
//! the rails in metal-1. Every net track carries a text label with the
//! schematic node name, so the extracted netlist uses the same names as
//! the schematic — LIFT's fault labels (`metal1_short 1->5`) then read
//! exactly like the paper's.

use crate::schematic::{C_TIMING, DEVICES};
use geom::{Coord, Point, Rect};
use layout::{Cell, CellBuilder, Layer, Library, MosParams, MosStyle, Technology};
use std::collections::BTreeMap;

/// Column pitch (nm).
const PITCH: Coord = 14_000;
/// NMOS row channel-centre y.
const NMOS_Y: Coord = 0;
/// PMOS row channel-centre y.
const PMOS_Y: Coord = 70_000;
/// Ground rail centre y.
const GND_Y: Coord = -15_000;
/// Supply rail centre y.
const VDD_Y: Coord = 90_000;
/// Rail width.
const RAIL_W: Coord = 3_000;
/// First routing track y.
const TRACK0: Coord = 12_000;
/// Routing track pitch.
const TRACK_PITCH: Coord = 3_000;
/// Routing wire width (m1 tracks, m2 verticals).
const WIRE_W: Coord = 1_500;

/// Track order, bottom to top. Net `1` (control) sits next to net `5`
/// (discharge rail) so a metal-1 bridge `1->5` — the paper's fault
/// #339 — is a realistic candidate.
const TRACK_ORDER: [&str; 15] = [
    "n1", "2", "3", "4", "1", "5", "6", "nsm", "psm", "9", "ctrl", "10", "11", "12", "13",
];

fn track_y(net: &str) -> Option<Coord> {
    TRACK_ORDER
        .iter()
        .position(|n| *n == net)
        .map(|i| TRACK0 + i as Coord * TRACK_PITCH)
}

/// Generates the VCO layout cell inside a fresh library.
pub fn vco_library() -> (Library, Technology) {
    let tech = Technology::generic_1um();
    let cell = build_cell(&tech);
    let mut lib = Library::new("vco_chip");
    lib.add_cell(cell);
    (lib, tech)
}

/// Convenience: the flattened VCO layout plus its technology.
pub fn vco_layout() -> (layout::FlatLayout, Technology) {
    let (lib, tech) = vco_library();
    let flat = lib.flatten("vco").expect("vco cell exists");
    (flat, tech)
}

/// Drops a metal-2 riser from `from` down/up to `y_to`, with **doubled
/// vias** at both ends (second cut offset by `dir·2.5 µm` in x, tied in
/// with a short m2 stub). A single open via can then never sever the
/// connection — matching the doubled-contact discipline of the rest of
/// the layout.
fn riser(b: &mut CellBuilder<'_>, from: Point, y_to: Coord, dir: Coord) {
    const WIRE_W: Coord = 1_500;
    let off = dir.signum() * 2_000;
    for y in [from.y, y_to] {
        b.via(Point::new(from.x, y));
        b.via(Point::new(from.x + off, y));
        b.wire(
            Layer::Metal2,
            &[Point::new(from.x, y), Point::new(from.x + off, y)],
            WIRE_W,
        );
    }
    b.wire(
        Layer::Metal2,
        &[Point::new(from.x, from.y), Point::new(from.x, y_to)],
        WIRE_W,
    );
}

fn build_cell(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new("vco", tech);
    // Net -> x positions of vertical landings on its track.
    let mut conn: BTreeMap<String, Vec<Coord>> = BTreeMap::new();

    for (i, dev) in DEVICES.iter().enumerate() {
        let x_c = i as Coord * PITCH;
        let y_c = if dev.pmos { PMOS_Y } else { NMOS_Y };
        let params = MosParams {
            w: (dev.w_um * 1_000.0) as Coord,
            l: (dev.l_um * 1_000.0) as Coord,
            style: if dev.pmos {
                MosStyle::Pmos
            } else {
                MosStyle::Nmos
            },
        };
        let geo = b.mosfet(Point::new(x_c, y_c), &params);

        // Gate routing. Short risers stay in poly with a doubled
        // contact on the track; long ones (> 25 µm) contact the poly
        // right at the device and continue in metal-2 — the practice
        // that keeps polysilicon (the layer with the highest open
        // density) out of long routes.
        let y_t = track_y(dev.g).unwrap_or_else(|| panic!("gate net `{}` has no track", dev.g));
        let y_edge = if dev.pmos {
            geo.channel.y0() - tech.gate_extension()
        } else {
            geo.channel.y1() + tech.gate_extension()
        };
        if (y_t - y_edge).abs() <= 25_000 {
            b.min_wire(
                Layer::Poly,
                &[Point::new(x_c, y_edge), Point::new(x_c, y_t)],
            );
            b.contact(Point::new(x_c - 1_250, y_t), Layer::Poly);
            b.contact(Point::new(x_c + 1_250, y_t), Layer::Poly);
        } else {
            let toward: Coord = if dev.pmos { -1 } else { 1 };
            let c_y = y_edge + toward * 2_000;
            // Poly stub past the contact pads.
            b.min_wire(
                Layer::Poly,
                &[
                    Point::new(x_c, y_edge),
                    Point::new(x_c, c_y + toward * 1_500),
                ],
            );
            // Doubled poly contacts bridged in metal-1.
            b.contact(Point::new(x_c - 1_250, c_y), Layer::Poly);
            b.contact(Point::new(x_c + 1_250, c_y), Layer::Poly);
            // Doubled vias stacked along the riser, bridged in metal-1.
            let v2_y = c_y + toward * 2_500;
            b.via(Point::new(x_c, c_y));
            b.via(Point::new(x_c, v2_y));
            b.wire(
                Layer::Metal1,
                &[Point::new(x_c, c_y), Point::new(x_c, v2_y)],
                WIRE_W,
            );
            // Metal-2 riser to the track.
            b.wire(
                Layer::Metal2,
                &[Point::new(x_c, c_y), Point::new(x_c, y_t)],
                WIRE_W,
            );
            b.via(Point::new(x_c, y_t));
            // Second track-end via on whichever side has no m2 riser of
            // another net passing the gate track's y.
            let row_y = y_c;
            let side_safe = |sd_net: &str| -> bool {
                if sd_net == dev.g {
                    return true; // same net (diode connection)
                }
                let sd_riser_span = match (sd_net, dev.pmos) {
                    ("vdd", true) | ("0", false) => None, // metal-1 drop
                    ("vdd", false) => Some((row_y.min(VDD_Y), row_y.max(VDD_Y))),
                    ("0", true) => Some((GND_Y.min(row_y), GND_Y.max(row_y))),
                    (net, _) => track_y(net).map(|ty| (row_y.min(ty), row_y.max(ty))),
                };
                match sd_riser_span {
                    None => true,
                    Some((lo, hi)) => y_t < lo - 2_000 || y_t > hi + 2_000,
                }
            };
            let side: Option<Coord> = if side_safe(dev.d) {
                Some(1)
            } else if side_safe(dev.s) {
                Some(-1)
            } else {
                None // single via (e.g. M11, hemmed in by both risers)
            };
            if let Some(s) = side {
                b.via(Point::new(x_c + s * 2_000, y_t));
                b.wire(
                    Layer::Metal2,
                    &[Point::new(x_c, y_t), Point::new(x_c + s * 2_000, y_t)],
                    WIRE_W,
                );
            }
        }
        conn.entry(dev.g.to_string()).or_default().push(x_c);

        // Source and drain pads. The second via of each doubled pair
        // points away from the gate (source left, drain right) unless a
        // long-channel device's pad sits too close to the neighbouring
        // column — then it flips inward to keep clear of that column's
        // gate riser.
        let flip_guard = |px: Coord, d: Coord| -> Coord {
            let stub_reach = px + d * 3_500;
            let neighbour = x_c + d * PITCH;
            if (neighbour - stub_reach).abs() < 2_500 || (neighbour - stub_reach) * d < 0 {
                -d
            } else {
                d
            }
        };
        let s_dir = flip_guard(geo.source_pad.center().x, -1);
        let d_dir = flip_guard(geo.drain_pad.center().x, 1);
        for (net, pad, dir) in [
            (dev.s, geo.source_pad, s_dir),
            (dev.d, geo.drain_pad, d_dir),
        ] {
            let px = pad.center().x;
            let py = pad.center().y;
            match (net, dev.pmos) {
                ("vdd", true) => {
                    // Straight metal-1 drop to the supply rail.
                    b.wire(
                        Layer::Metal1,
                        &[Point::new(px, py), Point::new(px, VDD_Y)],
                        WIRE_W,
                    );
                }
                ("0", false) => {
                    b.wire(
                        Layer::Metal1,
                        &[Point::new(px, py), Point::new(px, GND_Y)],
                        WIRE_W,
                    );
                }
                ("vdd", false) => {
                    // NMOS terminal tied to vdd (Schmitt feedback M12):
                    // metal-2 vertical across the whole stack.
                    riser(&mut b, Point::new(px, py), VDD_Y, dir);
                }
                ("0", true) => {
                    // PMOS terminal tied to ground (Schmitt feedback M15).
                    riser(&mut b, Point::new(px, py), GND_Y, dir);
                }
                (net, _) => {
                    let y_t =
                        track_y(net).unwrap_or_else(|| panic!("net `{net}` has no routing track"));
                    riser(&mut b, Point::new(px, py), y_t, dir);
                    conn.entry(net.to_string()).or_default().push(px);
                }
            }
        }
    }

    // The control input routes in from the right-hand pad area: extend
    // net 1's track so it runs parallel to net 5 — the adjacency behind
    // the paper's example fault #339 (`BRI metal1_short 1->5`).
    conn.entry("1".to_string())
        .or_default()
        .push(DEVICES.len() as Coord * PITCH - 4_000);

    // One merged n-well strip under the whole PMOS row (the per-device
    // wells the generator draws would violate well spacing; real
    // layouts merge the row into a single well).
    let well_half = 12_000 + tech.nwell_surround(); // max W/2 + surround
    b.rect(
        Layer::Nwell,
        geom::Rect::new(
            -6_000,
            PMOS_Y - well_half,
            DEVICES.len() as Coord * PITCH,
            PMOS_Y + well_half,
        ),
    );

    // Timing capacitor: metal-1 bottom plate on ground, metal-2 top
    // plate on net 6, to the right of the device columns. Plate size
    // from the schematic value at 1 fF/µm².
    let cap_x0 = DEVICES.len() as Coord * PITCH + 12_000;
    let cap_y0 = 8_000;
    let top_side = ((C_TIMING / 1e-21).sqrt()) as Coord; // nm
    let margin = 1_000;
    let bottom = Rect::new(
        cap_x0,
        cap_y0,
        cap_x0 + top_side + 2 * margin,
        cap_y0 + top_side + 2 * margin,
    );
    let top = bottom.expanded(-margin);
    b.rect(Layer::Metal1, bottom);
    b.rect(Layer::Metal2, top);
    // Bottom plate to ground rail.
    let bx = bottom.center().x;
    b.wire(
        Layer::Metal1,
        &[Point::new(bx, cap_y0), Point::new(bx, GND_Y)],
        WIRE_W,
    );
    // Top plate to net 6's track through a via just left of the plate.
    let y6 = track_y("6").expect("net 6 has a track");
    let via_x = cap_x0 - 4_000;
    b.wire(
        Layer::Metal2,
        &[Point::new(top.x0(), y6), Point::new(via_x, y6)],
        WIRE_W,
    );
    b.via(Point::new(via_x, y6));
    conn.entry("6".to_string()).or_default().push(via_x);

    // Horizontal metal-1 tracks with net-name labels.
    for net in TRACK_ORDER {
        let Some(xs) = conn.get(net) else {
            continue;
        };
        let y_t = track_y(net).expect("net is in track order");
        let (min_x, max_x) = (
            *xs.iter().min().expect("non-empty") - 2_000,
            *xs.iter().max().expect("non-empty") + 2_000,
        );
        b.wire(
            Layer::Metal1,
            &[Point::new(min_x, y_t), Point::new(max_x, y_t)],
            WIRE_W,
        );
        b.label(Layer::Metal1, Point::new(min_x + 500, y_t), net);
    }

    // Supply rails spanning everything.
    let x_left = -6_000;
    let x_right = bottom.x1() + 6_000;
    b.wire(
        Layer::Metal1,
        &[Point::new(x_left, GND_Y), Point::new(x_right, GND_Y)],
        RAIL_W,
    );
    b.wire(
        Layer::Metal1,
        &[Point::new(x_left, VDD_Y), Point::new(x_right, VDD_Y)],
        RAIL_W,
    );
    b.label(Layer::Metal1, Point::new(x_left + 1_000, GND_Y), "0");
    b.label(Layer::Metal1, Point::new(x_left + 1_000, VDD_Y), "vdd");

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract::lvs::{compare, CanonNetlist};
    use extract::{connectivity::extract, ExtractOptions};

    #[test]
    fn layout_extracts_26_transistors_and_the_cap() {
        let (flat, tech) = vco_layout();
        let netlist = extract(&flat, &tech, &ExtractOptions::default()).unwrap();
        assert_eq!(
            netlist.mosfets.len(),
            26,
            "warnings: {:?}",
            netlist.warnings
        );
        assert_eq!(netlist.capacitors.len(), 1);
        assert!(
            netlist.warnings.is_empty(),
            "extraction warnings: {:?}",
            netlist.warnings
        );
    }

    #[test]
    fn layout_lvs_matches_schematic() {
        let (flat, tech) = vco_layout();
        let netlist = extract(&flat, &tech, &ExtractOptions::default()).unwrap();
        let layout_canon = CanonNetlist::from_extracted(&netlist);
        let schematic_canon = CanonNetlist::from_circuit(&crate::schematic::vco_schematic());
        let report = compare(&layout_canon, &schematic_canon, &["vdd", "0", "1", "11"]);
        assert!(report.matched, "LVS mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn net_names_match_schematic_nodes() {
        let (flat, tech) = vco_layout();
        let netlist = extract(&flat, &tech, &ExtractOptions::default()).unwrap();
        for name in ["1", "5", "6", "9", "11", "vdd"] {
            assert!(
                netlist.net_by_name(name).is_some(),
                "net `{name}` missing from extraction"
            );
        }
        // Ground is net "0".
        assert!(netlist.net_by_name("0").is_some());
    }

    #[test]
    fn gds_round_trip_preserves_extraction() {
        let (lib, tech) = vco_library();
        let bytes = layout::gds::write_library(&lib).unwrap();
        let back = layout::gds::read_library(&bytes).unwrap();
        let flat = back.flatten("vco").unwrap();
        let netlist = extract(&flat, &tech, &ExtractOptions::default()).unwrap();
        assert_eq!(netlist.mosfets.len(), 26);
        assert_eq!(netlist.capacitors.len(), 1);
    }
}
