//! Fault-dictionary diagnosis on top of the campaign engine.
//!
//! The source paper stops at fault *detection*: a fault is covered once
//! its waveform leaves the tolerance band. But the campaign already
//! computed every faulty waveform, so the same run can power *diagnosis*
//! — mapping an observed waveform back to the faults that produce it,
//! per the fault-trajectory matching idea of Savioli et al.
//!
//! The pipeline has three stages, mirroring the classic dictionary
//! method from digital test adapted to analogue trajectories:
//!
//! 1. **Signature extraction** ([`extract_signature`]): the deviation
//!    `faulty − nominal` on each observed node is resampled onto a
//!    fixed-length uniform grid, and summarised by its divergence-onset
//!    time, peak deviation and steady-state offset. The resampled
//!    trajectory is the matching payload; the scalar features exist for
//!    reporting and quick triage.
//! 2. **Dictionary build** ([`FaultDictionary::build`]): signatures
//!    whose pairwise trajectory distance stays below a threshold on
//!    every observed node are *indistinguishable at the test's
//!    resolution* — the analogue of fault collapsing. They are grouped
//!    into ambiguity classes (connected components of the
//!    below-threshold relation), so any entry in a different class is
//!    strictly more than `threshold` away.
//! 3. **Matching** ([`Diagnoser::rank`]): a measured waveform is
//!    resampled onto the dictionary grid, its deviation from the stored
//!    nominal computed, and every entry scored by a time-shift-tolerant
//!    RMS distance. Classes are ranked by their best member's score.
//!
//! The crate is deliberately independent of `anafault`: it needs only
//! [`spice::Wave`] and the telemetry registry, so the campaign crate
//! can depend on it without a cycle.

use spice::Wave;

/// Default clustering/matching threshold: RMS volts of trajectory
/// distance below which two faults are considered indistinguishable.
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// Default time-shift tolerance for matching, in grid steps each way.
pub const DEFAULT_SHIFT_STEPS: usize = 2;

/// Default resampled trajectory length.
pub const DEFAULT_POINTS: usize = 64;

/// How signatures are extracted: grid resolution and the deviation
/// magnitude that counts as "diverged" for the onset feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureSpec {
    /// Samples in the fixed-length resampled trajectory.
    pub points: usize,
    /// |deviation| above this marks the divergence onset.
    pub onset_eps: f64,
}

impl Default for SignatureSpec {
    fn default() -> Self {
        SignatureSpec {
            points: DEFAULT_POINTS,
            onset_eps: DEFAULT_THRESHOLD,
        }
    }
}

/// The uniform resampling grid `[t0, t1]` with `points` samples.
pub fn grid(t0: f64, t1: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a trajectory needs at least two samples");
    (0..points)
        .map(|i| t0 + (t1 - t0) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Samples a wave at each grid time via linear interpolation (clamped
/// at the ends). At a time that is exactly one of the wave's own sample
/// times the wave's stored value comes back bitwise — the property the
/// probe-synthesis round trip relies on.
pub fn resample(wave: &Wave, grid: &[f64]) -> Vec<f64> {
    grid.iter().map(|&t| wave.value_at(t)).collect()
}

/// Per-node signature: the resampled deviation trajectory plus scalar
/// features derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSignature {
    /// `faulty − nominal`, resampled onto the dictionary grid.
    pub trajectory: Vec<f64>,
    /// Grid time of the first sample with |deviation| > onset_eps.
    pub onset: Option<f64>,
    /// max |deviation| over the trajectory.
    pub peak_deviation: f64,
    /// Mean deviation over the trailing eighth of the trajectory.
    pub steady_state_offset: f64,
}

impl NodeSignature {
    /// Builds a signature from an already-resampled deviation
    /// trajectory; all scalar features derive purely from it.
    pub fn from_trajectory(trajectory: Vec<f64>, grid: &[f64], onset_eps: f64) -> NodeSignature {
        assert_eq!(trajectory.len(), grid.len());
        let onset = trajectory
            .iter()
            .position(|d| d.abs() > onset_eps)
            .map(|i| grid[i]);
        let peak_deviation = trajectory.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let tail = trajectory.len().div_ceil(8);
        let steady_state_offset =
            trajectory[trajectory.len() - tail..].iter().sum::<f64>() / tail as f64;
        NodeSignature {
            trajectory,
            onset,
            peak_deviation,
            steady_state_offset,
        }
    }
}

/// One fault's signature: a [`NodeSignature`] per observed node, in the
/// campaign's observed-node order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSignature {
    pub nodes: Vec<NodeSignature>,
}

/// Extracts the signature of one fault on one node.
pub fn extract_signature(
    nominal: &Wave,
    faulty: &Wave,
    grid: &[f64],
    onset_eps: f64,
) -> NodeSignature {
    let nom = resample(nominal, grid);
    let fau = resample(faulty, grid);
    let trajectory: Vec<f64> = fau.iter().zip(&nom).map(|(f, n)| f - n).collect();
    NodeSignature::from_trajectory(trajectory, grid, onset_eps)
}

/// One dictionary row: a fault and its recorded signature.
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryEntry {
    /// The fault's campaign id.
    pub fault_id: usize,
    /// Human-readable fault label (e.g. `"BRI M1.D->M1.S"`).
    pub label: String,
    pub signature: FaultSignature,
}

/// A campaign's fault dictionary: the resampling grid, per-node nominal
/// trajectories, every recorded signature and the ambiguity classes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDictionary {
    /// Observed node names, defining the per-signature node order.
    pub observed: Vec<String>,
    /// Grid start time (the nominal transient's first sample).
    pub t0: f64,
    /// Grid end time (the nominal transient's last sample).
    pub t1: f64,
    /// Samples per trajectory.
    pub points: usize,
    /// Clustering/matching threshold (RMS volts).
    pub threshold: f64,
    /// Time-shift tolerance for matching, in grid steps each way.
    pub shift_steps: usize,
    /// Nominal waveform resampled onto the grid, one row per node.
    pub nominal: Vec<Vec<f64>>,
    pub entries: Vec<DictionaryEntry>,
    /// Ambiguity classes: each is a sorted list of entry indices whose
    /// members are pairwise connected by below-threshold distance.
    pub classes: Vec<Vec<usize>>,
}

/// Dictionaries built (`FaultDictionary::build` calls).
static DIAGNOSE_DICTIONARIES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("anafault.diagnose.dictionaries_built");
/// Signature entries aggregated into dictionaries.
static DIAGNOSE_ENTRIES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("anafault.diagnose.entries");
/// Ambiguity classes produced by dictionary builds.
static DIAGNOSE_CLASSES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("anafault.diagnose.classes");
/// Waveform rankings served (`Diagnoser::rank` calls).
static DIAGNOSE_RANKINGS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("anafault.diagnose.rankings");

impl FaultDictionary {
    /// Assembles a dictionary from recorded signatures and clusters the
    /// indistinguishable entries into ambiguity classes.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        observed: Vec<String>,
        t0: f64,
        t1: f64,
        points: usize,
        threshold: f64,
        shift_steps: usize,
        nominal: Vec<Vec<f64>>,
        entries: Vec<DictionaryEntry>,
    ) -> FaultDictionary {
        let mut dict = FaultDictionary {
            observed,
            t0,
            t1,
            points,
            threshold,
            shift_steps,
            nominal,
            entries,
            classes: Vec::new(),
        };
        dict.classes = dict.cluster();
        DIAGNOSE_DICTIONARIES.inc();
        DIAGNOSE_ENTRIES.add(dict.entries.len() as u64);
        DIAGNOSE_CLASSES.add(dict.classes.len() as u64);
        dict
    }

    /// Connected components of the "distance ≤ threshold" relation.
    /// Components are discovered in entry order and their members
    /// sorted ascending, so the clustering is deterministic.
    fn cluster(&self) -> Vec<Vec<usize>> {
        let n = self.entries.len();
        let mut assigned = vec![false; n];
        let mut classes = Vec::new();
        for seed in 0..n {
            if assigned[seed] {
                continue;
            }
            let mut members = vec![seed];
            assigned[seed] = true;
            let mut cursor = 0;
            while cursor < members.len() {
                let a = members[cursor];
                cursor += 1;
                for (b, taken) in assigned.iter_mut().enumerate() {
                    if !*taken && self.entry_distance(a, b) <= self.threshold {
                        *taken = true;
                        members.push(b);
                    }
                }
            }
            members.sort_unstable();
            classes.push(members);
        }
        classes
    }

    /// Max-over-nodes shift-tolerant distance between two entries.
    fn entry_distance(&self, a: usize, b: usize) -> f64 {
        let sa = &self.entries[a].signature;
        let sb = &self.entries[b].signature;
        sa.nodes
            .iter()
            .zip(&sb.nodes)
            .map(|(na, nb)| shifted_distance(&na.trajectory, &nb.trajectory, self.shift_steps))
            .fold(0.0f64, f64::max)
    }

    /// The ambiguity class containing `entry_index`.
    pub fn class_of(&self, entry_index: usize) -> Option<usize> {
        self.classes
            .iter()
            .position(|class| class.contains(&entry_index))
    }

    /// The dictionary's resampling grid.
    pub fn grid(&self) -> Vec<f64> {
        grid(self.t0, self.t1, self.points)
    }

    /// Synthesises per-node probe waves that reproduce `fault_id`'s
    /// recorded response: sample times exactly on the grid, values
    /// `nominal + trajectory`. [`Wave::value_at`] is exact at sample
    /// times, so ranking such a probe reconstructs the stored
    /// trajectory up to one rounding step of `(n + d) − n` — a score
    /// around 1e-16, many orders below any realistic threshold, which
    /// pins the probe's own ambiguity class at rank 1. The
    /// self-diagnosis acceptance check uses this.
    pub fn probe_waves(&self, fault_id: usize) -> Option<Vec<(String, Wave)>> {
        let entry = self.entries.iter().find(|e| e.fault_id == fault_id)?;
        let grid = self.grid();
        Some(
            self.observed
                .iter()
                .zip(&self.nominal)
                .zip(&entry.signature.nodes)
                .map(|((name, nominal), node)| {
                    let values: Vec<f64> = nominal
                        .iter()
                        .zip(&node.trajectory)
                        .map(|(n, d)| n + d)
                        .collect();
                    (name.clone(), Wave::new(grid.clone(), values))
                })
                .collect(),
        )
    }
}

/// RMS distance between two equal-length trajectories, minimised over
/// integer grid shifts `s ∈ [−shift_steps, +shift_steps]` and computed
/// over the overlapping window. Shift 0 over identical trajectories is
/// exactly 0.
pub fn shifted_distance(x: &[f64], y: &[f64], shift_steps: usize) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as isize;
    let s_max = (shift_steps as isize).min(n - 1);
    let mut best = f64::INFINITY;
    for s in -s_max..=s_max {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            let j = i - s;
            if j < 0 || j >= n {
                continue;
            }
            let d = x[i as usize] - y[j as usize];
            sum += d * d;
            count += 1;
        }
        if count > 0 {
            best = best.min((sum / count as f64).sqrt());
        }
    }
    best
}

/// A ranked diagnosis candidate: one ambiguity class and its score
/// (lower is better; 0 is an exact trajectory match).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index into [`FaultDictionary::classes`].
    pub class: usize,
    /// Best member distance (RMS volts, shift-tolerant).
    pub score: f64,
    /// Fault ids of the class members.
    pub fault_ids: Vec<usize>,
    /// Labels of the class members, parallel to `fault_ids`.
    pub labels: Vec<String>,
}

/// Errors from [`Diagnoser::rank`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnoseError {
    /// A provided wave names a node the dictionary never observed.
    UnknownNode(String),
    /// No provided wave matched any observed node.
    NoObservedWaves,
}

impl std::fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnoseError::UnknownNode(name) => {
                write!(f, "wave names unobserved node `{name}`")
            }
            DiagnoseError::NoObservedWaves => write!(f, "no waves for any observed node"),
        }
    }
}

impl std::error::Error for DiagnoseError {}

/// Matches measured waveforms against a [`FaultDictionary`].
pub struct Diagnoser<'a> {
    dict: &'a FaultDictionary,
}

impl<'a> Diagnoser<'a> {
    pub fn new(dict: &'a FaultDictionary) -> Diagnoser<'a> {
        Diagnoser { dict }
    }

    /// Ranks the dictionary's ambiguity classes against the provided
    /// `(node, wave)` measurements. Waves for a subset of the observed
    /// nodes are accepted (matching restricts itself to those nodes);
    /// a wave naming an unobserved node is an error.
    pub fn rank(&self, waves: &[(String, Wave)]) -> Result<Vec<Candidate>, DiagnoseError> {
        let dict = self.dict;
        let grid = dict.grid();
        // Deviation trajectory per provided node, tagged with the
        // observed-node index it belongs to.
        let mut deviations: Vec<(usize, Vec<f64>)> = Vec::new();
        for (name, wave) in waves {
            let k = dict
                .observed
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| DiagnoseError::UnknownNode(name.clone()))?;
            let resampled = resample(wave, &grid);
            let deviation: Vec<f64> = resampled
                .iter()
                .zip(&dict.nominal[k])
                .map(|(v, n)| v - n)
                .collect();
            deviations.push((k, deviation));
        }
        if deviations.is_empty() {
            return Err(DiagnoseError::NoObservedWaves);
        }

        // Per-entry distance: max over the provided nodes.
        let entry_score = |entry: &DictionaryEntry| -> f64 {
            deviations
                .iter()
                .map(|(k, deviation)| {
                    shifted_distance(
                        deviation,
                        &entry.signature.nodes[*k].trajectory,
                        dict.shift_steps,
                    )
                })
                .fold(0.0f64, f64::max)
        };
        let scores: Vec<f64> = dict.entries.iter().map(entry_score).collect();

        let mut candidates: Vec<Candidate> = dict
            .classes
            .iter()
            .enumerate()
            .map(|(class, members)| Candidate {
                class,
                score: members
                    .iter()
                    .map(|&i| scores[i])
                    .fold(f64::INFINITY, f64::min),
                fault_ids: members.iter().map(|&i| dict.entries[i].fault_id).collect(),
                labels: members
                    .iter()
                    .map(|&i| dict.entries[i].label.clone())
                    .collect(),
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.class.cmp(&b.class))
        });
        DIAGNOSE_RANKINGS.inc();
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(times: Vec<f64>, values: Vec<f64>) -> Wave {
        Wave::new(times, values)
    }

    /// A nominal ramp and faulty variants with controlled deviations.
    fn fixture() -> (Wave, Vec<(usize, &'static str, Wave)>) {
        let times: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let nominal = wave(times.clone(), times.iter().map(|t| t * 0.1).collect());
        let faults = vec![
            // Fault 1: +1 V offset from t = 5 on.
            (
                1,
                "late-offset-a",
                wave(
                    times.clone(),
                    times
                        .iter()
                        .map(|&t| t * 0.1 + if t >= 5.0 { 1.0 } else { 0.0 })
                        .collect(),
                ),
            ),
            // Fault 2: nearly identical to fault 1 (indistinguishable).
            (
                2,
                "late-offset-b",
                wave(
                    times.clone(),
                    times
                        .iter()
                        .map(|&t| t * 0.1 + if t >= 5.0 { 1.01 } else { 0.0 })
                        .collect(),
                ),
            ),
            // Fault 3: −2 V offset everywhere — clearly distinct.
            (
                3,
                "big-negative",
                wave(times.clone(), times.iter().map(|t| t * 0.1 - 2.0).collect()),
            ),
            // Fault 4: no deviation at all (undetected fault).
            (
                4,
                "invisible",
                wave(times.clone(), times.iter().map(|t| t * 0.1).collect()),
            ),
        ];
        (nominal, faults)
    }

    fn build_fixture_dict() -> FaultDictionary {
        let (nominal, faults) = fixture();
        let spec = SignatureSpec {
            points: 16,
            onset_eps: 0.5,
        };
        let grid = grid(0.0, 10.0, spec.points);
        let entries: Vec<DictionaryEntry> = faults
            .iter()
            .map(|(id, label, faulty)| DictionaryEntry {
                fault_id: *id,
                label: label.to_string(),
                signature: FaultSignature {
                    nodes: vec![extract_signature(&nominal, faulty, &grid, spec.onset_eps)],
                },
            })
            .collect();
        FaultDictionary::build(
            vec!["out".to_string()],
            0.0,
            10.0,
            spec.points,
            DEFAULT_THRESHOLD,
            DEFAULT_SHIFT_STEPS,
            vec![resample(&nominal, &grid)],
            entries,
        )
    }

    #[test]
    fn signature_features_derive_from_trajectory() {
        let (nominal, faults) = fixture();
        let g = grid(0.0, 10.0, 11);
        let sig = extract_signature(&nominal, &faults[0].2, &g, 0.5);
        assert_eq!(sig.trajectory.len(), 11);
        // Deviation is 0 before t = 5 and 1 after.
        assert_eq!(sig.onset, Some(5.0));
        assert!((sig.peak_deviation - 1.0).abs() < 1e-12);
        // Trailing 2 samples (ceil(11/8)) are both 1.0.
        assert!((sig.steady_state_offset - 1.0).abs() < 1e-12);
        // The invisible fault has no onset and zero features.
        let flat = extract_signature(&nominal, &faults[3].2, &g, 0.5);
        assert_eq!(flat.onset, None);
        assert_eq!(flat.peak_deviation, 0.0);
        assert_eq!(flat.steady_state_offset, 0.0);
    }

    #[test]
    fn grid_hits_both_endpoints() {
        let g = grid(1.0, 3.0, 5);
        assert_eq!(g.first(), Some(&1.0));
        assert_eq!(g.last(), Some(&3.0));
        assert_eq!(g.len(), 5);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn shifted_distance_is_zero_on_self_and_tolerates_shifts() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        assert_eq!(shifted_distance(&x, &x, 2), 0.0);
        // A copy delayed by one grid step matches within the tolerance
        // much better than with no shifts allowed.
        let mut shifted = vec![x[0]];
        shifted.extend_from_slice(&x[..31]);
        let with = shifted_distance(&x, &shifted, 2);
        let without = shifted_distance(&x, &shifted, 0);
        assert!(with < without);
        assert!(with < 1e-9, "one-step shift should align exactly: {with}");
    }

    #[test]
    fn clustering_groups_indistinguishable_faults() {
        let dict = build_fixture_dict();
        assert_eq!(dict.entries.len(), 4);
        // Faults 1 and 2 collapse; 3 and 4 stand alone.
        assert_eq!(dict.classes.len(), 3);
        assert_eq!(dict.classes[0], vec![0, 1]);
        assert_eq!(dict.classes[1], vec![2]);
        assert_eq!(dict.classes[2], vec![3]);
        assert_eq!(dict.class_of(1), Some(0));
        assert_eq!(dict.class_of(2), Some(1));
    }

    #[test]
    fn probe_waves_rank_their_own_class_first_with_zero_score() {
        let dict = build_fixture_dict();
        let diagnoser = Diagnoser::new(&dict);
        for entry in &dict.entries {
            let probes = dict.probe_waves(entry.fault_id).expect("probe");
            let ranked = diagnoser.rank(&probes).expect("rank");
            assert_eq!(ranked.len(), dict.classes.len());
            assert!(
                ranked[0].fault_ids.contains(&entry.fault_id),
                "fault {} not top-1: {:?}",
                entry.fault_id,
                ranked[0]
            );
            // The probe reconstructs the stored trajectory up to one
            // rounding step of (n + d) − n per sample.
            assert!(
                ranked[0].score < 1e-12,
                "probe should match almost exactly: {}",
                ranked[0].score
            );
            // The runner-up is strictly worse than the threshold —
            // cross-class entries are never within it.
            assert!(ranked[1].score > dict.threshold);
        }
    }

    #[test]
    fn rank_rejects_unknown_and_empty_wave_sets() {
        let dict = build_fixture_dict();
        let diagnoser = Diagnoser::new(&dict);
        let g = dict.grid();
        let bogus = vec![(
            "ghost".to_string(),
            Wave::new(g.clone(), vec![0.0; g.len()]),
        )];
        assert_eq!(
            diagnoser.rank(&bogus),
            Err(DiagnoseError::UnknownNode("ghost".to_string()))
        );
        assert_eq!(diagnoser.rank(&[]), Err(DiagnoseError::NoObservedWaves));
    }

    #[test]
    fn counters_register_dictionary_and_ranking_activity() {
        cat_telemetry::set_enabled(true);
        let before = cat_telemetry::global().counter_values();
        let dict = build_fixture_dict();
        let _ = Diagnoser::new(&dict).rank(&dict.probe_waves(1).unwrap());
        let after = cat_telemetry::global().counter_values();
        let delta = |name: &str| {
            after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
        };
        // Other tests in this binary share the global registry, so the
        // deltas are lower bounds, not exact counts.
        assert!(delta("anafault.diagnose.dictionaries_built") >= 1);
        assert!(delta("anafault.diagnose.entries") >= 4);
        assert!(delta("anafault.diagnose.classes") >= 3);
        assert!(delta("anafault.diagnose.rankings") >= 1);
    }
}
