//! # defect — spot-defect statistics and critical-area analysis
//!
//! Implements the defect model of the paper's §IV:
//!
//! * [`mechanisms`] — the likely physical failure modes of a CMOS
//!   process and their relative densities (Tab. 1 of the paper, used
//!   verbatim as the default mechanism file);
//! * [`sizedist`] — the defect-size probability density `f(x) = 2x₀²/x³`
//!   (Ferris-Prabhu), with sampling for Monte Carlo work;
//! * [`critical`] — critical areas for bridges, line opens and cut
//!   opens, both in closed form and by exact geometric construction
//!   (expand-and-intersect), weighted by the size distribution;
//! * [`montecarlo`] — a spot-defect sampler that cross-validates the
//!   analytic critical areas and powers inductive fault analysis
//!   experiments.
//!
//! Probabilities come out as `p_j = D_rel · D_m1short · A̅_j` where
//! `D_m1short` is the metal-1 short density (1 defect/cm², paper §IV)
//! and `A̅_j` the size-weighted critical area.

pub mod critical;
pub mod mechanisms;
pub mod montecarlo;
pub mod sizedist;

pub use critical::{weighted_bridge_area, weighted_cut_open_area, weighted_open_area};
pub use mechanisms::{FailureClass, Mechanism, MechanismTable, METAL1_SHORT_DENSITY_PER_NM2};
pub use sizedist::SizeDistribution;
