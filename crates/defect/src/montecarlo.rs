//! Monte Carlo spot-defect injection.
//!
//! The original inductive-fault-analysis flow (Shen/Maly/Ferguson, paper
//! ref [25]) throws random defects at the layout and records which ones
//! change circuit topology. This module provides that sampler; LIFT's
//! analytic critical areas are cross-validated against it, and the
//! examples use it to visualise defect sensitivity.

use crate::sizedist::SizeDistribution;
use geom::{Rect, Region};
use rand::{Rng, RngExt};

/// One sampled spot defect: a square of side `size` centred at
/// (`cx`, `cy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotDefect {
    /// Centre x (nm).
    pub cx: i64,
    /// Centre y (nm).
    pub cy: i64,
    /// Side length (nm).
    pub size: i64,
}

impl SpotDefect {
    /// The defect's footprint rectangle.
    pub fn footprint(&self) -> Rect {
        let h = self.size / 2;
        Rect::new(self.cx - h, self.cy - h, self.cx + h, self.cy + h)
    }

    /// True when the defect overlaps the region (shares interior area).
    pub fn hits(&self, region: &Region) -> bool {
        let fp = self.footprint();
        region.rects().iter().any(|r| r.overlaps(&fp))
    }

    /// True when the defect bridges both regions.
    pub fn bridges(&self, a: &Region, b: &Region) -> bool {
        self.hits(a) && self.hits(b)
    }
}

/// Samples `n` defects uniformly over `window` with sizes drawn from
/// `dist`.
pub fn sample_defects<R: Rng + ?Sized>(
    rng: &mut R,
    window: &Rect,
    dist: &SizeDistribution,
    n: usize,
) -> Vec<SpotDefect> {
    (0..n)
        .map(|_| SpotDefect {
            cx: rng.random_range(window.x0()..=window.x1()),
            cy: rng.random_range(window.y0()..=window.y1()),
            size: dist.sample(rng) as i64,
        })
        .collect()
}

/// Estimates the size-weighted bridge critical area between two regions
/// by Monte Carlo: `A̅ ≈ window_area · P(defect bridges)`.
pub fn mc_bridge_area<R: Rng + ?Sized>(
    rng: &mut R,
    a: &Region,
    b: &Region,
    window: &Rect,
    dist: &SizeDistribution,
    samples: usize,
) -> f64 {
    let defects = sample_defects(rng, window, dist, samples);
    let hits = defects.iter().filter(|d| d.bridges(a, b)).count();
    window.area() as f64 * hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::weighted_bridge_area_exact;
    use rand::SeedableRng;

    #[test]
    fn footprint_geometry() {
        let d = SpotDefect {
            cx: 0,
            cy: 0,
            size: 1_000,
        };
        assert_eq!(d.footprint(), Rect::new(-500, -500, 500, 500));
    }

    #[test]
    fn defect_smaller_than_gap_never_bridges() {
        let a = Region::from_rects([Rect::new(0, 0, 10_000, 1_000)]);
        let b = Region::from_rects([Rect::new(0, 4_000, 10_000, 5_000)]);
        // Gap = 3000; a 2000-size defect cannot touch both.
        for cx in (-1_000..11_000).step_by(997) {
            for cy in 0..6 {
                let d = SpotDefect {
                    cx,
                    cy: cy * 1_000,
                    size: 2_000,
                };
                assert!(!d.bridges(&a, &b), "{d:?}");
            }
        }
    }

    #[test]
    fn defect_spanning_gap_bridges() {
        let a = Region::from_rects([Rect::new(0, 0, 10_000, 1_000)]);
        let b = Region::from_rects([Rect::new(0, 4_000, 10_000, 5_000)]);
        let d = SpotDefect {
            cx: 5_000,
            cy: 2_500,
            size: 4_000,
        };
        assert!(d.bridges(&a, &b));
    }

    #[test]
    fn mc_estimate_matches_analytic_integration() {
        let a = Region::from_rects([Rect::new(0, 0, 20_000, 3_000)]);
        let b = Region::from_rects([Rect::new(0, 5_000, 20_000, 8_000)]);
        let dist = SizeDistribution::new(1_000, 20_000);
        let window = Rect::new(-10_000, -10_000, 30_000, 18_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mc = mc_bridge_area(&mut rng, &a, &b, &window, &dist, 200_000);
        let exact = weighted_bridge_area_exact(&a, &b, &dist, 400);
        let rel = (mc - exact).abs() / exact;
        assert!(rel < 0.15, "mc {mc} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn sampler_respects_window() {
        let window = Rect::new(0, 0, 1_000, 1_000);
        let dist = SizeDistribution::default_1um();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for d in sample_defects(&mut rng, &window, &dist, 1_000) {
            assert!(window.contains_point(geom::Point::new(d.cx, d.cy)));
        }
    }
}
