//! The defect-size probability density.
//!
//! Following Ferris-Prabhu (paper ref [10]), spot-defect diameters obey
//! `f(x) = 2·x₀²/x³` for `x ≥ x₀`: defects at the lithographic
//! resolution limit dominate and the density falls off with the cube of
//! the size. The distribution is normalised on `[x₀, ∞)`; an upper
//! truncation bound is carried for numeric integration and sampling.

use geom::Coord;
use rand::{Rng, RngExt};

/// The `2x₀²/x³` defect-size distribution, sizes in nanometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDistribution {
    x0: f64,
    x_max: f64,
}

impl SizeDistribution {
    /// Creates a distribution with resolution limit `x0` and truncation
    /// bound `x_max` (both nm).
    ///
    /// # Panics
    /// Panics unless `0 < x0 < x_max`.
    pub fn new(x0: Coord, x_max: Coord) -> Self {
        assert!(x0 > 0 && x_max > x0, "need 0 < x0 < x_max");
        SizeDistribution {
            x0: x0 as f64,
            x_max: x_max as f64,
        }
    }

    /// The default for the generic 1 µm technology: x₀ = 1 µm (2λ),
    /// truncated at 20 µm (the tail above carries < 0.3 % of the mass).
    pub fn default_1um() -> Self {
        SizeDistribution::new(1_000, 20_000)
    }

    /// Resolution limit x₀ in nm.
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Truncation bound in nm.
    pub fn x_max(&self) -> f64 {
        self.x_max
    }

    /// Probability density at size `x` (per nm).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.x0 {
            0.0
        } else {
            2.0 * self.x0 * self.x0 / (x * x * x)
        }
    }

    /// Cumulative distribution `P(X ≤ x)` of the *untruncated* law.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.x0 {
            0.0
        } else {
            1.0 - (self.x0 / x) * (self.x0 / x)
        }
    }

    /// Mean defect size, `2·x₀`, of the untruncated law.
    pub fn mean(&self) -> f64 {
        2.0 * self.x0
    }

    /// Draws a size by inverse-transform sampling, truncated at
    /// `x_max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // P(X <= x_max) of the untruncated law:
        let p_max = self.cdf(self.x_max);
        let u: f64 = rng.random_range(0.0..p_max);
        self.x0 / (1.0 - u).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_normalises_to_one() {
        let d = SizeDistribution::new(1_000, 1_000_000);
        // Numeric integral of the pdf over [x0, x_max] ≈ cdf(x_max).
        let n = 200_000;
        let (a, b) = (d.x0(), d.x_max());
        let h = (b - a) / n as f64;
        let mut sum = 0.5 * (d.pdf(a) + d.pdf(b));
        for i in 1..n {
            sum += d.pdf(a + i as f64 * h);
        }
        let integral = sum * h;
        assert!((integral - d.cdf(b)).abs() < 1e-3, "integral {integral}");
        assert!(d.cdf(b) > 0.999_99);
    }

    #[test]
    fn cdf_inverse_matches_sampling_formula() {
        let d = SizeDistribution::default_1um();
        for u in [0.1_f64, 0.5, 0.9] {
            let x = d.x0() / (1.0 - u).sqrt();
            assert!((d.cdf(x) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn small_defects_dominate() {
        let d = SizeDistribution::default_1um();
        // 75 % of defects are below 2·x0.
        assert!((d.cdf(2.0 * d.x0()) - 0.75).abs() < 1e-12);
        // pdf falls by 1000x per 10x size.
        let ratio = d.pdf(d.x0()) / d.pdf(10.0 * d.x0());
        assert!((ratio - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn sampling_statistics() {
        use rand::SeedableRng;
        let d = SizeDistribution::default_1um();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 50_000;
        let mut below_2x0 = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= d.x0() && x <= d.x_max() * 1.0001);
            if x <= 2.0 * d.x0() {
                below_2x0 += 1;
            }
        }
        // ~75 % mass below 2 x0 (slightly more after truncation).
        let frac = below_2x0 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "x0 < x_max")]
    fn bad_bounds_panic() {
        let _ = SizeDistribution::new(1_000, 500);
    }
}
