//! Failure mechanisms and their relative defect densities.
//!
//! Reproduces Tab. 1 of the paper: the likely physical failure modes in
//! a digital CMOS process and their densities normalised to the metal-1
//! short density. The table is also parseable from / serialisable to a
//! small text format, mirroring LIFT's "file (default, or user defined)"
//! containing the assumed failure modes.

use layout::Layer;

/// Metal-1 short defect density: 1 defect/cm² (paper §IV, ref [9]),
/// expressed per nm².
pub const METAL1_SHORT_DENSITY_PER_NM2: f64 = 1e-14;

/// Whether a mechanism removes material (open) or adds it (short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Missing material: line opens, cut opens.
    Open,
    /// Extra material: bridging faults.
    Short,
}

impl core::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FailureClass::Open => f.write_str("open"),
            FailureClass::Short => f.write_str("short"),
        }
    }
}

/// A single failure mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Line open on a conductor layer.
    LineOpen(Layer),
    /// Bridging (short) on a conductor layer.
    Bridge(Layer),
    /// Open metal-1-to-diffusion contact (`Al/diff.contacts` in Tab. 1).
    ContactOpenDiff,
    /// Open metal-1-to-poly contact (`m1/poly contacts`).
    ContactOpenPoly,
    /// Open via (metal1/metal2).
    ViaOpen,
}

impl Mechanism {
    /// The failure class of this mechanism.
    pub fn class(&self) -> FailureClass {
        match self {
            Mechanism::Bridge(_) => FailureClass::Short,
            _ => FailureClass::Open,
        }
    }

    /// The layer the defect lands on.
    pub fn layer(&self) -> Layer {
        match self {
            Mechanism::LineOpen(l) | Mechanism::Bridge(l) => *l,
            Mechanism::ContactOpenDiff | Mechanism::ContactOpenPoly => Layer::Contact,
            Mechanism::ViaOpen => Layer::Via1,
        }
    }

    /// The short lowercase identifier used in fault names and the
    /// mechanism file (`metal1_short`, `poly_open`, `via_open`, …).
    pub fn id(&self) -> String {
        match self {
            Mechanism::LineOpen(l) => format!("{}_open", l.short_name()),
            Mechanism::Bridge(l) => format!("{}_short", l.short_name()),
            Mechanism::ContactOpenDiff => "cont_diff_open".to_string(),
            Mechanism::ContactOpenPoly => "cont_poly_open".to_string(),
            Mechanism::ViaOpen => "via_open".to_string(),
        }
    }

    /// Reverse of [`Mechanism::id`].
    pub fn from_id(id: &str) -> Option<Mechanism> {
        let all = MechanismTable::paper_defaults();
        all.entries().iter().map(|(m, _)| *m).find(|m| m.id() == id)
    }
}

/// A table of mechanisms with relative densities (normalised to the
/// metal-1 short density).
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismTable {
    entries: Vec<(Mechanism, f64)>,
}

impl MechanismTable {
    /// The default table: Tab. 1 of the paper, verbatim.
    ///
    /// | layer | failure | relative density |
    /// |---|---|---|
    /// | diffusion | open / short | 0.01 / 1.00 |
    /// | polysilicon | open / short | 0.25 / 1.25 |
    /// | metal 1 | open / short | 0.01 / 1.00 |
    /// | metal 2 | open / short | 0.02 / 1.50 |
    /// | Al/diff contacts | open | 0.66 |
    /// | m1/poly contacts | open | 0.67 |
    /// | vias | open | 0.80 |
    pub fn paper_defaults() -> Self {
        MechanismTable {
            entries: vec![
                (Mechanism::LineOpen(Layer::Active), 0.01),
                (Mechanism::Bridge(Layer::Active), 1.00),
                (Mechanism::LineOpen(Layer::Poly), 0.25),
                (Mechanism::Bridge(Layer::Poly), 1.25),
                (Mechanism::LineOpen(Layer::Metal1), 0.01),
                (Mechanism::Bridge(Layer::Metal1), 1.00),
                (Mechanism::LineOpen(Layer::Metal2), 0.02),
                (Mechanism::Bridge(Layer::Metal2), 1.50),
                (Mechanism::ContactOpenDiff, 0.66),
                (Mechanism::ContactOpenPoly, 0.67),
                (Mechanism::ViaOpen, 0.80),
            ],
        }
    }

    /// All `(mechanism, relative density)` entries.
    pub fn entries(&self) -> &[(Mechanism, f64)] {
        &self.entries
    }

    /// The relative density of `mechanism` (0 when absent: mechanism
    /// disabled).
    pub fn relative_density(&self, mechanism: Mechanism) -> f64 {
        self.entries
            .iter()
            .find(|(m, _)| *m == mechanism)
            .map(|(_, d)| *d)
            .unwrap_or(0.0)
    }

    /// The absolute density of `mechanism` in defects per nm².
    pub fn absolute_density(&self, mechanism: Mechanism) -> f64 {
        self.relative_density(mechanism) * METAL1_SHORT_DENSITY_PER_NM2
    }

    /// Overrides (or adds) a mechanism's relative density — the "user
    /// defined" path of the paper's mechanism file.
    pub fn set(&mut self, mechanism: Mechanism, relative_density: f64) {
        match self.entries.iter_mut().find(|(m, _)| *m == mechanism) {
            Some(e) => e.1 = relative_density,
            None => self.entries.push((mechanism, relative_density)),
        }
    }

    /// Serialises as the mechanism file format: one `id density` pair
    /// per line, `#` comments allowed.
    pub fn to_file_format(&self) -> String {
        let mut s = String::from("# LIFT failure mechanism file (relative densities)\n");
        for (m, d) in &self.entries {
            s.push_str(&format!("{} {}\n", m.id(), d));
        }
        s
    }

    /// Parses the mechanism file format.
    ///
    /// # Errors
    /// Returns a message naming the offending line on unknown mechanism
    /// ids or bad numbers.
    pub fn from_file_format(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let id = parts.next().expect("non-empty line");
            let density: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing density", i + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad density", i + 1))?;
            let mech = Mechanism::from_id(id)
                .ok_or_else(|| format!("line {}: unknown mechanism `{id}`", i + 1))?;
            entries.push((mech, density));
        }
        Ok(MechanismTable { entries })
    }
}

impl Default for MechanismTable {
    fn default() -> Self {
        MechanismTable::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_values() {
        let t = MechanismTable::paper_defaults();
        assert_eq!(t.relative_density(Mechanism::Bridge(Layer::Metal1)), 1.00);
        assert_eq!(t.relative_density(Mechanism::Bridge(Layer::Metal2)), 1.50);
        assert_eq!(t.relative_density(Mechanism::Bridge(Layer::Poly)), 1.25);
        assert_eq!(t.relative_density(Mechanism::LineOpen(Layer::Active)), 0.01);
        assert_eq!(t.relative_density(Mechanism::ContactOpenDiff), 0.66);
        assert_eq!(t.relative_density(Mechanism::ContactOpenPoly), 0.67);
        assert_eq!(t.relative_density(Mechanism::ViaOpen), 0.80);
        assert_eq!(t.entries().len(), 11);
    }

    #[test]
    fn shorts_dominate_opens() {
        // The beta/alpha ratio the paper quotes as ~100 for positive
        // photoresist lines: shorts far denser than opens per layer.
        let t = MechanismTable::paper_defaults();
        for layer in [Layer::Active, Layer::Metal1, Layer::Metal2] {
            let b = t.relative_density(Mechanism::Bridge(layer));
            let a = t.relative_density(Mechanism::LineOpen(layer));
            assert!(b / a >= 50.0, "{layer}: beta/alpha = {}", b / a);
        }
    }

    #[test]
    fn absolute_density_scale() {
        let t = MechanismTable::paper_defaults();
        // metal1 short: 1 defect/cm² = 1e-14 /nm².
        assert_eq!(t.absolute_density(Mechanism::Bridge(Layer::Metal1)), 1e-14);
    }

    #[test]
    fn file_round_trip() {
        let t = MechanismTable::paper_defaults();
        let text = t.to_file_format();
        let back = MechanismTable::from_file_format(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_parse_errors() {
        assert!(MechanismTable::from_file_format("bogus_mech 1.0").is_err());
        assert!(MechanismTable::from_file_format("metal1_short notanumber").is_err());
        assert!(MechanismTable::from_file_format("metal1_short").is_err());
        // Comments and blanks are fine.
        let ok = MechanismTable::from_file_format("# comment\n\nmetal1_short 2.0\n").unwrap();
        assert_eq!(ok.relative_density(Mechanism::Bridge(Layer::Metal1)), 2.0);
    }

    #[test]
    fn user_override() {
        let mut t = MechanismTable::paper_defaults();
        t.set(Mechanism::Bridge(Layer::Metal1), 3.0);
        assert_eq!(t.relative_density(Mechanism::Bridge(Layer::Metal1)), 3.0);
    }

    #[test]
    fn mechanism_ids_round_trip() {
        for (m, _) in MechanismTable::paper_defaults().entries() {
            assert_eq!(Mechanism::from_id(&m.id()), Some(*m), "{}", m.id());
        }
    }
}
