//! Critical-area evaluation.
//!
//! The critical area `A_c(x)` of a failure for defect diameter `x` is
//! the area of defect-centre positions that cause the failure
//! (Stapper, paper ref [28]). The quantity LIFT needs is the
//! size-weighted average `A̅ = ∫ A_c(x)·f(x) dx` with `f` the defect
//! size pdf: `p_j = density · A̅` is then the expected number of
//! occurrences of fault `j` per die, used as its probability ranking.
//!
//! Square defects are assumed (the paper permits circle or square).
//! Three closed forms cover the geometries LIFT generates:
//!
//! * **bridge** between facing wire edges: `A_c(x) = (L + x)·(x − s)`;
//! * **line open** severing a wire of width `w`: `A_c(x) = (L + x)·(x − w)`;
//! * **cut open** covering a `c × c` contact: `A_c(x) = (x − c)²`;
//!
//! plus an exact geometric evaluator (expand-and-intersect on the real
//! shapes) used for irregular neighbourhoods and cross-validated against
//! the closed forms and Monte Carlo in the tests.

use crate::sizedist::SizeDistribution;
use geom::{Rect, Region};

/// Weighted critical area (nm²) for a **bridge** between two parallel
/// facing edges at spacing `s` with parallel-run length `l` (both nm).
///
/// Closed form of `∫ (l + x)(x − s)·2x₀²/x³ dx` from `max(s, x₀)` to
/// `x_max`.
pub fn weighted_bridge_area(l: f64, s: f64, dist: &SizeDistribution) -> f64 {
    weighted_strip_area(l, s, dist)
}

/// Weighted critical area (nm²) for a **line open** on a wire of width
/// `w` and segment length `l` (both nm). Same geometry as the bridge
/// with the roles of conductor and gap exchanged.
pub fn weighted_open_area(l: f64, w: f64, dist: &SizeDistribution) -> f64 {
    weighted_strip_area(l, w, dist)
}

/// Shared closed form for the `(l + x)(x − d)` strip geometry.
fn weighted_strip_area(l: f64, d: f64, dist: &SizeDistribution) -> f64 {
    let a = d.max(dist.x0());
    let b = dist.x_max();
    if b <= a {
        return 0.0;
    }
    let x0 = dist.x0();
    // (l + x)(x − d) = x² + (l−d)x − l·d, so the integrand over f(x) is
    // 2x₀²·(1/x + (l−d)/x² − l·d/x³) with primitive
    // ln x − (l−d)/x + l·d/(2x²).
    let primitive = |x: f64| x.ln() - (l - d) / x + l * d / (2.0 * x * x);
    2.0 * x0 * x0 * (primitive(b) - primitive(a))
}

/// Weighted critical area (nm²) for an **open contact/via** with square
/// cut side `c` (nm): `A_c(x) = (x − c)²`.
pub fn weighted_cut_open_area(c: f64, dist: &SizeDistribution) -> f64 {
    let a = c.max(dist.x0());
    let b = dist.x_max();
    if b <= a {
        return 0.0;
    }
    let x0 = dist.x0();
    // ∫ (x−c)²/x³ dx = ∫ (1/x − 2c/x² + c²/x³) dx
    //               = ln x + 2c/x − c²/(2x²).
    let primitive = |x: f64| x.ln() + 2.0 * c / x - c * c / (2.0 * x * x);
    2.0 * x0 * x0 * (primitive(b) - primitive(a))
}

/// Exact critical area `A_c(x)` for bridging two shape sets with a
/// square defect of side `x`: the area of centres whose defect overlaps
/// both, i.e. `area( (A ⊕ x/2) ∩ (B ⊕ x/2) )`.
pub fn bridge_critical_area_exact(a: &Region, b: &Region, x: i64) -> i128 {
    let half = x / 2;
    let ea = Region::from_rects(a.rects().iter().map(|r| r.expanded(half)));
    let eb = Region::from_rects(b.rects().iter().map(|r| r.expanded(half)));
    ea.intersection(&eb).area()
}

/// Numerically integrates the exact bridge critical area over the size
/// distribution (log-spaced trapezoid; `steps` panels).
pub fn weighted_bridge_area_exact(
    a: &Region,
    b: &Region,
    dist: &SizeDistribution,
    steps: usize,
) -> f64 {
    let lo = dist.x0();
    let hi = dist.x_max();
    let n = steps.max(4);
    let mut sum = 0.0;
    let ratio = (hi / lo).powf(1.0 / n as f64);
    let mut x_prev = lo;
    let mut f_prev = bridge_critical_area_exact(a, b, lo as i64) as f64 * dist.pdf(lo);
    for i in 1..=n {
        let x = lo * ratio.powi(i as i32);
        let f = bridge_critical_area_exact(a, b, x as i64) as f64 * dist.pdf(x);
        sum += 0.5 * (f + f_prev) * (x - x_prev);
        x_prev = x;
        f_prev = f;
    }
    sum
}

/// Convenience: the parallel-run/spacing description of two rectangles
/// (suitable inputs for [`weighted_bridge_area`]).
pub fn facing_geometry(a: &Rect, b: &Rect) -> (f64, f64) {
    let sep = geom::edge_separation(a, b);
    (sep.parallel_length as f64, sep.spacing as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> SizeDistribution {
        SizeDistribution::new(1_000, 20_000)
    }

    /// Numeric reference for the strip closed form.
    fn numeric_strip(l: f64, d: f64, dist: &SizeDistribution) -> f64 {
        let a = d.max(dist.x0());
        let b = dist.x_max();
        let n = 400_000;
        let h = (b - a) / n as f64;
        let f = |x: f64| (l + x) * (x - d) * dist.pdf(x);
        let mut sum = 0.5 * (f(a) + f(b));
        for i in 1..n {
            sum += f(a + i as f64 * h);
        }
        sum * h
    }

    #[test]
    fn closed_form_matches_numeric_integration() {
        let d = dist();
        for &(l, s) in &[(10_000.0, 1_500.0), (50_000.0, 2_000.0), (3_000.0, 500.0)] {
            let analytic = weighted_bridge_area(l, s, &d);
            let numeric = numeric_strip(l, s, &d);
            let rel = (analytic - numeric).abs() / numeric;
            assert!(rel < 1e-3, "l={l} s={s}: {analytic} vs {numeric}");
        }
    }

    #[test]
    fn cut_open_closed_form_matches_numeric() {
        let d = dist();
        let c = 1_000.0;
        let analytic = weighted_cut_open_area(c, &d);
        let (a, b) = (c.max(d.x0()), d.x_max());
        let n = 400_000;
        let h = (b - a) / n as f64;
        let f = |x: f64| (x - c) * (x - c) * d.pdf(x);
        let mut sum = 0.5 * (f(a) + f(b));
        for i in 1..n {
            sum += f(a + i as f64 * h);
        }
        let numeric = sum * h;
        let rel = (analytic - numeric).abs() / numeric;
        assert!(rel < 1e-3, "{analytic} vs {numeric}");
    }

    #[test]
    fn closer_wires_have_larger_critical_area() {
        let d = dist();
        let near = weighted_bridge_area(10_000.0, 1_500.0, &d);
        let far = weighted_bridge_area(10_000.0, 4_000.0, &d);
        assert!(near > far, "{near} vs {far}");
        // Longer run, larger area.
        let long = weighted_bridge_area(40_000.0, 1_500.0, &d);
        assert!(long > near);
    }

    #[test]
    fn spacing_beyond_xmax_gives_zero() {
        let d = dist();
        assert_eq!(weighted_bridge_area(10_000.0, 25_000.0, &d), 0.0);
        assert_eq!(weighted_cut_open_area(25_000.0, &d), 0.0);
    }

    #[test]
    fn exact_evaluator_matches_closed_form_for_parallel_wires() {
        let d = dist();
        let (l, s, w) = (20_000i64, 2_000i64, 3_000i64);
        let a = Region::from_rects([Rect::new(0, 0, l, w)]);
        let b = Region::from_rects([Rect::new(0, w + s, l, 2 * w + s)]);
        let exact = weighted_bridge_area_exact(&a, &b, &d, 400);
        let closed = weighted_bridge_area(l as f64, s as f64, &d);
        // The closed form ignores that the defect can also bridge around
        // the ends and the finite wire width; agreement within ~15 %.
        let rel = (exact - closed).abs() / closed;
        assert!(rel < 0.15, "exact {exact} vs closed {closed} (rel {rel})");
    }

    #[test]
    fn exact_area_grows_with_defect_size() {
        let a = Region::from_rects([Rect::new(0, 0, 10_000, 1_000)]);
        let b = Region::from_rects([Rect::new(0, 3_000, 10_000, 4_000)]);
        // Below the 2 µm gap: zero.
        assert_eq!(bridge_critical_area_exact(&a, &b, 1_500), 0);
        let at3 = bridge_critical_area_exact(&a, &b, 3_000);
        let at5 = bridge_critical_area_exact(&a, &b, 5_000);
        assert!(at3 > 0);
        assert!(at5 > at3);
    }

    #[test]
    fn probability_magnitude_matches_paper_range() {
        // The paper says p_j ranges 1e-7 .. 1e-9. A typical wire pair in
        // our technology: 10–50 µm run at 1.5–2 µm spacing.
        let d = dist();
        let area = weighted_bridge_area(30_000.0, 1_500.0, &d);
        let p = area * crate::mechanisms::METAL1_SHORT_DENSITY_PER_NM2;
        assert!(
            (1e-9..1e-6).contains(&p),
            "p = {p} outside the paper's plausible range"
        );
    }
}
