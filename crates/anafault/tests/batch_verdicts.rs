//! Property test for the batched campaign scheduler: for random RC
//! ladder testbenches and random hard-fault sets, batched execution at
//! every lane width must produce verdicts identical to the scalar
//! fault-dropping path — same outcome variant, same detection time,
//! same detecting node — under both hard-fault models.

use anafault::{BatchMode, Campaign, DetectionSpec, Fault, FaultEffect, HardFaultModel};
use proptest::prelude::*;
use spice::parser::parse_netlist;
use spice::tran::TranSpec;
use spice::Circuit;

/// An RC ladder testbench with one section per resistance in `rs`.
fn ladder(rs: &[i64]) -> Circuit {
    let mut s = String::from("ladder\nv1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n");
    let mut prev = "in".to_string();
    for (i, r) in rs.iter().enumerate() {
        s.push_str(&format!("r{i} {prev} n{i} {r}\nc{i} n{i} 0 1n ic=0\n"));
        prev = format!("n{i}");
    }
    s.push_str(".end\n");
    parse_netlist(&s).expect("ladder parses")
}

/// Maps raw random pairs onto shorts between distinct ladder nodes
/// (including ground for every third fault, so some faults detect and
/// some do not).
fn fault_set(pairs: &[(usize, usize)], n: usize) -> Vec<Fault> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(p, q))| {
            let a = p % n;
            let b = if i % 3 == 0 {
                "0".to_string()
            } else {
                format!("n{}", (a + 1 + q % (n - 1)) % n)
            };
            Fault::new(
                i + 1,
                format!("BRI n{a}->{b}"),
                FaultEffect::Short {
                    a: format!("n{a}"),
                    b,
                },
            )
        })
        .collect()
}

fn campaign(tb: &Circuit, model: HardFaultModel, batch: BatchMode, observe: &str) -> Campaign {
    Campaign::builder()
        .testbench(tb.clone())
        .tran(TranSpec::new(0.5e-6, 3e-5).with_uic())
        .observe(observe)
        .detection(DetectionSpec {
            v_tol: 1.0,
            t_tol: 1e-6,
        })
        .model(model)
        .threads(1)
        .early_stop(batch == BatchMode::Off)
        .batch(batch)
        .build()
        .expect("campaign configuration is complete")
}

fn arb_ladder() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(500i64..5000, 12..15)
}

fn arb_pairs() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..1000, 0usize..1000), 2..6)
}

proptest! {
    #[test]
    fn batched_verdicts_match_scalar_at_every_width(
        rs in arb_ladder(),
        pairs in arb_pairs(),
    ) {
        let tb = ladder(&rs);
        let observe = format!("n{}", rs.len() - 1);
        let faults = fault_set(&pairs, rs.len());
        for model in [HardFaultModel::paper_resistor(), HardFaultModel::Source] {
            let scalar = campaign(&tb, model, BatchMode::Off, &observe)
                .run(&faults)
                .expect("scalar campaign runs");
            let expected: Vec<_> = scalar.records.iter().map(|r| r.outcome.clone()).collect();
            for width in [1usize, 2, 4, 8, 16] {
                let batched = campaign(&tb, model, BatchMode::Width(width), &observe)
                    .run(&faults)
                    .expect("batched campaign runs");
                let got: Vec<_> =
                    batched.records.iter().map(|r| r.outcome.clone()).collect();
                prop_assert_eq!(&got, &expected, "model {:?} width {}", model, width);
            }
        }
    }
}
