//! Campaign results → fault dictionaries.
//!
//! The `diagnose` crate owns the signature/dictionary machinery; this
//! module is the bridge from a finished [`CampaignResult`] (run with
//! `CampaignBuilder::record_signatures(true)`) to a built
//! [`FaultDictionary`]. Kept out of `campaign` so the simulation loop
//! never depends on matching policy.

use crate::campaign::CampaignResult;
use diagnose::{resample, DictionaryEntry, FaultDictionary};

/// Why a campaign result cannot seed a dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictionaryError {
    /// No record carries a signature — the campaign ran without
    /// `record_signatures(true)`.
    NoSignatures,
}

impl core::fmt::Display for DictionaryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DictionaryError::NoSignatures => {
                write!(
                    f,
                    "campaign result carries no signatures; rerun with record_signatures(true)"
                )
            }
        }
    }
}

impl std::error::Error for DictionaryError {}

/// Builds a fault dictionary from every signature-bearing record of a
/// campaign result, under the default clustering threshold and
/// time-shift tolerance ([`diagnose::DEFAULT_THRESHOLD`],
/// [`diagnose::DEFAULT_SHIFT_STEPS`]).
///
/// Faults whose injection or simulation failed carry no signature and
/// are skipped — a dictionary only answers for faults it could watch
/// misbehave. The grid is the one the campaign recorded on: the nominal
/// transient's span at the signature point count.
///
/// # Errors
/// [`DictionaryError::NoSignatures`] when no record has a signature.
pub fn build_dictionary(result: &CampaignResult) -> Result<FaultDictionary, DictionaryError> {
    let signed: Vec<_> = result
        .records
        .iter()
        .filter_map(|r| r.signature.as_ref().map(|s| (&r.fault, s)))
        .collect();
    let Some((_, first)) = signed.first() else {
        return Err(DictionaryError::NoSignatures);
    };
    let points = first.nodes[0].trajectory.len();
    let times = result.nominals[0].times();
    let (t0, t1) = (times[0], *times.last().expect("nominal wave is non-empty"));
    let grid = diagnose::grid(t0, t1, points);
    let nominal = result
        .nominals
        .iter()
        .map(|wave| resample(wave, &grid))
        .collect();
    Ok(FaultDictionary::build(
        result.observed.clone(),
        t0,
        t1,
        points,
        diagnose::DEFAULT_THRESHOLD,
        diagnose::DEFAULT_SHIFT_STEPS,
        nominal,
        signed
            .into_iter()
            .map(|(fault, signature)| DictionaryEntry {
                fault_id: fault.id,
                label: fault.label.clone(),
                signature: signature.clone(),
            })
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{FaultOutcome, FaultRecord, FaultTelemetry};
    use crate::fault::{Fault, FaultEffect};
    use diagnose::{Diagnoser, FaultSignature, NodeSignature};
    use spice::Wave;

    fn record(id: usize, trajectory: Vec<f64>) -> FaultRecord {
        let peak = trajectory.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        FaultRecord {
            fault: Fault::new(
                id,
                format!("BRI {id}"),
                FaultEffect::Short {
                    a: format!("{id}"),
                    b: "0".into(),
                },
            ),
            outcome: FaultOutcome::Detected {
                at: 1e-6,
                node: "out".into(),
            },
            sim_seconds: 0.01,
            newton_iterations: 10,
            telemetry: FaultTelemetry::default(),
            signature: Some(FaultSignature {
                nodes: vec![NodeSignature {
                    steady_state_offset: *trajectory.last().unwrap(),
                    onset: Some(0.0),
                    peak_deviation: peak,
                    trajectory,
                }],
            }),
        }
    }

    fn result() -> CampaignResult {
        let mut failed = record(9, vec![0.0; 4]);
        failed.outcome = FaultOutcome::InjectionFailed("unknown node".into());
        failed.signature = None;
        CampaignResult {
            observed: vec!["out".to_string()],
            nominals: vec![Wave::new(
                vec![0.0, 1e-6, 2e-6, 3e-6],
                vec![0.0, 1.0, 2.0, 3.0],
            )],
            records: vec![
                record(1, vec![0.0, 1.0, 1.0, 1.0]),
                record(2, vec![0.0, 1.0, 1.0, 1.0]),
                record(3, vec![0.0, -2.0, -2.0, -2.0]),
                failed,
            ],
            nominal_seconds: 0.01,
            total_seconds: 0.05,
            telemetry: Default::default(),
        }
    }

    #[test]
    fn builds_clusters_and_diagnoses_from_campaign_records() {
        let dict = build_dictionary(&result()).expect("signatures present");
        // The failed fault is skipped; the two identical deviations
        // share an ambiguity class.
        assert_eq!(dict.entries.len(), 3);
        assert_eq!(dict.classes, vec![vec![0, 1], vec![2]]);
        assert_eq!(dict.points, 4);
        assert_eq!(dict.nominal, vec![vec![0.0, 1.0, 2.0, 3.0]]);

        // A probe synthesized from fault 3's own signature ranks its
        // class first.
        let probe = dict.probe_waves(3).expect("fault 3 is in the dictionary");
        let ranked = Diagnoser::new(&dict).rank(&probe).unwrap();
        assert_eq!(ranked[0].fault_ids, vec![3]);
    }

    #[test]
    fn unsigned_results_are_rejected() {
        let mut unsigned = result();
        for r in &mut unsigned.records {
            r.signature = None;
        }
        assert_eq!(
            build_dictionary(&unsigned),
            Err(DictionaryError::NoSignatures)
        );
    }
}
