//! Detection criterion and fault-coverage curves.

use spice::Wave;

/// The tolerance-band detection criterion (paper Fig. 5: 2 V amplitude,
/// 0.2 µs time tolerance on the VCO output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionSpec {
    /// Amplitude tolerance (V): deviations beyond this are observable.
    pub v_tol: f64,
    /// Time tolerance (s): nominal may shift this much before a
    /// deviation counts.
    pub t_tol: f64,
}

impl DetectionSpec {
    /// The paper's Fig. 5 settings: 2 V and 0.2 µs.
    pub fn paper_fig5() -> Self {
        DetectionSpec {
            v_tol: 2.0,
            t_tol: 0.2e-6,
        }
    }

    /// First time the faulty response becomes distinguishable from the
    /// nominal one, or `None` when the fault stays undetected. A
    /// non-finite faulty sample (NaN/∞ from a diverged solve) always
    /// counts as a detected deviation.
    pub fn first_detection(&self, faulty: &Wave, nominal: &Wave) -> Option<f64> {
        faulty.first_detection(nominal, self.v_tol, self.t_tol)
    }
}

impl Default for DetectionSpec {
    fn default() -> Self {
        DetectionSpec::paper_fig5()
    }
}

/// Computes the fault-coverage-versus-time curve from per-fault
/// detection times.
///
/// `detections` holds `Some(t_detect)` per fault (in any order),
/// `None` for undetected faults. Returns `(time, coverage_percent)`
/// sampled at each `sample_times` entry: coverage(t) = share of all
/// faults detected at or before `t`.
pub fn coverage_curve(detections: &[Option<f64>], sample_times: &[f64]) -> Vec<(f64, f64)> {
    let total = detections.len();
    if total == 0 {
        return sample_times.iter().map(|&t| (t, 0.0)).collect();
    }
    let mut times: Vec<f64> = detections.iter().flatten().copied().collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("detection times are finite"));
    sample_times
        .iter()
        .map(|&t| {
            let detected = times.partition_point(|&d| d <= t);
            (t, 100.0 * detected as f64 / total as f64)
        })
        .collect()
}

/// Final coverage percentage: detected / total.
pub fn final_coverage(detections: &[Option<f64>]) -> f64 {
    if detections.is_empty() {
        return 0.0;
    }
    100.0 * detections.iter().filter(|d| d.is_some()).count() as f64 / detections.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_and_saturates() {
        let detections = vec![Some(1.0), Some(2.0), None, Some(2.0)];
        let samples: Vec<f64> = (0..=5).map(|i| i as f64).collect();
        let curve = coverage_curve(&detections, &samples);
        assert_eq!(curve[0], (0.0, 0.0));
        assert_eq!(curve[1], (1.0, 25.0));
        assert_eq!(curve[2], (2.0, 75.0));
        assert_eq!(curve[5], (5.0, 75.0)); // the None never detects
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "coverage must not decrease");
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            coverage_curve(&[], &[0.0, 1.0]),
            vec![(0.0, 0.0), (1.0, 0.0)]
        );
        assert_eq!(final_coverage(&[]), 0.0);
    }

    #[test]
    fn final_coverage_counts() {
        assert_eq!(final_coverage(&[Some(1.0), None]), 50.0);
        assert_eq!(final_coverage(&[Some(1.0), Some(0.1)]), 100.0);
    }

    #[test]
    fn nan_injection_is_detected() {
        // Regression for the tolerance-band criterion: a faulty solve
        // that diverges mid-transient leaves NaN/inf samples in the
        // waveform. Those must register as detected deviations — not
        // fall through NaN comparisons as "within tolerance".
        let spec = DetectionSpec::paper_fig5();
        let times: Vec<f64> = (0..10).map(|i| i as f64 * 1e-7).collect();
        let nominal = Wave::new(times.clone(), vec![2.5; 10]);
        let mut faulty_vals = vec![2.5; 10];
        faulty_vals[6] = f64::NAN;
        let faulty = Wave::new(times.clone(), faulty_vals);
        assert_eq!(spec.first_detection(&faulty, &nominal), Some(6e-7));

        let mut inf_vals = vec![2.5; 10];
        inf_vals[3] = f64::INFINITY;
        let faulty = Wave::new(times, inf_vals);
        assert_eq!(spec.first_detection(&faulty, &nominal), Some(3e-7));
    }

    #[test]
    fn paper_spec_values() {
        let d = DetectionSpec::paper_fig5();
        assert_eq!(d.v_tol, 2.0);
        assert_eq!(d.t_tol, 0.2e-6);
    }
}
