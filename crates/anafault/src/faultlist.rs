//! The textual fault-list interface between LIFT and AnaFAULT.
//!
//! The paper: "The fault list obtained from LIFT is merged into the
//! configuration file during the setup procedure." This module defines
//! that file format. One fault per line:
//!
//! ```text
//! # id  class  label……                p
//! 6     BRI    n_ds_short 5->6        3.2e-8   short 5 6
//! 339   BRI    metal1_short 1->5      1.1e-8   short 1 5
//! 12    SOP    M7.d                   4.0e-9   open M7 0
//! 17    OPN    metal1_open n4         2.0e-9   split n4 M3.1 M4.1
//! ```
//!
//! Columns: candidate id, class (`BRI`/`OPN`/`SOP`/`SOFT`), a free-form
//! label (quoted when it contains spaces — here terminated by the
//! probability column), the probability (`-` when unknown), then the
//! machine-readable effect.

use crate::fault::{Fault, FaultEffect};

/// Serialises faults to the fault-list format.
pub fn write_fault_list(faults: &[Fault]) -> String {
    let mut out = String::from("# AnaFAULT fault list: id class label | p | effect\n");
    for f in faults {
        let class = match &f.effect {
            FaultEffect::Short { .. } | FaultEffect::ElementShort { .. } => "BRI",
            FaultEffect::OpenTerminal { .. } => "SOP",
            FaultEffect::SplitNode { .. } => "OPN",
            FaultEffect::ParamDeviation { .. } => "SOFT",
        };
        let p = match f.probability {
            Some(p) => format!("{p:.3e}"),
            None => "-".to_string(),
        };
        let effect = match &f.effect {
            FaultEffect::Short { a, b } => format!("short {a} {b}"),
            FaultEffect::ElementShort { element, t1, t2 } => {
                format!("eshort {element} {t1} {t2}")
            }
            FaultEffect::OpenTerminal { element, terminal } => {
                format!("open {element} {terminal}")
            }
            FaultEffect::SplitNode {
                node,
                move_terminals,
            } => {
                let moves: Vec<String> = move_terminals
                    .iter()
                    .map(|(e, t)| format!("{e}.{t}"))
                    .collect();
                format!("split {node} {}", moves.join(" "))
            }
            FaultEffect::ParamDeviation { element, factor } => {
                format!("deviate {element} {factor}")
            }
        };
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            f.id, class, f.label, p, effect
        ));
    }
    out
}

/// Parses the fault-list format.
///
/// # Errors
/// Returns a message naming the offending line.
pub fn read_fault_list(text: &str) -> Result<Vec<Fault>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 5 {
            return Err(format!(
                "line {}: expected 5 tab-separated columns, got {}",
                ln + 1,
                cols.len()
            ));
        }
        let id: usize = cols[0]
            .parse()
            .map_err(|_| format!("line {}: bad id `{}`", ln + 1, cols[0]))?;
        let label = cols[2].to_string();
        let probability = if cols[3] == "-" {
            None
        } else {
            Some(
                cols[3]
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad probability `{}`", ln + 1, cols[3]))?,
            )
        };
        let toks: Vec<&str> = cols[4].split_whitespace().collect();
        let effect = parse_effect(&toks).map_err(|m| format!("line {}: {m}", ln + 1))?;
        let mut fault = Fault::new(id, label, effect);
        fault.probability = probability;
        out.push(fault);
    }
    Ok(out)
}

fn parse_effect(toks: &[&str]) -> Result<FaultEffect, String> {
    match toks {
        ["short", a, b] => Ok(FaultEffect::Short {
            a: a.to_string(),
            b: b.to_string(),
        }),
        ["eshort", e, t1, t2] => Ok(FaultEffect::ElementShort {
            element: e.to_string(),
            t1: t1.parse().map_err(|_| "bad terminal".to_string())?,
            t2: t2.parse().map_err(|_| "bad terminal".to_string())?,
        }),
        ["open", e, t] => Ok(FaultEffect::OpenTerminal {
            element: e.to_string(),
            terminal: t.parse().map_err(|_| "bad terminal".to_string())?,
        }),
        ["split", node, moves @ ..] => {
            let mut move_terminals = Vec::new();
            for m in moves {
                let (e, t) = m
                    .rsplit_once('.')
                    .ok_or_else(|| format!("bad split attachment `{m}`"))?;
                move_terminals.push((
                    e.to_string(),
                    t.parse().map_err(|_| "bad terminal".to_string())?,
                ));
            }
            Ok(FaultEffect::SplitNode {
                node: node.to_string(),
                move_terminals,
            })
        }
        ["deviate", e, f] => Ok(FaultEffect::ParamDeviation {
            element: e.to_string(),
            factor: f.parse().map_err(|_| "bad factor".to_string())?,
        }),
        _ => Err(format!("unknown effect `{}`", toks.join(" "))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_faults() -> Vec<Fault> {
        vec![
            Fault::new(
                6,
                "BRI n_ds_short 5->6",
                FaultEffect::Short {
                    a: "5".into(),
                    b: "6".into(),
                },
            )
            .with_probability(3.2e-8),
            Fault::new(
                339,
                "BRI metal1_short 1->5",
                FaultEffect::Short {
                    a: "1".into(),
                    b: "5".into(),
                },
            )
            .with_probability(1.1e-8),
            Fault::new(
                12,
                "SOP M7.d",
                FaultEffect::OpenTerminal {
                    element: "M7".into(),
                    terminal: 0,
                },
            ),
            Fault::new(
                17,
                "OPN metal1_open n4",
                FaultEffect::SplitNode {
                    node: "n4".into(),
                    move_terminals: vec![("M3".into(), 1), ("M4".into(), 1)],
                },
            )
            .with_probability(2.0e-9),
            Fault::new(
                99,
                "SOFT C1 x0.5",
                FaultEffect::ParamDeviation {
                    element: "C1".into(),
                    factor: 0.5,
                },
            ),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let faults = sample_faults();
        let text = write_fault_list(&faults);
        let back = read_fault_list(&text).unwrap();
        assert_eq!(faults.len(), back.len());
        for (a, b) in faults.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.label, b.label);
            assert_eq!(a.effect, b.effect);
            match (a.probability, b.probability) {
                (Some(x), Some(y)) => assert!((x - y).abs() / x < 1e-3),
                (None, None) => {}
                other => panic!("probability mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n6\tBRI\tlabel\t-\tshort a b\n";
        let faults = read_fault_list(text).unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].probability, None);
    }

    #[test]
    fn malformed_lines_error_with_location() {
        assert!(read_fault_list("not enough columns")
            .unwrap_err()
            .contains("line 1"));
        assert!(read_fault_list("x\tBRI\tl\t-\tshort a b")
            .unwrap_err()
            .contains("bad id"));
        assert!(read_fault_list("1\tBRI\tl\t-\tfrobnicate a b")
            .unwrap_err()
            .contains("unknown effect"));
        assert!(read_fault_list("1\tOPN\tl\t-\tsplit n badattachment")
            .unwrap_err()
            .contains("bad split"));
    }
}
