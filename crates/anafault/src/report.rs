//! Result presentation: protocol tables and ASCII coverage plots.
//!
//! "Results are presented in tabular form or in form of fault coverage
//! plots displaying the progress of the fault coverage versus time"
//! (paper §V).

use crate::campaign::{CampaignResult, FaultOutcome};

/// Formats the per-fault protocol table.
pub fn protocol_table(result: &CampaignResult) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<6} {:<34} {:>11} {:>14} {:>10}\n",
        "id", "fault", "p_j", "detected at", "sim [s]"
    ));
    s.push_str(&"-".repeat(80));
    s.push('\n');
    for r in &result.records {
        let p = match r.fault.probability {
            Some(p) => format!("{p:.2e}"),
            None => "-".to_string(),
        };
        let det = match &r.outcome {
            FaultOutcome::Detected { at, .. } => format!("{:.3} µs", at * 1e6),
            FaultOutcome::NotDetected => "undetected".to_string(),
            FaultOutcome::InjectionFailed(_) => "inject-fail".to_string(),
            FaultOutcome::SimulationFailed(_) => "sim-fail".to_string(),
        };
        s.push_str(&format!(
            "{:<6} {:<34} {:>11} {:>14} {:>10.4}\n",
            format!("#{}", r.fault.id),
            truncate(&r.fault.label, 34),
            p,
            det,
            r.sim_seconds
        ));
    }
    s.push_str(&"-".repeat(80));
    s.push('\n');
    s.push_str(&format!(
        "faults: {}   coverage: {:.1} %   fault-sim time: {:.3} s (nominal {:.3} s)\n",
        result.records.len(),
        result.final_coverage(),
        result.fault_sim_seconds(),
        result.nominal_seconds
    ));
    s
}

/// Renders the coverage-versus-time curve as an ASCII plot
/// (`width × height` characters), the in-terminal equivalent of the
/// paper's Fig. 5.
pub fn coverage_plot(curve: &[(f64, f64)], width: usize, height: usize) -> String {
    if curve.is_empty() || width < 2 || height < 2 {
        return String::new();
    }
    let t_max = curve.last().expect("non-empty").0.max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    for &(t, cov) in curve {
        let x = ((t / t_max) * (width - 1) as f64).round() as usize;
        let y = ((cov / 100.0) * (height - 1) as f64).round() as usize;
        let row = height - 1 - y.min(height - 1);
        grid[row][x.min(width - 1)] = '*';
    }
    let mut s = String::new();
    s.push_str("fault coverage [%]\n");
    for (i, row) in grid.iter().enumerate() {
        let level = 100.0 * (height - 1 - i) as f64 / (height - 1) as f64;
        s.push_str(&format!("{level:>5.0} |"));
        s.extend(row.iter());
        s.push('\n');
    }
    s.push_str(&format!("      +{}\n", "-".repeat(width)));
    s.push_str(&format!(
        "       0{:>width$}\n",
        format!("{:.1} µs", t_max * 1e6),
        width = width - 1
    ));
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignTelemetry, FaultRecord, FaultTelemetry};
    use crate::fault::{Fault, FaultEffect};
    use spice::Wave;

    fn result() -> CampaignResult {
        CampaignResult {
            observed: vec!["11".to_string()],
            nominals: vec![Wave::new(vec![0.0, 1e-6], vec![0.0, 5.0])],
            records: vec![
                FaultRecord {
                    fault: Fault::new(
                        6,
                        "BRI n_ds_short 5->6",
                        FaultEffect::Short {
                            a: "5".into(),
                            b: "6".into(),
                        },
                    )
                    .with_probability(3.2e-8),
                    outcome: FaultOutcome::Detected {
                        at: 0.5e-6,
                        node: "11".into(),
                    },
                    sim_seconds: 0.01,
                    newton_iterations: 400,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        7,
                        "SOP M3.g",
                        FaultEffect::OpenTerminal {
                            element: "M3".into(),
                            terminal: 1,
                        },
                    ),
                    outcome: FaultOutcome::NotDetected,
                    sim_seconds: 0.02,
                    newton_iterations: 400,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        8,
                        "BAD inject",
                        FaultEffect::Short {
                            a: "zz".into(),
                            b: "0".into(),
                        },
                    ),
                    outcome: FaultOutcome::InjectionFailed(
                        "fault references unknown node `zz`".into(),
                    ),
                    sim_seconds: 0.001,
                    newton_iterations: 0,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        9,
                        "BAD sim",
                        FaultEffect::Short {
                            a: "5".into(),
                            b: "0".into(),
                        },
                    ),
                    outcome: FaultOutcome::SimulationFailed("tran failed to converge".into()),
                    sim_seconds: 0.5,
                    newton_iterations: 12,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
            ],
            nominal_seconds: 0.01,
            total_seconds: 0.04,
            telemetry: CampaignTelemetry::default(),
        }
    }

    #[test]
    fn protocol_table_contains_key_fields() {
        let table = protocol_table(&result());
        assert!(table.contains("#6"));
        assert!(table.contains("n_ds_short"));
        assert!(table.contains("3.20e-8"));
        assert!(table.contains("undetected"));
        assert!(table.contains("coverage: 25.0 %"));
    }

    #[test]
    fn protocol_table_golden() {
        let expected = "\
id     fault                                      p_j    detected at    sim [s]\n\
--------------------------------------------------------------------------------\n\
#6     BRI n_ds_short 5->6                    3.20e-8       0.500 µs     0.0100\n\
#7     SOP M3.g                                     -     undetected     0.0200\n\
#8     BAD inject                                   -    inject-fail     0.0010\n\
#9     BAD sim                                      -       sim-fail     0.5000\n\
--------------------------------------------------------------------------------\n\
faults: 4   coverage: 25.0 %   fault-sim time: 0.531 s (nominal 0.010 s)\n";
        assert_eq!(protocol_table(&result()), expected);
    }

    #[test]
    fn coverage_plot_golden() {
        let curve = vec![(0.0, 0.0), (1e-6, 50.0), (2e-6, 100.0)];
        let expected = concat!(
            "fault coverage [%]\n",
            "  100 |                   *\n",
            "   75 |                    \n",
            "   50 |          *         \n",
            "   25 |                    \n",
            "    0 |*                   \n",
            "      +--------------------\n",
            "       0             2.0 µs\n",
        );
        assert_eq!(coverage_plot(&curve, 20, 5), expected);
    }

    #[test]
    fn coverage_plot_dimensions() {
        let curve = vec![(0.0, 0.0), (1e-6, 50.0), (2e-6, 100.0)];
        let plot = coverage_plot(&curve, 40, 10);
        let lines: Vec<&str> = plot.lines().collect();
        // header + 10 rows + axis + label
        assert_eq!(lines.len(), 13);
        assert!(plot.contains('*'));
        assert!(plot.contains("100 |"));
    }

    #[test]
    fn empty_curve_safe() {
        assert_eq!(coverage_plot(&[], 40, 10), "");
    }
}
