//! Parametric ("soft") fault generation.
//!
//! The paper's §II distinguishes the catastrophic ("hard") model from
//! the parameter-deviation ("soft") model, and its Fig. 4 remarks that
//! one extracted *hard* fault looks like a *soft* one at first glance.
//! This module generates the soft-fault campaigns that make such
//! comparisons possible: every passive/MOS element deviated by a set of
//! factors, plus Monte Carlo sampling of deviation factors.
//!
//! Both generators number their faults from a caller-chosen
//! `first_id`. Campaigns routinely mix LIFT's hard faults with soft
//! sweeps; starting the soft ids after the hard list keeps every fault
//! id unique in the merged protocol
//! (`SweepSpec { first_id: hard.len() + 1, .. }`).

use crate::fault::{Fault, FaultEffect};
use rand::{Rng, RngExt};
use spice::{Circuit, ElementKind};

/// Configuration for [`deviation_sweep`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Deviation factors applied to every scalable element.
    pub factors: Vec<f64>,
    /// Elements whose name starts with one of these prefixes are
    /// skipped (testbench sources, injected fault elements, supply
    /// resistors, …). Case-insensitive.
    pub exclude_prefixes: Vec<String>,
    /// Id of the first generated fault; subsequent faults count up from
    /// here. Offset past the hard-fault list when mixing lists.
    pub first_id: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            factors: Vec::new(),
            exclude_prefixes: Vec::new(),
            first_id: 1,
        }
    }
}

impl SweepSpec {
    /// A sweep over `factors` with no exclusions, numbering from 1.
    pub fn new(factors: impl Into<Vec<f64>>) -> Self {
        SweepSpec {
            factors: factors.into(),
            ..SweepSpec::default()
        }
    }

    /// Same spec with excluded name prefixes.
    pub fn exclude<I, S>(mut self, prefixes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exclude_prefixes = prefixes.into_iter().map(Into::into).collect();
        self
    }

    /// Same spec numbering faults from `first_id`.
    pub fn first_id(mut self, id: usize) -> Self {
        self.first_id = id;
        self
    }

    fn excludes(&self, name: &str) -> bool {
        name_excluded(name, &self.exclude_prefixes)
    }
}

/// Case-insensitive prefix exclusion shared by both generators.
fn name_excluded(name: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        name.to_ascii_uppercase()
            .starts_with(&p.to_ascii_uppercase())
    })
}

/// Configuration for [`monte_carlo_deviations`].
#[derive(Debug, Clone)]
pub struct MonteCarloSpec {
    /// Number of faults to draw.
    pub n: usize,
    /// Deviation factors are log-uniform in `[1/max_factor, max_factor]`.
    pub max_factor: f64,
    /// Excluded element-name prefixes (case-insensitive).
    pub exclude_prefixes: Vec<String>,
    /// Id of the first generated fault (see [`SweepSpec::first_id`]).
    pub first_id: usize,
}

impl MonteCarloSpec {
    /// `n` draws bounded by `max_factor`, no exclusions, numbering
    /// from 1.
    pub fn new(n: usize, max_factor: f64) -> Self {
        MonteCarloSpec {
            n,
            max_factor,
            exclude_prefixes: Vec::new(),
            first_id: 1,
        }
    }

    /// Same spec with excluded name prefixes.
    pub fn exclude<I, S>(mut self, prefixes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exclude_prefixes = prefixes.into_iter().map(Into::into).collect();
        self
    }

    /// Same spec numbering faults from `first_id`.
    pub fn first_id(mut self, id: usize) -> Self {
        self.first_id = id;
        self
    }
}

fn scalable(kind: &ElementKind) -> bool {
    matches!(
        kind,
        ElementKind::Resistor { .. } | ElementKind::Capacitor { .. } | ElementKind::Mosfet { .. }
    )
}

/// Deterministic soft-fault sweep: every resistor, capacitor and MOS
/// width deviated by each factor in `spec.factors`.
pub fn deviation_sweep(ckt: &Circuit, spec: &SweepSpec) -> Vec<Fault> {
    let mut out = Vec::new();
    let mut id = spec.first_id;
    for e in ckt.elements() {
        if spec.excludes(&e.name) || !scalable(&e.kind) {
            continue;
        }
        for &factor in &spec.factors {
            out.push(Fault::new(
                id,
                format!("SOFT {} x{:.3}", e.name, factor),
                FaultEffect::ParamDeviation {
                    element: e.name.clone(),
                    factor,
                },
            ));
            id += 1;
        }
    }
    out
}

/// Monte Carlo soft faults: `spec.n` faults, each deviating one random
/// scalable element by a log-uniform factor in
/// `[1/spec.max_factor, spec.max_factor]`.
///
/// # Panics
/// Panics when the circuit has no scalable elements or
/// `spec.max_factor <= 1`.
pub fn monte_carlo_deviations<R: Rng + ?Sized>(
    ckt: &Circuit,
    spec: &MonteCarloSpec,
    rng: &mut R,
) -> Vec<Fault> {
    assert!(spec.max_factor > 1.0, "max_factor must exceed 1");
    let candidates: Vec<&str> = ckt
        .elements()
        .iter()
        .filter(|e| scalable(&e.kind) && !name_excluded(&e.name, &spec.exclude_prefixes))
        .map(|e| e.name.as_str())
        .collect();
    assert!(!candidates.is_empty(), "no scalable elements");
    let log_max = spec.max_factor.ln();
    (0..spec.n)
        .map(|i| {
            let element = candidates[rng.random_range(0..candidates.len())].to_string();
            let factor = (rng.random_range(-log_max..log_max)).exp();
            Fault::new(
                spec.first_id + i,
                format!("SOFT-MC {element} x{factor:.3}"),
                FaultEffect::ParamDeviation { element, factor },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, FaultOutcome};
    use crate::coverage::DetectionSpec;
    use crate::inject::HardFaultModel;
    use rand::SeedableRng;
    use spice::parser::parse_netlist;
    use spice::tran::TranSpec;
    use std::collections::HashSet;

    fn rc() -> Circuit {
        parse_netlist(
            "rc\nV1 in 0 pulse(0 5 0 1u 1u 40u 100u)\nR1 in out 10k\nC1 out 0 1n ic=0\n.end\n",
        )
        .unwrap()
    }

    #[test]
    fn sweep_excludes_testbench() {
        let faults = deviation_sweep(&rc(), &SweepSpec::new([0.5, 2.0]).exclude(["V"]));
        // R1 and C1, two factors each.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|f| !f.label.contains("V1")));
    }

    #[test]
    fn id_offset_prevents_collisions_with_hard_lists() {
        // A LIFT-style hard list numbered 1..=40.
        let hard_ids: HashSet<usize> = (1..=40).collect();
        let spec = SweepSpec::new([0.5, 2.0]).exclude(["V"]).first_id(41);
        let soft = deviation_sweep(&rc(), &spec);
        assert_eq!(
            soft.iter().map(|f| f.id).collect::<Vec<_>>(),
            vec![41, 42, 43, 44]
        );
        assert!(soft.iter().all(|f| !hard_ids.contains(&f.id)));

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mc = monte_carlo_deviations(
            &rc(),
            &MonteCarloSpec::new(10, 4.0).exclude(["V"]).first_id(45),
            &mut rng,
        );
        let mc_ids: Vec<usize> = mc.iter().map(|f| f.id).collect();
        assert_eq!(mc_ids, (45..55).collect::<Vec<_>>());
        // The merged campaign has globally unique ids.
        let mut all = hard_ids;
        for f in soft.iter().chain(&mc) {
            assert!(all.insert(f.id), "duplicate fault id {}", f.id);
        }
    }

    #[test]
    fn small_deviations_hide_inside_tolerance_large_ones_do_not() {
        let campaign = Campaign::builder()
            .testbench(rc())
            .tran(TranSpec::new(0.5e-6, 50e-6).with_uic())
            .observe("out")
            .detection(DetectionSpec {
                v_tol: 0.5,
                t_tol: 1e-6,
            })
            .model(HardFaultModel::paper_resistor())
            .threads(2)
            .build()
            .unwrap();
        let faults = deviation_sweep(&rc(), &SweepSpec::new([1.02, 5.0]).exclude(["V"]));
        let result = campaign.run(&faults).unwrap();
        for r in &result.records {
            let is_small = r.fault.label.contains("x1.02");
            match (&r.outcome, is_small) {
                (FaultOutcome::NotDetected, true) => {}
                (FaultOutcome::Detected { .. }, false) => {}
                other => panic!("{}: unexpected {:?}", r.fault.label, other),
            }
        }
    }

    #[test]
    fn monte_carlo_factors_are_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let faults = monte_carlo_deviations(
            &rc(),
            &MonteCarloSpec::new(200, 4.0).exclude(["V"]),
            &mut rng,
        );
        assert_eq!(faults.len(), 200);
        for f in faults {
            let FaultEffect::ParamDeviation { factor, .. } = f.effect else {
                panic!("soft faults only");
            };
            assert!((0.25..=4.0).contains(&factor), "factor {factor}");
        }
    }
}
