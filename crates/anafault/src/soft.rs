//! Parametric ("soft") fault generation.
//!
//! The paper's §II distinguishes the catastrophic ("hard") model from
//! the parameter-deviation ("soft") model, and its Fig. 4 remarks that
//! one extracted *hard* fault looks like a *soft* one at first glance.
//! This module generates the soft-fault campaigns that make such
//! comparisons possible: every passive/MOS element deviated by a set of
//! factors, plus Monte Carlo sampling of deviation factors.

use crate::fault::{Fault, FaultEffect};
use rand::{Rng, RngExt};
use spice::{Circuit, ElementKind};

/// Deterministic soft-fault sweep: every resistor, capacitor and MOS
/// width deviated by each factor in `factors`.
///
/// Elements whose name starts with one of `exclude_prefixes` are
/// skipped (testbench sources, injected fault elements, supply
/// resistors, …).
pub fn deviation_sweep(ckt: &Circuit, factors: &[f64], exclude_prefixes: &[&str]) -> Vec<Fault> {
    let mut out = Vec::new();
    let mut id = 1usize;
    for e in ckt.elements() {
        if exclude_prefixes
            .iter()
            .any(|p| e.name.to_ascii_uppercase().starts_with(&p.to_ascii_uppercase()))
        {
            continue;
        }
        let scalable = matches!(
            e.kind,
            ElementKind::Resistor { .. } | ElementKind::Capacitor { .. } | ElementKind::Mosfet { .. }
        );
        if !scalable {
            continue;
        }
        for &factor in factors {
            out.push(Fault::new(
                id,
                format!("SOFT {} x{:.3}", e.name, factor),
                FaultEffect::ParamDeviation {
                    element: e.name.clone(),
                    factor,
                },
            ));
            id += 1;
        }
    }
    out
}

/// Monte Carlo soft faults: `n` faults, each deviating one random
/// scalable element by a log-uniform factor in `[1/max_factor,
/// max_factor]`.
///
/// # Panics
/// Panics when the circuit has no scalable elements or
/// `max_factor <= 1`.
pub fn monte_carlo_deviations<R: Rng + ?Sized>(
    ckt: &Circuit,
    n: usize,
    max_factor: f64,
    exclude_prefixes: &[&str],
    rng: &mut R,
) -> Vec<Fault> {
    assert!(max_factor > 1.0, "max_factor must exceed 1");
    let candidates: Vec<&str> = ckt
        .elements()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                ElementKind::Resistor { .. }
                    | ElementKind::Capacitor { .. }
                    | ElementKind::Mosfet { .. }
            ) && !exclude_prefixes.iter().any(|p| {
                e.name
                    .to_ascii_uppercase()
                    .starts_with(&p.to_ascii_uppercase())
            })
        })
        .map(|e| e.name.as_str())
        .collect();
    assert!(!candidates.is_empty(), "no scalable elements");
    let log_max = max_factor.ln();
    (0..n)
        .map(|i| {
            let element = candidates[rng.random_range(0..candidates.len())].to_string();
            let factor = (rng.random_range(-log_max..log_max)).exp();
            Fault::new(
                i + 1,
                format!("SOFT-MC {element} x{factor:.3}"),
                FaultEffect::ParamDeviation { element, factor },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, FaultOutcome};
    use crate::coverage::DetectionSpec;
    use crate::inject::HardFaultModel;
    use rand::SeedableRng;
    use spice::parser::parse_netlist;
    use spice::tran::TranSpec;

    fn rc() -> Circuit {
        parse_netlist(
            "rc\nV1 in 0 pulse(0 5 0 1u 1u 40u 100u)\nR1 in out 10k\nC1 out 0 1n ic=0\n.end\n",
        )
        .unwrap()
    }

    #[test]
    fn sweep_excludes_testbench() {
        let faults = deviation_sweep(&rc(), &[0.5, 2.0], &["V"]);
        // R1 and C1, two factors each.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|f| !f.label.contains("V1")));
    }

    #[test]
    fn small_deviations_hide_inside_tolerance_large_ones_do_not() {
        let campaign = Campaign {
            circuit: rc(),
            tran: TranSpec::new(0.5e-6, 50e-6).with_uic(),
            observe: "out".into(),
            detection: DetectionSpec { v_tol: 0.5, t_tol: 1e-6 },
            model: HardFaultModel::paper_resistor(),
            threads: 2,
        };
        let faults = deviation_sweep(&rc(), &[1.02, 5.0], &["V"]);
        let result = campaign.run(&faults).unwrap();
        for r in &result.records {
            let is_small = r.fault.label.contains("x1.02");
            match (&r.outcome, is_small) {
                (FaultOutcome::NotDetected, true) => {}
                (FaultOutcome::Detected { .. }, false) => {}
                other => panic!("{}: unexpected {:?}", r.fault.label, other),
            }
        }
    }

    #[test]
    fn monte_carlo_factors_are_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let faults = monte_carlo_deviations(&rc(), 200, 4.0, &["V"], &mut rng);
        assert_eq!(faults.len(), 200);
        for f in faults {
            let FaultEffect::ParamDeviation { factor, .. } = f.effect else {
                panic!("soft faults only");
            };
            assert!(factor >= 0.25 && factor <= 4.0, "factor {factor}");
        }
    }
}
