//! Fault injection: rewriting the in-memory netlist.
//!
//! Stock circuit simulators "lack the capability to alter the topology
//! of a circuit in its textual or stored matrix representation" (paper
//! §II); this module is exactly that capability. Every injection works
//! on a deep copy, so the nominal circuit is never disturbed.

use crate::fault::{Fault, FaultEffect};
use spice::{Circuit, ElementKind, Waveform};

/// How hard faults map onto circuit elements (paper §VI compares both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HardFaultModel {
    /// Shorts become a small resistor, opens a large one. The paper's
    /// values: 0.01 Ω and 100 MΩ.
    Resistor {
        /// Short resistance (Ω).
        r_short: f64,
        /// Open resistance (Ω).
        r_open: f64,
    },
    /// Shorts become an ideal 0 V source, opens an ideal 0 A source.
    Source,
}

impl HardFaultModel {
    /// The paper's resistor model: 0.01 Ω shorts, 100 MΩ opens.
    pub fn paper_resistor() -> Self {
        HardFaultModel::Resistor {
            r_short: 0.01,
            r_open: 100e6,
        }
    }
}

impl Default for HardFaultModel {
    fn default() -> Self {
        HardFaultModel::paper_resistor()
    }
}

/// Errors surfaced by injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// The fault references a node the circuit does not have.
    UnknownNode(String),
    /// The fault references an element the circuit does not have.
    UnknownElement(String),
    /// A terminal index is out of range for the element.
    BadTerminal {
        /// Element name.
        element: String,
        /// Offending terminal index.
        terminal: usize,
    },
    /// The parametric fault target has no scalable parameter.
    NotScalable(String),
}

impl core::fmt::Display for InjectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectError::UnknownNode(n) => write!(f, "fault references unknown node `{n}`"),
            InjectError::UnknownElement(e) => {
                write!(f, "fault references unknown element `{e}`")
            }
            InjectError::BadTerminal { element, terminal } => {
                write!(f, "element `{element}` has no terminal {terminal}")
            }
            InjectError::NotScalable(e) => {
                write!(f, "element `{e}` has no parameter to deviate")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// Produces a faulty copy of `base` with `fault` injected under `model`.
///
/// # Errors
/// Returns [`InjectError`] when the fault references nodes/elements the
/// circuit does not contain.
pub fn inject(
    base: &Circuit,
    fault: &Fault,
    model: HardFaultModel,
) -> Result<Circuit, InjectError> {
    let mut ckt = base.clone();
    ckt.title = format!("{} [faulty: #{} {}]", base.title, fault.id, fault.label);
    let tag = format!("F{}", fault.id);
    match &fault.effect {
        FaultEffect::Short { a, b } => {
            let na = ckt
                .find_node(a)
                .ok_or_else(|| InjectError::UnknownNode(a.clone()))?;
            let nb = ckt
                .find_node(b)
                .ok_or_else(|| InjectError::UnknownNode(b.clone()))?;
            add_short(&mut ckt, &tag, na, nb, model);
        }
        FaultEffect::ElementShort { element, t1, t2 } => {
            let ei = ckt
                .find_element(element)
                .ok_or_else(|| InjectError::UnknownElement(element.clone()))?;
            let nodes = &ckt.elements()[ei].nodes;
            let na = *nodes.get(*t1).ok_or(InjectError::BadTerminal {
                element: element.clone(),
                terminal: *t1,
            })?;
            let nb = *nodes.get(*t2).ok_or(InjectError::BadTerminal {
                element: element.clone(),
                terminal: *t2,
            })?;
            add_short(&mut ckt, &tag, na, nb, model);
        }
        FaultEffect::OpenTerminal { element, terminal } => {
            let ei = ckt
                .find_element(element)
                .ok_or_else(|| InjectError::UnknownElement(element.clone()))?;
            if *terminal >= ckt.elements()[ei].nodes.len() {
                return Err(InjectError::BadTerminal {
                    element: element.clone(),
                    terminal: *terminal,
                });
            }
            let old = ckt.elements()[ei].nodes[*terminal];
            let fresh = ckt.fresh_node(&format!("{tag}_open"));
            ckt.elements_mut()[ei].nodes[*terminal] = fresh;
            add_open(&mut ckt, &tag, old, fresh, model);
        }
        FaultEffect::SplitNode {
            node,
            move_terminals,
        } => {
            let old = ckt
                .find_node(node)
                .ok_or_else(|| InjectError::UnknownNode(node.clone()))?;
            let fresh = ckt.fresh_node(&format!("{tag}_split"));
            for (element, terminal) in move_terminals {
                let ei = ckt
                    .find_element(element)
                    .ok_or_else(|| InjectError::UnknownElement(element.clone()))?;
                let nodes = &mut ckt.elements_mut()[ei].nodes;
                let slot = nodes.get_mut(*terminal).ok_or(InjectError::BadTerminal {
                    element: element.clone(),
                    terminal: *terminal,
                })?;
                if *slot != old {
                    return Err(InjectError::BadTerminal {
                        element: element.clone(),
                        terminal: *terminal,
                    });
                }
                *slot = fresh;
            }
            add_open(&mut ckt, &tag, old, fresh, model);
        }
        FaultEffect::ParamDeviation { element, factor } => {
            let ei = ckt
                .find_element(element)
                .ok_or_else(|| InjectError::UnknownElement(element.clone()))?;
            match &mut ckt.elements_mut()[ei].kind {
                ElementKind::Resistor { r } => *r *= factor,
                ElementKind::Capacitor { c, .. } => *c *= factor,
                ElementKind::Mosfet { w, .. } => *w *= factor,
                _ => return Err(InjectError::NotScalable(element.clone())),
            }
        }
    }
    Ok(ckt)
}

fn add_short(ckt: &mut Circuit, tag: &str, a: usize, b: usize, model: HardFaultModel) {
    match model {
        HardFaultModel::Resistor { r_short, .. } => {
            ckt.add(
                format!("R{tag}_short"),
                vec![a, b],
                ElementKind::Resistor { r: r_short },
            );
        }
        HardFaultModel::Source => {
            ckt.add(
                format!("V{tag}_short"),
                vec![a, b],
                ElementKind::Vsource {
                    wave: Waveform::Dc(0.0),
                },
            );
        }
    }
}

fn add_open(ckt: &mut Circuit, tag: &str, a: usize, b: usize, model: HardFaultModel) {
    match model {
        HardFaultModel::Resistor { r_open, .. } => {
            ckt.add(
                format!("R{tag}_openr"),
                vec![a, b],
                ElementKind::Resistor { r: r_open },
            );
        }
        HardFaultModel::Source => {
            // An ideal open is "no element at all"; a 0 A source keeps
            // the break explicit in the netlist (and exercises the same
            // MNA path ELDO's source model used).
            ckt.add(
                format!("I{tag}_open"),
                vec![a, b],
                ElementKind::Isource {
                    wave: Waveform::Dc(0.0),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use spice::parser::parse_netlist;
    use spice::tran::{tran, TranSpec};

    fn divider() -> Circuit {
        parse_netlist("divider\nV1 in 0 dc 10\nR1 in mid 1k\nR2 mid out 1k\nR3 out 0 2k\n.end\n")
            .unwrap()
    }

    fn v_at(ckt: &Circuit, node: &str) -> f64 {
        let res = tran(ckt, &TranSpec::new(1e-6, 1e-5)).unwrap();
        res.wave(node).unwrap().last_value()
    }

    #[test]
    fn nominal_divider_sanity() {
        // 10 V over 4k: mid = 7.5, out = 5.0.
        let c = divider();
        assert!((v_at(&c, "mid") - 7.5).abs() < 1e-6);
        assert!((v_at(&c, "out") - 5.0).abs() < 1e-6);
    }

    #[test]
    fn short_resistor_model_collapses_nodes() {
        let f = Fault::new(
            1,
            "BRI mid->out",
            FaultEffect::Short {
                a: "mid".into(),
                b: "out".into(),
            },
        );
        let faulty = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        // R2 bypassed: divider becomes 1k over 2k -> out = mid ≈ 6.67 V.
        let v = v_at(&faulty, "out");
        assert!((v - 10.0 * 2.0 / 3.0).abs() < 1e-3, "v = {v}");
        assert_eq!(faulty.elements().len(), divider().elements().len() + 1);
    }

    #[test]
    fn short_source_model_matches_resistor_model() {
        let f = Fault::new(
            1,
            "BRI mid->out",
            FaultEffect::Short {
                a: "mid".into(),
                b: "out".into(),
            },
        );
        let r = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        let s = inject(&divider(), &f, HardFaultModel::Source).unwrap();
        assert!((v_at(&r, "out") - v_at(&s, "out")).abs() < 1e-3);
    }

    #[test]
    fn open_terminal_disconnects() {
        // Open R3's upper terminal: no current -> out floats near mid
        // path... with the 100 MΩ model `out` sits at the divider of
        // 2k/(100M+2k) — effectively ground side cut, so out ≈ V_mid ·
        // tiny. The load disappears: mid-out chain carries (almost) no
        // current, so mid ≈ in = 10.
        let f = Fault::new(
            2,
            "OPN R3.0",
            FaultEffect::OpenTerminal {
                element: "R3".into(),
                terminal: 0,
            },
        );
        let faulty = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        let v_mid = v_at(&faulty, "mid");
        assert!((v_mid - 10.0).abs() < 0.01, "mid = {v_mid}");
    }

    #[test]
    fn open_source_model_equivalent() {
        let f = Fault::new(
            2,
            "OPN R3.0",
            FaultEffect::OpenTerminal {
                element: "R3".into(),
                terminal: 0,
            },
        );
        let s = inject(&divider(), &f, HardFaultModel::Source).unwrap();
        let v_mid = v_at(&s, "mid");
        assert!((v_mid - 10.0).abs() < 0.01, "mid = {v_mid}");
    }

    #[test]
    fn element_short_uses_current_terminals() {
        // Short across R2 (its two terminals): same result as mid-out
        // node short.
        let f = Fault::new(
            3,
            "BRI R2",
            FaultEffect::ElementShort {
                element: "R2".into(),
                t1: 0,
                t2: 1,
            },
        );
        let faulty = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        assert!((v_at(&faulty, "out") - 10.0 * 2.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn split_node_moves_attachments() {
        // Split `mid`: move R2's terminal 0 to the new node. The chain
        // through R2/R3 is broken -> out ≈ 0 (pulled down through R3 via
        // 100 MΩ leakage only).
        let f = Fault::new(
            4,
            "OPN split mid",
            FaultEffect::SplitNode {
                node: "mid".into(),
                move_terminals: vec![("R2".to_string(), 0)],
            },
        );
        let faulty = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        let v_out = v_at(&faulty, "out");
        assert!(v_out < 0.05, "out = {v_out}");
        // Node orders: original circuit mid has order 2; after the
        // split each piece has order fewer attachments + the bridging
        // resistor.
        assert!(faulty.node_count() > divider().node_count());
    }

    #[test]
    fn split_node_rejects_wrong_attachment() {
        // R3 terminal 0 is `out`, not `mid` — the fault is inconsistent.
        let f = Fault::new(
            5,
            "bad split",
            FaultEffect::SplitNode {
                node: "mid".into(),
                move_terminals: vec![("R3".to_string(), 0)],
            },
        );
        let err = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap_err();
        assert!(matches!(err, InjectError::BadTerminal { .. }));
    }

    #[test]
    fn param_deviation_scales_resistance() {
        let f = Fault::new(
            6,
            "SOFT R3 x2",
            FaultEffect::ParamDeviation {
                element: "R3".into(),
                factor: 2.0,
            },
        );
        let faulty = inject(&divider(), &f, HardFaultModel::paper_resistor()).unwrap();
        // out = 10 * 4k/6k ≈ 6.67.
        assert!((v_at(&faulty, "out") - 10.0 * 4.0 / 6.0).abs() < 1e-3);
    }

    #[test]
    fn unknown_references_error() {
        let f = Fault::new(
            7,
            "bad",
            FaultEffect::Short {
                a: "zz".into(),
                b: "out".into(),
            },
        );
        assert!(matches!(
            inject(&divider(), &f, HardFaultModel::paper_resistor()),
            Err(InjectError::UnknownNode(_))
        ));
        let f = Fault::new(
            8,
            "bad",
            FaultEffect::OpenTerminal {
                element: "R9".into(),
                terminal: 0,
            },
        );
        assert!(matches!(
            inject(&divider(), &f, HardFaultModel::paper_resistor()),
            Err(InjectError::UnknownElement(_))
        ));
    }

    #[test]
    fn base_circuit_is_untouched() {
        let base = divider();
        let f = Fault::new(
            9,
            "BRI in->out",
            FaultEffect::Short {
                a: "in".into(),
                b: "out".into(),
            },
        );
        let _ = inject(&base, &f, HardFaultModel::paper_resistor()).unwrap();
        assert_eq!(base.elements().len(), 4);
        assert!((v_at(&base, "out") - 5.0).abs() < 1e-6);
    }
}
