//! The fault vocabulary (paper Fig. 2 plus parametric faults).

/// A MOS terminal, used by element-level faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosTerminal {
    /// Drain (terminal 0 of an `M` element).
    Drain,
    /// Gate (terminal 1).
    Gate,
    /// Source (terminal 2).
    Source,
    /// Bulk (terminal 3).
    Bulk,
}

impl MosTerminal {
    /// The element terminal index.
    pub fn index(&self) -> usize {
        match self {
            MosTerminal::Drain => 0,
            MosTerminal::Gate => 1,
            MosTerminal::Source => 2,
            MosTerminal::Bulk => 3,
        }
    }

    /// Single-letter name (`d`, `g`, `s`, `b`).
    pub fn letter(&self) -> char {
        match self {
            MosTerminal::Drain => 'd',
            MosTerminal::Gate => 'g',
            MosTerminal::Source => 's',
            MosTerminal::Bulk => 'b',
        }
    }

    /// Parses a single-letter terminal name.
    pub fn from_letter(c: char) -> Option<MosTerminal> {
        match c.to_ascii_lowercase() {
            'd' => Some(MosTerminal::Drain),
            'g' => Some(MosTerminal::Gate),
            's' => Some(MosTerminal::Source),
            'b' => Some(MosTerminal::Bulk),
            _ => None,
        }
    }
}

/// The electrical effect of a fault, in terms of the simulated netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEffect {
    /// Short between two circuit nodes. Covers both *local* shorts
    /// (terminals of one element) and *global* shorts (arbitrary node
    /// pairs) — the distinction is bookkeeping, the injection is the
    /// same.
    Short {
        /// First node name.
        a: String,
        /// Second node name.
        b: String,
    },
    /// Short across two terminals of one element (resolved to the
    /// element's nodes at injection time; survives node renames).
    ElementShort {
        /// Element instance name.
        element: String,
        /// First terminal index.
        t1: usize,
        /// Second terminal index.
        t2: usize,
    },
    /// Local open: one terminal of one element is disconnected
    /// (a transistor stuck-open when applied to a MOS d/g/s).
    OpenTerminal {
        /// Element instance name.
        element: String,
        /// Terminal index to open.
        terminal: usize,
    },
    /// A node of order *n* splits into two nodes of order *k* and
    /// *n−k*: the listed `(element, terminal)` attachments move to the
    /// new node (paper Fig. 2, "split node").
    SplitNode {
        /// The node to split.
        node: String,
        /// Attachments moved to the newly created node.
        move_terminals: Vec<(String, usize)>,
    },
    /// Parametric (soft) fault: an element parameter is multiplied by
    /// `factor` (resistance, capacitance, or MOS W).
    ParamDeviation {
        /// Element instance name.
        element: String,
        /// Multiplier on the element's primary parameter.
        factor: f64,
    },
}

impl FaultEffect {
    /// Short classification helper: true for `Short`/`ElementShort`.
    pub fn is_short(&self) -> bool {
        matches!(
            self,
            FaultEffect::Short { .. } | FaultEffect::ElementShort { .. }
        )
    }

    /// True for the open-class effects (`OpenTerminal`, `SplitNode`).
    pub fn is_open(&self) -> bool {
        matches!(
            self,
            FaultEffect::OpenTerminal { .. } | FaultEffect::SplitNode { .. }
        )
    }
}

/// A fault: an identifier, a human-readable label (the paper's
/// `#6 BRI n_ds_short 5->6` style), an occurrence probability when known
/// (from LIFT), and the electrical effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Numeric identifier (candidate number; sparse after reduction).
    pub id: usize,
    /// Display label.
    pub label: String,
    /// Probability of occurrence `p_j` from the defect statistics;
    /// `None` for schematic-assumed faults.
    pub probability: Option<f64>,
    /// The electrical effect to inject.
    pub effect: FaultEffect,
}

impl Fault {
    /// Creates a fault with the given id, label and effect.
    pub fn new(id: usize, label: impl Into<String>, effect: FaultEffect) -> Self {
        Fault {
            id,
            label: label.into(),
            probability: None,
            effect,
        }
    }

    /// Same fault with an attached probability.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = Some(p);
        self
    }
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{} {}", self.id, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_round_trip() {
        for t in [
            MosTerminal::Drain,
            MosTerminal::Gate,
            MosTerminal::Source,
            MosTerminal::Bulk,
        ] {
            assert_eq!(MosTerminal::from_letter(t.letter()), Some(t));
        }
        assert_eq!(MosTerminal::from_letter('x'), None);
    }

    #[test]
    fn classification_helpers() {
        let s = FaultEffect::Short {
            a: "1".into(),
            b: "2".into(),
        };
        assert!(s.is_short() && !s.is_open());
        let o = FaultEffect::OpenTerminal {
            element: "M1".into(),
            terminal: 0,
        };
        assert!(o.is_open() && !o.is_short());
        let sn = FaultEffect::SplitNode {
            node: "5".into(),
            move_terminals: vec![],
        };
        assert!(sn.is_open());
        let p = FaultEffect::ParamDeviation {
            element: "R1".into(),
            factor: 2.0,
        };
        assert!(!p.is_open() && !p.is_short());
    }

    #[test]
    fn display_matches_paper_style() {
        let f = Fault::new(
            6,
            "BRI n_ds_short 5->6",
            FaultEffect::Short {
                a: "5".into(),
                b: "6".into(),
            },
        );
        assert_eq!(f.to_string(), "#6 BRI n_ds_short 5->6");
    }
}
