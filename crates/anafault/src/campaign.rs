//! The automatic fault-simulation campaign.
//!
//! Mirrors AnaFAULT's "repetitive cycle of three main phases":
//! preprocessing (fault injection into the in-memory netlist), the call
//! of the kernel simulator, and post-processing (comparison against the
//! nominal response and statistics). Faults run concurrently on worker
//! threads — the reproduction of the paper's workstation-cluster
//! parallel execution [21].

use crate::coverage::{coverage_curve, final_coverage, DetectionSpec};
use crate::fault::Fault;
use crate::inject::{inject, HardFaultModel};
use spice::tran::{tran, TranSpec};
use spice::{Circuit, SpiceError, Wave};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened to one fault during the campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// The faulty response left the tolerance band at time `at`.
    Detected {
        /// Detection time (s).
        at: f64,
    },
    /// The faulty response stayed within tolerance for the whole test.
    NotDetected,
    /// Fault injection failed (inconsistent fault list).
    InjectionFailed(String),
    /// The kernel simulator failed on the faulty circuit.
    SimulationFailed(String),
}

/// Per-fault protocol record.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// The fault simulated.
    pub fault: Fault,
    /// Its outcome.
    pub outcome: FaultOutcome,
    /// Wall-clock seconds spent simulating this fault.
    pub sim_seconds: f64,
    /// Kernel work measure (accepted Newton solves).
    pub newton_iterations: u64,
}

/// The campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The fault-free circuit including the stimulus/testbench.
    pub circuit: Circuit,
    /// Transient analysis to run for nominal and every fault.
    pub tran: TranSpec,
    /// The observed output node (the paper observes V(11)).
    pub observe: String,
    /// Detection tolerances.
    pub detection: DetectionSpec,
    /// Hard fault model.
    pub model: HardFaultModel,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
}

/// The campaign result: nominal response plus per-fault records.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Nominal waveform at the observed node.
    pub nominal: Wave,
    /// One record per fault, in input order.
    pub records: Vec<FaultRecord>,
    /// Seconds for the nominal simulation.
    pub nominal_seconds: f64,
    /// Wall-clock seconds for the whole campaign.
    pub total_seconds: f64,
}

impl Campaign {
    /// Runs the campaign on `faults`.
    ///
    /// # Errors
    /// Fails only when the *nominal* simulation fails or the observed
    /// node does not exist; per-fault problems are recorded in the
    /// result instead.
    pub fn run(&self, faults: &[Fault]) -> Result<CampaignResult, SpiceError> {
        let t_start = Instant::now();
        let t0 = Instant::now();
        let nominal_res = tran(&self.circuit, &self.tran)?;
        let nominal_seconds = t0.elapsed().as_secs_f64();
        let nominal = nominal_res.wave(&self.observe).ok_or_else(|| {
            SpiceError::Elaboration(format!("observed node `{}` not found", self.observe))
        })?;

        let n_threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<FaultRecord>>> = Mutex::new(vec![None; faults.len()]);
        std::thread::scope(|scope| {
            for _ in 0..n_threads.min(faults.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= faults.len() {
                        break;
                    }
                    let record = self.simulate_one(&faults[i], &nominal);
                    slots.lock().expect("no poisoned lock")[i] = Some(record);
                });
            }
        });
        let records: Vec<FaultRecord> = slots
            .into_inner()
            .expect("no poisoned lock")
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();

        Ok(CampaignResult {
            nominal,
            records,
            nominal_seconds,
            total_seconds: t_start.elapsed().as_secs_f64(),
        })
    }

    fn simulate_one(&self, fault: &Fault, nominal: &Wave) -> FaultRecord {
        let t0 = Instant::now();
        let faulty = match inject(&self.circuit, fault, self.model) {
            Ok(c) => c,
            Err(e) => {
                return FaultRecord {
                    fault: fault.clone(),
                    outcome: FaultOutcome::InjectionFailed(e.to_string()),
                    sim_seconds: t0.elapsed().as_secs_f64(),
                    newton_iterations: 0,
                }
            }
        };
        match tran(&faulty, &self.tran) {
            Ok(res) => {
                let outcome = match res.wave(&self.observe) {
                    Some(w) => match self.detection.first_detection(&w, nominal) {
                        Some(at) => FaultOutcome::Detected { at },
                        None => FaultOutcome::NotDetected,
                    },
                    None => FaultOutcome::SimulationFailed(format!(
                        "observed node `{}` missing in faulty circuit",
                        self.observe
                    )),
                };
                FaultRecord {
                    fault: fault.clone(),
                    outcome,
                    sim_seconds: t0.elapsed().as_secs_f64(),
                    newton_iterations: res.newton_iterations,
                }
            }
            Err(e) => FaultRecord {
                fault: fault.clone(),
                outcome: FaultOutcome::SimulationFailed(e.to_string()),
                sim_seconds: t0.elapsed().as_secs_f64(),
                newton_iterations: 0,
            },
        }
    }
}

impl CampaignResult {
    /// Detection times per fault (`None` for undetected or failed).
    pub fn detections(&self) -> Vec<Option<f64>> {
        self.records
            .iter()
            .map(|r| match r.outcome {
                FaultOutcome::Detected { at } => Some(at),
                _ => None,
            })
            .collect()
    }

    /// Fault coverage versus time, sampled at `sample_times`.
    pub fn coverage_curve(&self, sample_times: &[f64]) -> Vec<(f64, f64)> {
        coverage_curve(&self.detections(), sample_times)
    }

    /// Final fault coverage in percent.
    pub fn final_coverage(&self) -> f64 {
        final_coverage(&self.detections())
    }

    /// Summed per-fault simulation seconds (the paper's protocol-file
    /// runtime comparison between fault models uses this).
    pub fn fault_sim_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.sim_seconds).sum()
    }

    /// Total kernel work across all fault simulations.
    pub fn total_newton_iterations(&self) -> u64 {
        self.records.iter().map(|r| r.newton_iterations).sum()
    }

    /// Records of faults that failed to simulate or inject.
    pub fn failures(&self) -> Vec<&FaultRecord> {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    FaultOutcome::InjectionFailed(_) | FaultOutcome::SimulationFailed(_)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEffect;
    use spice::parser::parse_netlist;

    /// A simple RC low-pass with a pulse input: faults change the
    /// output visibly.
    fn testbench() -> Circuit {
        parse_netlist(
            "rc lowpass\n\
             V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
             R1 in out 10k\n\
             C1 out 0 1n ic=0\n\
             R2 out 0 100k\n\
             .end\n",
        )
        .unwrap()
    }

    fn campaign() -> Campaign {
        Campaign {
            circuit: testbench(),
            tran: TranSpec::new(0.5e-6, 50e-6).with_uic(),
            observe: "out".into(),
            detection: DetectionSpec { v_tol: 1.0, t_tol: 1e-6 },
            model: HardFaultModel::paper_resistor(),
            threads: 2,
        }
    }

    fn fault_set() -> Vec<Fault> {
        vec![
            // Hard short in->out: output follows input instantly — detected.
            Fault::new(1, "BRI in->out", FaultEffect::Short { a: "in".into(), b: "out".into() }),
            // Output shorted to ground — detected.
            Fault::new(2, "BRI out->0", FaultEffect::Short { a: "out".into(), b: "0".into() }),
            // R2 drifts 5 %: invisible at 1 V tolerance — not detected.
            Fault::new(3, "SOFT R2 x1.05", FaultEffect::ParamDeviation { element: "R2".into(), factor: 1.05 }),
            // R1 open: output never charges — detected.
            Fault::new(4, "OPN R1.0", FaultEffect::OpenTerminal { element: "R1".into(), terminal: 0 }),
            // Bogus fault: injection failure recorded, campaign continues.
            Fault::new(5, "BAD", FaultEffect::Short { a: "nope".into(), b: "out".into() }),
        ]
    }

    #[test]
    fn campaign_detects_expected_subset() {
        let result = campaign().run(&fault_set()).unwrap();
        assert_eq!(result.records.len(), 5);
        assert!(matches!(result.records[0].outcome, FaultOutcome::Detected { .. }));
        assert!(matches!(result.records[1].outcome, FaultOutcome::Detected { .. }));
        assert_eq!(result.records[2].outcome, FaultOutcome::NotDetected);
        assert!(matches!(result.records[3].outcome, FaultOutcome::Detected { .. }));
        assert!(matches!(result.records[4].outcome, FaultOutcome::InjectionFailed(_)));
        // 3 of 5 detected.
        assert_eq!(result.final_coverage(), 60.0);
        assert_eq!(result.failures().len(), 1);
    }

    #[test]
    fn coverage_curve_reaches_final_value() {
        let result = campaign().run(&fault_set()).unwrap();
        let samples: Vec<f64> = (0..=50).map(|i| i as f64 * 1e-6).collect();
        let curve = result.coverage_curve(&samples);
        assert_eq!(curve.last().unwrap().1, result.final_coverage());
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut serial = campaign();
        serial.threads = 1;
        let mut parallel = campaign();
        parallel.threads = 4;
        let faults = fault_set();
        let a = serial.run(&faults).unwrap();
        let b = parallel.run(&faults).unwrap();
        let oa: Vec<_> = a.records.iter().map(|r| r.outcome.clone()).collect();
        let ob: Vec<_> = b.records.iter().map(|r| r.outcome.clone()).collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn missing_observe_node_is_fatal() {
        let mut c = campaign();
        c.observe = "ghost".into();
        assert!(c.run(&fault_set()).is_err());
    }

    #[test]
    fn source_model_campaign_runs() {
        let mut c = campaign();
        c.model = HardFaultModel::Source;
        let result = c.run(&fault_set()).unwrap();
        assert!(matches!(result.records[0].outcome, FaultOutcome::Detected { .. }));
        assert_eq!(result.records[2].outcome, FaultOutcome::NotDetected);
    }
}
