//! The automatic fault-simulation campaign.
//!
//! Mirrors AnaFAULT's "repetitive cycle of three main phases":
//! preprocessing (fault injection into the in-memory netlist), the call
//! of the kernel simulator, and post-processing (comparison against the
//! nominal response and statistics). Faults run concurrently on worker
//! threads — the reproduction of the paper's workstation-cluster
//! parallel execution [21].
//!
//! # Quickstart
//!
//! A campaign is configured through [`CampaignBuilder`] — the only way
//! to assemble one — and executed either blocking ([`Campaign::run`])
//! or streaming, with one [`CampaignProgress`] event per completed
//! fault ([`CampaignSession::run_with_progress`]):
//!
//! ```
//! use anafault::{Campaign, DetectionSpec, Fault, FaultEffect};
//! use spice::parser::parse_netlist;
//! use spice::tran::TranSpec;
//!
//! let testbench = parse_netlist(
//!     "rc\nV1 in 0 pulse(0 5 0 1u 1u 40u 100u)\nR1 in out 10k\nC1 out 0 1n ic=0\n.end\n",
//! )?;
//! let campaign = Campaign::builder()
//!     .testbench(testbench)
//!     .tran(TranSpec::new(0.5e-6, 50e-6).with_uic())
//!     .observe("out")
//!     .detection(DetectionSpec { v_tol: 1.0, t_tol: 1e-6 })
//!     .early_stop(true) // drop each fault as soon as it is detected
//!     .build()?;
//!
//! let faults = vec![Fault::new(
//!     1,
//!     "BRI in->out",
//!     FaultEffect::Short { a: "in".into(), b: "out".into() },
//! )];
//! let mut events = 0;
//! let result = campaign
//!     .session(&faults)
//!     .run_with_progress(|progress| {
//!         events += 1;
//!         assert_eq!(progress.total, 1);
//!     })?;
//! assert_eq!(events, result.records.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Several nodes may be observed at once (`.observe()` appends); a
//! fault counts as detected when **any** observed node leaves the
//! tolerance band — real test programs probe multiple pins, not just
//! the paper's V(11).

use crate::coverage::{coverage_curve, final_coverage, DetectionSpec};
use crate::fault::Fault;
use crate::inject::{inject, HardFaultModel};
use cat_telemetry::{HistogramSnapshot, StaticCounter};
use diagnose::{FaultSignature, SignatureSpec};
use spice::batch::{run_group, BatchGroup, LaneJob};
use spice::devices::UnknownMap;
use spice::tran::{tran_with_cached, TranSpec, TranStats};
use spice::{Circuit, PatternCache, SolverStats, SpiceError, Wave};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a session schedules faults onto the kernel simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// One scalar transient per fault (the default).
    #[default]
    Off,
    /// Lockstep batches at [`DEFAULT_BATCH_WIDTH`] lanes.
    Auto,
    /// Lockstep batches at an explicit lane width (clamped to ≥ 1).
    Width(usize),
}

/// Lane width chosen by [`BatchMode::Auto`]. Eight lanes keep the
/// lane-major value rows inside one or two cache lines per slot while
/// giving the compactor enough room to retire detected faults early.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Splits a batch's wall-clock time across its lanes proportionally to
/// the Newton iterations each lane consumed (equal split when no lane
/// did any work). The shares sum back to `total` up to float rounding,
/// so per-fault accounting stays comparable with scalar campaigns.
pub fn share_wall(total: Duration, iterations: &[u64]) -> Vec<Duration> {
    if iterations.is_empty() {
        return Vec::new();
    }
    let sum: u64 = iterations.iter().sum();
    if sum == 0 {
        return vec![total / iterations.len() as u32; iterations.len()];
    }
    iterations
        .iter()
        .map(|&it| total.mul_f64(it as f64 / sum as f64))
        .collect()
}

/// What happened to one fault during the campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// The faulty response left the tolerance band at time `at` on
    /// observed node `node`.
    Detected {
        /// Detection time (s).
        at: f64,
        /// The observed node that detected the fault first.
        node: String,
    },
    /// The faulty response stayed within tolerance on every observed
    /// node for the whole test.
    NotDetected,
    /// Fault injection failed (inconsistent fault list).
    InjectionFailed(String),
    /// The kernel simulator failed on the faulty circuit.
    SimulationFailed(String),
}

/// Per-fault kernel work counters, captured alongside the outcome.
///
/// Every field is taken from the single transient run of that fault
/// ([`spice::tran::TranStats`]), plus the wall-clock [`Duration`]
/// measured around injection + simulation + detection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultTelemetry {
    /// Wall-clock time spent on this fault (injection through verdict).
    pub wall: Duration,
    /// Accepted transient steps (halved sub-steps included).
    pub steps: u64,
    /// Timestep halvings forced by convergence rescues.
    pub halvings: u64,
    /// Accepted Newton solves across the whole transient.
    pub newton_iterations: u64,
    /// Sparse-solver work counters (refactorisations, re-pivots,
    /// dense fallbacks, demotions).
    pub solver: SolverStats,
    /// Whether fault dropping abandoned the remaining simulation time.
    pub early_stopped: bool,
    /// Lane width of the batched run that produced this record; 0 for
    /// scalar simulations (including batch-mode scalar fallbacks).
    pub batch_width: u32,
    /// The lockstep kernel ejected this fault's lane; the verdict comes
    /// from the scalar re-run and `wall` includes the wasted share of
    /// the batch.
    pub ejected: bool,
}

impl FaultTelemetry {
    /// Lifts a kernel [`TranStats`] into a fault-level record; `wall`
    /// and `early_stopped` are filled in by the campaign afterwards.
    fn from_tran(stats: &TranStats) -> Self {
        FaultTelemetry {
            wall: Duration::ZERO,
            steps: stats.steps,
            halvings: stats.halvings,
            newton_iterations: stats.newton_iterations,
            solver: stats.solver,
            early_stopped: false,
            batch_width: 0,
            ejected: false,
        }
    }
}

/// Per-fault protocol record.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// The fault simulated.
    pub fault: Fault,
    /// Its outcome.
    pub outcome: FaultOutcome,
    /// Wall-clock seconds spent simulating this fault.
    pub sim_seconds: f64,
    /// Kernel work measure (accepted Newton solves).
    pub newton_iterations: u64,
    /// Kernel work counters for this fault's simulation.
    pub telemetry: FaultTelemetry,
    /// Diagnosis signature of the faulty response, recorded when the
    /// campaign ran with [`CampaignBuilder::record_signatures`]; `None`
    /// otherwise (and for failed or signature-less legacy records).
    pub signature: Option<FaultSignature>,
}

/// A configuration error from [`CampaignBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No testbench circuit was provided.
    MissingTestbench,
    /// No transient specification was provided.
    MissingTran,
    /// No observed node was provided.
    NoObservedNodes,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::MissingTestbench => {
                f.write_str("campaign configuration lacks a testbench circuit")
            }
            ConfigError::MissingTran => {
                f.write_str("campaign configuration lacks a transient specification")
            }
            ConfigError::NoObservedNodes => f.write_str("campaign configuration observes no nodes"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Chainable configuration for a [`Campaign`] — the only way to build
/// one. Mandatory pieces: a testbench ([`CampaignBuilder::testbench`]),
/// a transient ([`CampaignBuilder::tran`]) and at least one observed
/// node ([`CampaignBuilder::observe`]). Everything else defaults to the
/// paper's settings.
#[derive(Debug, Clone, Default)]
pub struct CampaignBuilder {
    circuit: Option<Circuit>,
    tran: Option<TranSpec>,
    observe: Vec<String>,
    detection: DetectionSpec,
    model: HardFaultModel,
    threads: usize,
    max_faults: Option<usize>,
    early_stop: bool,
    batch: BatchMode,
    record_signatures: bool,
}

impl CampaignBuilder {
    /// An empty builder with the paper's default detection, the
    /// resistor fault model, one worker per core, no fault budget and
    /// full-length simulations.
    pub fn new() -> Self {
        CampaignBuilder::default()
    }

    /// The fault-free circuit including the stimulus/testbench.
    pub fn testbench(mut self, circuit: Circuit) -> Self {
        self.circuit = Some(circuit);
        self
    }

    /// Transient analysis to run for the nominal and every fault.
    pub fn tran(mut self, spec: TranSpec) -> Self {
        self.tran = Some(spec);
        self
    }

    /// Adds one observed output node. May be called repeatedly: a fault
    /// is detected when **any** observed node leaves the tolerance band
    /// (the paper observes V(11) only; real test programs probe several
    /// pins).
    pub fn observe(mut self, node: impl Into<String>) -> Self {
        self.observe.push(node.into());
        self
    }

    /// Adds several observed nodes at once (any-detect semantics).
    pub fn observe_nodes<I, S>(mut self, nodes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.observe.extend(nodes.into_iter().map(Into::into));
        self
    }

    /// Detection tolerances (default: the paper's Fig. 5 band).
    pub fn detection(mut self, spec: DetectionSpec) -> Self {
        self.detection = spec;
        self
    }

    /// Hard fault model (default: the paper's resistor model).
    pub fn model(mut self, model: HardFaultModel) -> Self {
        self.model = model;
        self
    }

    /// Worker threads; 0 = one per available core (the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Fault budget: at most this many faults from the head of the list
    /// are simulated (the list arrives ranked by probability, so this
    /// keeps the most likely defects).
    pub fn max_faults(mut self, max: usize) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Fault dropping: when `true`, each faulty simulation is abandoned
    /// the moment the fault is detected — the classic fault-simulation
    /// speedup. Whenever the full-length simulation converges, outcomes
    /// are identical; a fault that deviates and *then* fails to
    /// converge is reported `Detected` here but `SimulationFailed` by
    /// the full run (dropping never reaches the failing time step).
    /// Default `false`, so runtime comparisons between fault models
    /// stay meaningful.
    pub fn early_stop(mut self, on: bool) -> Self {
        self.early_stop = on;
        self
    }

    /// Batched scheduling: stamp-compatible faults are packed into
    /// lockstep lanes over one shared matrix structure
    /// ([`spice::batch`]). Batched sessions always simulate with fault
    /// dropping — compacting a detected lane is where the speedup comes
    /// from — so verdicts match a scalar `early_stop(true)` run; lanes
    /// the lockstep kernel cannot finish are re-run through the scalar
    /// path. Default: [`BatchMode::Off`].
    pub fn batch(mut self, mode: BatchMode) -> Self {
        self.batch = mode;
        self
    }

    /// Diagnosis signature recording: when `true`, every successfully
    /// simulated fault's record carries a [`FaultSignature`] — the
    /// resampled deviation trajectory per observed node — so the
    /// campaign result can seed a fault dictionary. Recording needs the
    /// complete faulty waveform, so it forces full-length scalar
    /// simulation: fault dropping and batched scheduling are bypassed
    /// for the session. Default `false`.
    pub fn record_signatures(mut self, on: bool) -> Self {
        self.record_signatures = on;
        self
    }

    /// Validates the configuration into a [`Campaign`].
    ///
    /// # Errors
    /// [`ConfigError`] when the testbench, transient or observed nodes
    /// are missing.
    pub fn build(self) -> Result<Campaign, ConfigError> {
        let circuit = self.circuit.ok_or(ConfigError::MissingTestbench)?;
        let tran = self.tran.ok_or(ConfigError::MissingTran)?;
        if self.observe.is_empty() {
            return Err(ConfigError::NoObservedNodes);
        }
        Ok(Campaign {
            circuit,
            tran,
            observe: self.observe,
            detection: self.detection,
            model: self.model,
            threads: self.threads,
            max_faults: self.max_faults,
            early_stop: self.early_stop,
            batch: self.batch,
            record_signatures: self.record_signatures,
        })
    }
}

/// A validated campaign configuration. Construct with
/// [`Campaign::builder`]; execute with [`Campaign::run`] or stream
/// per-fault events through [`Campaign::session`].
#[derive(Debug, Clone)]
pub struct Campaign {
    circuit: Circuit,
    tran: TranSpec,
    observe: Vec<String>,
    detection: DetectionSpec,
    model: HardFaultModel,
    threads: usize,
    max_faults: Option<usize>,
    early_stop: bool,
    batch: BatchMode,
    record_signatures: bool,
}

/// One progress event: a fault finished simulating. Emitted exactly
/// once per fault, in completion order (not input order — workers run
/// concurrently).
#[derive(Debug, Clone)]
pub struct CampaignProgress {
    /// Position of the fault in the campaign's input list.
    pub index: usize,
    /// Faults completed so far, including this one (1-based).
    pub completed: usize,
    /// Total faults this session will simulate.
    pub total: usize,
    /// The completed record.
    pub record: FaultRecord,
}

/// One executable run of a campaign over a fault list: the session owns
/// the fault-budget truncation and the streaming interface. The
/// blocking [`CampaignSession::run`] is built on top of the streaming
/// [`CampaignSession::run_with_progress`].
#[derive(Debug)]
pub struct CampaignSession<'c> {
    campaign: &'c Campaign,
    faults: &'c [Fault],
}

/// Campaign-level telemetry: pattern-cache behaviour across the whole
/// session (the per-fault counters live in [`FaultTelemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignTelemetry {
    /// Symbolic patterns reused from the session cache.
    pub pattern_cache_hits: u64,
    /// Lookups that forced a fresh symbolic analysis.
    pub pattern_cache_misses: u64,
    /// Distinct stamp topologies cached by the end of the session.
    pub pattern_cache_entries: usize,
    /// Faults whose remaining simulation time was dropped on detection.
    pub early_stops: u64,
    /// Lockstep group runs launched by the batched scheduler.
    pub batches: u64,
    /// Faults whose verdict came from the lockstep kernel (the rest of
    /// a batched session ran through the scalar fallback).
    pub batched_faults: u64,
    /// Lanes retired before the end of the shared time grid.
    pub lane_compactions: u64,
    /// Lanes started from the pending queue after a slot freed up.
    pub lane_refills: u64,
    /// Lanes ejected from the lockstep kernel to the scalar path.
    pub ejections: u64,
    /// Faults whose record was replayed from a checkpoint instead of
    /// being re-simulated ([`CampaignSession::run_resumed`]).
    pub replayed_faults: u64,
    /// Identical fault entries trimmed from the submitted list before
    /// sharding (`CampaignSpec::dedup_faults`); 0 for direct sessions.
    pub deduped_faults: u64,
}

/// The campaign result: nominal response plus per-fault records.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The observed node names, in configuration order.
    pub observed: Vec<String>,
    /// Nominal waveform per observed node (parallel to `observed`).
    pub nominals: Vec<Wave>,
    /// One record per fault, in input order.
    pub records: Vec<FaultRecord>,
    /// Seconds for the nominal simulation.
    pub nominal_seconds: f64,
    /// Wall-clock seconds for the whole campaign.
    pub total_seconds: f64,
    /// Session-wide telemetry (pattern cache, early stops).
    pub telemetry: CampaignTelemetry,
}

impl Campaign {
    /// Starts configuring a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::new()
    }

    /// The observed node names.
    pub fn observed(&self) -> &[String] {
        &self.observe
    }

    /// The transient specification.
    pub fn tran_spec(&self) -> &TranSpec {
        &self.tran
    }

    /// The detection tolerances.
    pub fn detection(&self) -> DetectionSpec {
        self.detection
    }

    /// The hard fault model.
    pub fn model(&self) -> HardFaultModel {
        self.model
    }

    /// The fault budget, when set.
    pub fn max_faults(&self) -> Option<usize> {
        self.max_faults
    }

    /// Whether fault dropping (early stop on detection) is enabled.
    pub fn early_stop_enabled(&self) -> bool {
        self.early_stop
    }

    /// The configured batch scheduling mode.
    pub fn batch_mode(&self) -> BatchMode {
        self.batch
    }

    /// The lane width batched sessions will run at, or `None` when
    /// batching is off. Signature recording needs complete per-fault
    /// waveforms, which the lockstep kernel does not keep, so it
    /// forces the scalar path regardless of the configured mode.
    pub fn batch_width(&self) -> Option<usize> {
        if self.record_signatures {
            return None;
        }
        match self.batch {
            BatchMode::Off => None,
            BatchMode::Auto => Some(DEFAULT_BATCH_WIDTH),
            BatchMode::Width(k) => Some(k.max(1)),
        }
    }

    /// Whether diagnosis signature recording is enabled.
    pub fn record_signatures_enabled(&self) -> bool {
        self.record_signatures
    }

    /// How this campaign extracts signatures: the default trajectory
    /// length, with the detection band's voltage tolerance as the
    /// divergence-onset threshold.
    pub fn signature_spec(&self) -> SignatureSpec {
        SignatureSpec {
            points: diagnose::DEFAULT_POINTS,
            onset_eps: self.detection.v_tol,
        }
    }

    /// Opens a session over `faults`, applying the fault budget.
    pub fn session<'c>(&'c self, faults: &'c [Fault]) -> CampaignSession<'c> {
        let n = self.max_faults.unwrap_or(faults.len()).min(faults.len());
        CampaignSession {
            campaign: self,
            faults: &faults[..n],
        }
    }

    /// Runs the campaign on `faults`, blocking until every fault is
    /// simulated.
    ///
    /// # Errors
    /// Fails only when the *nominal* simulation fails or an observed
    /// node does not exist; per-fault problems are recorded in the
    /// result instead.
    pub fn run(&self, faults: &[Fault]) -> Result<CampaignResult, SpiceError> {
        self.session(faults).run()
    }

    /// Runs the nominal simulation and resolves every observed node's
    /// waveform — the shared front half of every session entry point.
    fn nominal_pass(&self, cache: &PatternCache) -> Result<(Vec<Wave>, f64), SpiceError> {
        let t0 = Instant::now();
        let nominal_res = tran_with_cached(&self.circuit, &self.tran, Some(cache), |_, _| true)?;
        let nominal_seconds = t0.elapsed().as_secs_f64();
        let mut nominals = Vec::with_capacity(self.observe.len());
        for name in &self.observe {
            let wave = nominal_res.wave(name).ok_or_else(|| {
                SpiceError::Elaboration(format!("observed node `{name}` not found"))
            })?;
            nominals.push(wave);
        }
        Ok((nominals, nominal_seconds))
    }

    /// Runs the nominal simulation once and freezes the campaign into a
    /// [`PreparedCampaign`]: a `Send + Sync` handle that can simulate
    /// individual faults on any thread and assemble a
    /// [`CampaignResult`] at the end. This is the building block for
    /// external schedulers (the `anafault-serve` daemon shards a
    /// prepared campaign's fault list across its own worker pool).
    ///
    /// # Errors
    /// Fails when the nominal simulation fails or an observed node does
    /// not exist — the same contract as [`Campaign::run`].
    pub fn prepare(self) -> Result<PreparedCampaign, SpiceError> {
        let cache = PatternCache::new();
        let (nominals, nominal_seconds) = self.nominal_pass(&cache)?;
        Ok(PreparedCampaign {
            campaign: self,
            cache,
            nominals,
            nominal_seconds,
        })
    }

    fn simulate_one(&self, fault: &Fault, nominals: &[Wave], cache: &PatternCache) -> FaultRecord {
        let _span = cat_telemetry::span!("anafault.fault");
        let t0 = Instant::now();
        let faulty = match inject(&self.circuit, fault, self.model) {
            Ok(c) => c,
            Err(e) => {
                let wall = t0.elapsed();
                return FaultRecord {
                    fault: fault.clone(),
                    outcome: FaultOutcome::InjectionFailed(e.to_string()),
                    sim_seconds: wall.as_secs_f64(),
                    newton_iterations: 0,
                    telemetry: FaultTelemetry {
                        wall,
                        ..FaultTelemetry::default()
                    },
                    signature: None,
                };
            }
        };
        // Signature recording needs the complete faulty waveform, so it
        // overrides fault dropping for the session.
        let (outcome, mut telemetry, signature) = if self.record_signatures {
            self.simulate_full(&faulty, nominals, cache, true)
        } else if self.early_stop {
            let (outcome, telemetry) = self.simulate_dropping(&faulty, nominals, cache);
            (outcome, telemetry, None)
        } else {
            self.simulate_full(&faulty, nominals, cache, false)
        };
        telemetry.wall = t0.elapsed();
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(e) => FaultOutcome::SimulationFailed(e.to_string()),
        };
        FaultRecord {
            fault: fault.clone(),
            outcome,
            sim_seconds: telemetry.wall.as_secs_f64(),
            newton_iterations: telemetry.newton_iterations,
            telemetry,
            signature,
        }
    }

    /// Full-length simulation, then per-node detection; any-detect =
    /// earliest detection across observed nodes (ties keep
    /// configuration order).
    fn simulate_full(
        &self,
        faulty: &Circuit,
        nominals: &[Wave],
        cache: &PatternCache,
        want_signature: bool,
    ) -> (
        Result<FaultOutcome, SpiceError>,
        FaultTelemetry,
        Option<FaultSignature>,
    ) {
        let res = match tran_with_cached(faulty, &self.tran, Some(cache), |_, _| true) {
            Ok(res) => res,
            Err(e) => return (Err(e), FaultTelemetry::default(), None),
        };
        let telemetry = FaultTelemetry::from_tran(&res.stats);
        let mut waves = Vec::with_capacity(self.observe.len());
        for name in &self.observe {
            let Some(wave) = res.wave(name) else {
                return (Ok(missing_observed(name)), telemetry, None);
            };
            waves.push(wave);
        }
        let mut first: Option<(f64, usize)> = None;
        for (k, (wave, nominal)) in waves.iter().zip(nominals).enumerate() {
            if let Some(at) = self.detection.first_detection(wave, nominal) {
                if first.is_none_or(|(best, _)| at < best) {
                    first = Some((at, k));
                }
            }
        }
        let outcome = match first {
            Some((at, k)) => FaultOutcome::Detected {
                at,
                node: self.observe[k].clone(),
            },
            None => FaultOutcome::NotDetected,
        };
        let signature = want_signature.then(|| self.extract_signature(nominals, &waves));
        (Ok(outcome), telemetry, signature)
    }

    /// Extracts one node signature per observed node from the faulty
    /// waveforms, on the grid spanned by the primary nominal transient.
    fn extract_signature(&self, nominals: &[Wave], waves: &[Wave]) -> FaultSignature {
        let spec = self.signature_spec();
        let t0 = nominals[0].times()[0];
        let t1 = *nominals[0].times().last().expect("nominal is non-empty");
        let grid = diagnose::grid(t0, t1, spec.points);
        FaultSignature {
            nodes: nominals
                .iter()
                .zip(waves)
                .map(|(nominal, faulty)| {
                    diagnose::extract_signature(nominal, faulty, &grid, spec.onset_eps)
                })
                .collect(),
        }
    }

    /// Streaming simulation with fault dropping: evaluates the same
    /// per-sample predicate as [`Wave::first_detection`] while the
    /// kernel integrates, and abandons the remaining simulation time at
    /// the first deviating sample. Outcomes are bit-identical to
    /// [`Campaign::simulate_full`] whenever the full run converges; a
    /// deviation followed by a convergence failure is `Detected` here
    /// (the failing step is never reached) but `SimulationFailed`
    /// there.
    fn simulate_dropping(
        &self,
        faulty: &Circuit,
        nominals: &[Wave],
        cache: &PatternCache,
    ) -> (Result<FaultOutcome, SpiceError>, FaultTelemetry) {
        // Resolve each observed node to its sample column up front; a
        // fault cannot remove a node, but guard anyway.
        let mut columns = Vec::with_capacity(self.observe.len());
        for name in &self.observe {
            match faulty.find_node(name) {
                Some(id) if id != Circuit::GROUND => columns.push(id - 1),
                _ => return (Ok(missing_observed(name)), FaultTelemetry::default()),
            }
        }
        let mut detected: Option<(f64, usize)> = None;
        let res = tran_with_cached(faulty, &self.tran, Some(cache), |t, x| {
            for (k, (&col, nominal)) in columns.iter().zip(nominals).enumerate() {
                if !nominal.tracks(t, x[col], self.detection.v_tol, self.detection.t_tol) {
                    detected = Some((t, k));
                    return false;
                }
            }
            true
        });
        match res {
            Ok(res) => {
                let mut telemetry = FaultTelemetry::from_tran(&res.stats);
                telemetry.early_stopped = detected.is_some();
                let outcome = match detected {
                    Some((at, k)) => FaultOutcome::Detected {
                        at,
                        node: self.observe[k].clone(),
                    },
                    None => FaultOutcome::NotDetected,
                };
                (Ok(outcome), telemetry)
            }
            Err(e) => (Err(e), FaultTelemetry::default()),
        }
    }

    /// Scalar simulation used by the batched scheduler — for groups
    /// whose shared pattern cannot be built and for ejected lanes.
    /// Always simulates with fault dropping (batch-mode semantics),
    /// independent of the campaign's `early_stop` flag.
    fn simulate_scalar(
        &self,
        fault: &Fault,
        faulty: &Circuit,
        nominals: &[Wave],
        cache: &PatternCache,
    ) -> FaultRecord {
        let _span = cat_telemetry::span!("anafault.fault");
        let t0 = Instant::now();
        let (outcome, mut telemetry) = self.simulate_dropping(faulty, nominals, cache);
        telemetry.wall = t0.elapsed();
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(e) => FaultOutcome::SimulationFailed(e.to_string()),
        };
        FaultRecord {
            fault: fault.clone(),
            outcome,
            sim_seconds: telemetry.wall.as_secs_f64(),
            newton_iterations: telemetry.newton_iterations,
            telemetry,
            signature: None,
        }
    }
}

/// The shared guard outcome for an observed node that vanished from
/// the faulty circuit (kept in one place so the full-length and
/// dropping paths cannot drift apart).
fn missing_observed(name: &str) -> FaultOutcome {
    FaultOutcome::SimulationFailed(format!("observed node `{name}` missing in faulty circuit"))
}

/// A campaign frozen after its nominal pass: the configuration, the
/// session-wide [`PatternCache`] and the resolved nominal waveforms.
/// `Send + Sync`, so an external scheduler may call
/// [`PreparedCampaign::simulate_fault`] from many threads at once and
/// assemble the final document with [`PreparedCampaign::finish`] —
/// exactly what [`CampaignSession::run_with_progress`] does internally,
/// but with the scheduling loop inverted out of this crate.
///
/// Faults always run through the scalar path here (honouring the
/// campaign's `early_stop` flag); the lockstep batched scheduler needs
/// the whole fault list up front and stays behind
/// [`CampaignSession::run`].
#[derive(Debug)]
pub struct PreparedCampaign {
    campaign: Campaign,
    cache: PatternCache,
    nominals: Vec<Wave>,
    nominal_seconds: f64,
}

impl PreparedCampaign {
    /// The underlying campaign configuration.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Nominal waveform per observed node (parallel to
    /// [`Campaign::observed`]).
    pub fn nominals(&self) -> &[Wave] {
        &self.nominals
    }

    /// Seconds the nominal simulation took.
    pub fn nominal_seconds(&self) -> f64 {
        self.nominal_seconds
    }

    /// Applies the campaign's fault budget to a fault list, returning
    /// the slice a session over the same list would simulate.
    pub fn budgeted<'f>(&self, faults: &'f [Fault]) -> &'f [Fault] {
        let n = self
            .campaign
            .max_faults
            .unwrap_or(faults.len())
            .min(faults.len());
        &faults[..n]
    }

    /// Simulates one fault against the prepared nominal response.
    /// Injection and simulation failures are folded into the record's
    /// outcome, never returned — the same contract as a session worker.
    pub fn simulate_fault(&self, fault: &Fault) -> FaultRecord {
        self.campaign
            .simulate_one(fault, &self.nominals, &self.cache)
    }

    /// Assembles the final [`CampaignResult`] from the completed
    /// records (in input order). `replayed_faults` is the number of
    /// records that came from a checkpoint rather than
    /// [`PreparedCampaign::simulate_fault`]; `total_seconds` is the
    /// caller's wall-clock measure for the whole campaign (an external
    /// scheduler may span process restarts, so the clock cannot live
    /// here). Flushes the `anafault.campaign.*` counters.
    pub fn finish(
        &self,
        records: Vec<FaultRecord>,
        replayed_faults: u64,
        total_seconds: f64,
    ) -> CampaignResult {
        let telemetry = CampaignTelemetry {
            pattern_cache_hits: self.cache.hits(),
            pattern_cache_misses: self.cache.misses(),
            pattern_cache_entries: self.cache.len(),
            early_stops: records.iter().filter(|r| r.telemetry.early_stopped).count() as u64,
            replayed_faults,
            ..CampaignTelemetry::default()
        };
        let result = CampaignResult {
            observed: self.campaign.observe.clone(),
            nominals: self.nominals.clone(),
            records,
            nominal_seconds: self.nominal_seconds,
            total_seconds,
            telemetry,
        };
        flush_campaign_counters(&result);
        result
    }
}

impl CampaignSession<'_> {
    /// The faults this session will simulate (after the budget cut).
    pub fn faults(&self) -> &[Fault] {
        self.faults
    }

    /// Runs the session, blocking until done. Equivalent to
    /// [`CampaignSession::run_with_progress`] with an ignoring callback.
    ///
    /// # Errors
    /// See [`Campaign::run`].
    pub fn run(self) -> Result<CampaignResult, SpiceError> {
        self.run_with_progress(|_| {})
    }

    /// Runs the session, invoking `on_event` once per completed fault
    /// (in completion order). Worker threads hand records over an event
    /// channel — result collection is lock-free, and the callback runs
    /// on the calling thread, so it may freely update progress bars or
    /// stream to a service front-end.
    ///
    /// # Errors
    /// See [`Campaign::run`].
    pub fn run_with_progress(
        self,
        mut on_event: impl FnMut(&CampaignProgress),
    ) -> Result<CampaignResult, SpiceError> {
        let campaign = self.campaign;
        let t_start = Instant::now();
        // One pattern cache per session: the symbolic factorisation of
        // the nominal topology is shared by every structure-preserving
        // fault, and each hard-fault stamp shape is analysed exactly
        // once no matter how many workers touch it.
        let cache = PatternCache::new();
        let (nominals, nominal_seconds) = campaign.nominal_pass(&cache)?;

        if let Some(width) = campaign.batch_width() {
            return self.run_batched(width, &cache, nominals, nominal_seconds, t_start, on_event);
        }

        let n_threads = if campaign.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            campaign.threads
        };

        let faults = self.faults;
        let total = faults.len();
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<FaultRecord>> = vec![None; total];
        let (tx, rx) = mpsc::channel::<(usize, FaultRecord)>();
        std::thread::scope(|scope| {
            for _ in 0..n_threads.min(total.max(1)) {
                let tx = tx.clone();
                let next = &next;
                let nominals = &nominals;
                let cache = &cache;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let record = campaign.simulate_one(&faults[i], nominals, cache);
                    if tx.send((i, record)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut completed = 0usize;
            while let Ok((index, record)) = rx.recv() {
                completed += 1;
                let event = CampaignProgress {
                    index,
                    completed,
                    total,
                    record,
                };
                on_event(&event);
                slots[index] = Some(event.record);
            }
        });
        let records: Vec<FaultRecord> = slots
            .into_iter()
            .map(|r| r.expect("every fault reports exactly once"))
            .collect();

        let telemetry = CampaignTelemetry {
            pattern_cache_hits: cache.hits(),
            pattern_cache_misses: cache.misses(),
            pattern_cache_entries: cache.len(),
            early_stops: records.iter().filter(|r| r.telemetry.early_stopped).count() as u64,
            ..CampaignTelemetry::default()
        };
        let result = CampaignResult {
            observed: campaign.observe.clone(),
            nominals,
            records,
            nominal_seconds,
            total_seconds: t_start.elapsed().as_secs_f64(),
            telemetry,
        };
        flush_campaign_counters(&result);
        Ok(result)
    }

    /// Resumes a session from checkpointed records: every fault whose
    /// id appears in `completed` is replayed verbatim — its record is
    /// cloned, never re-simulated — and only the remaining faults run
    /// through the scalar worker pool. Replay events stream first, in
    /// input order, then live completions in completion order, so a
    /// consumer sees every fault exactly once and
    /// `telemetry.replayed_faults` counts the replays.
    ///
    /// Matching is by [`Fault::id`](crate::Fault); checkpoint records
    /// whose id is not in this session's (budgeted) fault list are
    /// ignored, and only the first record per id counts — a checkpoint
    /// with a torn duplicate tail replays cleanly. The batched
    /// scheduler is never used on resume: the tail of an interrupted
    /// campaign runs scalar (honouring `early_stop`), so resumed
    /// verdicts match an uninterrupted scalar run bit for bit.
    ///
    /// # Errors
    /// See [`Campaign::run`].
    pub fn run_resumed(
        self,
        completed: &[FaultRecord],
        mut on_event: impl FnMut(&CampaignProgress),
    ) -> Result<CampaignResult, SpiceError> {
        let campaign = self.campaign;
        let t_start = Instant::now();
        let cache = PatternCache::new();
        let (nominals, nominal_seconds) = campaign.nominal_pass(&cache)?;
        let faults = self.faults;
        let total = faults.len();

        let mut done: BTreeMap<usize, &FaultRecord> = BTreeMap::new();
        for record in completed {
            done.entry(record.fault.id).or_insert(record);
        }

        let mut slots: Vec<Option<FaultRecord>> = vec![None; total];
        let mut completed_count = 0usize;
        let mut replayed = 0u64;
        for (i, fault) in faults.iter().enumerate() {
            if let Some(&record) = done.get(&fault.id) {
                replayed += 1;
                emit_record(
                    &mut slots,
                    &mut completed_count,
                    total,
                    &mut on_event,
                    i,
                    record.clone(),
                );
            }
        }

        let remaining: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
        let n_threads = if campaign.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            campaign.threads
        };
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, FaultRecord)>();
        std::thread::scope(|scope| {
            for _ in 0..n_threads.min(remaining.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                let nominals = &nominals;
                let cache = &cache;
                let remaining = &remaining;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= remaining.len() {
                        break;
                    }
                    let i = remaining[k];
                    let record = campaign.simulate_one(&faults[i], nominals, cache);
                    if tx.send((i, record)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            while let Ok((index, record)) = rx.recv() {
                emit_record(
                    &mut slots,
                    &mut completed_count,
                    total,
                    &mut on_event,
                    index,
                    record,
                );
            }
        });
        let records: Vec<FaultRecord> = slots
            .into_iter()
            .map(|r| r.expect("every fault reports exactly once"))
            .collect();

        let telemetry = CampaignTelemetry {
            pattern_cache_hits: cache.hits(),
            pattern_cache_misses: cache.misses(),
            pattern_cache_entries: cache.len(),
            early_stops: records.iter().filter(|r| r.telemetry.early_stopped).count() as u64,
            replayed_faults: replayed,
            ..CampaignTelemetry::default()
        };
        let result = CampaignResult {
            observed: campaign.observe.clone(),
            nominals,
            records,
            nominal_seconds,
            total_seconds: t_start.elapsed().as_secs_f64(),
            telemetry,
        };
        flush_campaign_counters(&result);
        Ok(result)
    }

    /// Batched execution: every fault is injected up front, variants
    /// are grouped by stamp-compatible topology (node count, unknown
    /// dimension, border classification), and each group runs through
    /// the lockstep kernel `width` lanes at a time over one shared
    /// matrix structure. A lane is dropped (compacted, and its slot
    /// refilled from the pending queue) at the first deviating sample;
    /// lanes the kernel cannot finish are re-run scalar, and groups
    /// whose shared restricted pattern refuses to build fall back to
    /// scalar wholesale — so verdicts always match a scalar
    /// `early_stop(true)` session.
    fn run_batched(
        self,
        width: usize,
        cache: &PatternCache,
        nominals: Vec<Wave>,
        nominal_seconds: f64,
        t_start: Instant,
        mut on_event: impl FnMut(&CampaignProgress),
    ) -> Result<CampaignResult, SpiceError> {
        let campaign = self.campaign;
        let faults = self.faults;
        let total = faults.len();
        let mut slots: Vec<Option<FaultRecord>> = vec![None; total];
        let mut completed = 0usize;
        let mut batch_telemetry = CampaignTelemetry::default();

        // Injection failures report (and stream) immediately.
        let mut injected: Vec<Option<Circuit>> = Vec::with_capacity(total);
        for (i, fault) in faults.iter().enumerate() {
            let t0 = Instant::now();
            match inject(&campaign.circuit, fault, campaign.model) {
                Ok(c) => injected.push(Some(c)),
                Err(e) => {
                    injected.push(None);
                    let wall = t0.elapsed();
                    emit_record(
                        &mut slots,
                        &mut completed,
                        total,
                        &mut on_event,
                        i,
                        FaultRecord {
                            fault: fault.clone(),
                            outcome: FaultOutcome::InjectionFailed(e.to_string()),
                            sim_seconds: wall.as_secs_f64(),
                            newton_iterations: 0,
                            telemetry: FaultTelemetry {
                                wall,
                                ..FaultTelemetry::default()
                            },
                            signature: None,
                        },
                    );
                }
            }
        }

        let mut groups: BTreeMap<(usize, usize, bool), Vec<usize>> = BTreeMap::new();
        for (i, faulty) in injected.iter().enumerate() {
            let Some(faulty) = faulty else { continue };
            let dim = UnknownMap::new(faulty).dim();
            let border = BatchGroup::is_border(&campaign.circuit, faulty);
            groups
                .entry((faulty.node_count(), dim, border))
                .or_default()
                .push(i);
        }

        for (&(_, _, border), members) in &groups {
            let refs: Vec<(usize, &Circuit)> = members
                .iter()
                .map(|&i| (i, injected[i].as_ref().expect("grouped faults injected")))
                .collect();
            let circuits: Vec<&Circuit> = refs.iter().map(|&(_, c)| c).collect();
            let Some(group) = BatchGroup::build(&circuits, border) else {
                for &(i, faulty) in &refs {
                    let record = campaign.simulate_scalar(&faults[i], faulty, &nominals, cache);
                    emit_record(&mut slots, &mut completed, total, &mut on_event, i, record);
                }
                continue;
            };

            // Resolve observed sample columns per member up front (the
            // same guard as the scalar dropping path).
            let mut jobs: Vec<LaneJob<'_>> = Vec::with_capacity(refs.len());
            let mut cols: Vec<Vec<usize>> = vec![Vec::new(); total];
            'member: for &(i, faulty) in &refs {
                let mut columns = Vec::with_capacity(campaign.observe.len());
                for name in &campaign.observe {
                    match faulty.find_node(name) {
                        Some(id) if id != Circuit::GROUND => columns.push(id - 1),
                        _ => {
                            emit_record(
                                &mut slots,
                                &mut completed,
                                total,
                                &mut on_event,
                                i,
                                FaultRecord {
                                    fault: faults[i].clone(),
                                    outcome: missing_observed(name),
                                    sim_seconds: 0.0,
                                    newton_iterations: 0,
                                    telemetry: FaultTelemetry::default(),
                                    signature: None,
                                },
                            );
                            continue 'member;
                        }
                    }
                }
                cols[i] = columns;
                jobs.push(LaneJob {
                    id: i,
                    circuit: faulty,
                });
            }
            if jobs.is_empty() {
                continue;
            }

            let mut detected: Vec<Option<(f64, usize)>> = vec![None; total];
            let g0 = Instant::now();
            let (reports, stats) = run_group(
                &group,
                width,
                &campaign.tran,
                &jobs,
                Some(cache),
                |id, t, x| {
                    for (k, (&col, nominal)) in cols[id].iter().zip(&nominals).enumerate() {
                        if !nominal.tracks(
                            t,
                            x[col],
                            campaign.detection.v_tol,
                            campaign.detection.t_tol,
                        ) {
                            detected[id] = Some((t, k));
                            return false;
                        }
                    }
                    true
                },
            );
            let group_wall = g0.elapsed();

            batch_telemetry.batches += 1;
            batch_telemetry.lane_compactions += stats.compactions;
            batch_telemetry.lane_refills += stats.refills;
            batch_telemetry.ejections += stats.ejections;

            // Wall-clock attribution: every lane — ejected ones too,
            // their partial work was real — gets a share of the group's
            // wall time proportional to its Newton iterations.
            let iters: Vec<u64> = reports.iter().map(|r| r.newton_iterations).collect();
            let shares = share_wall(group_wall, &iters);
            for (report, share) in reports.iter().zip(shares) {
                let i = report.id;
                if report.completed {
                    batch_telemetry.batched_faults += 1;
                    let outcome = match detected[i] {
                        Some((at, k)) => FaultOutcome::Detected {
                            at,
                            node: campaign.observe[k].clone(),
                        },
                        None => FaultOutcome::NotDetected,
                    };
                    let telemetry = FaultTelemetry {
                        wall: share,
                        steps: report.steps,
                        halvings: 0,
                        newton_iterations: report.newton_iterations,
                        solver: SolverStats::default(),
                        early_stopped: detected[i].is_some(),
                        batch_width: stats.width as u32,
                        ejected: false,
                    };
                    emit_record(
                        &mut slots,
                        &mut completed,
                        total,
                        &mut on_event,
                        i,
                        FaultRecord {
                            fault: faults[i].clone(),
                            outcome,
                            sim_seconds: share.as_secs_f64(),
                            newton_iterations: report.newton_iterations,
                            telemetry,
                            signature: None,
                        },
                    );
                } else {
                    // Ejected: re-run scalar from t = 0; the wasted
                    // batch share stays on this fault's bill.
                    let faulty = injected[i].as_ref().expect("ejected lanes were injected");
                    let mut record = campaign.simulate_scalar(&faults[i], faulty, &nominals, cache);
                    record.telemetry.wall += share;
                    record.telemetry.ejected = true;
                    record.sim_seconds = record.telemetry.wall.as_secs_f64();
                    emit_record(&mut slots, &mut completed, total, &mut on_event, i, record);
                }
            }
        }

        let records: Vec<FaultRecord> = slots
            .into_iter()
            .map(|r| r.expect("every fault reports exactly once"))
            .collect();
        let telemetry = CampaignTelemetry {
            pattern_cache_hits: cache.hits(),
            pattern_cache_misses: cache.misses(),
            pattern_cache_entries: cache.len(),
            early_stops: records.iter().filter(|r| r.telemetry.early_stopped).count() as u64,
            ..batch_telemetry
        };
        let result = CampaignResult {
            observed: campaign.observe.clone(),
            nominals,
            records,
            nominal_seconds,
            total_seconds: t_start.elapsed().as_secs_f64(),
            telemetry,
        };
        flush_campaign_counters(&result);
        Ok(result)
    }
}

/// Records one finished fault and streams its progress event (shared
/// by the batched path's several completion sites).
fn emit_record(
    slots: &mut [Option<FaultRecord>],
    completed: &mut usize,
    total: usize,
    on_event: &mut impl FnMut(&CampaignProgress),
    index: usize,
    record: FaultRecord,
) {
    *completed += 1;
    let event = CampaignProgress {
        index,
        completed: *completed,
        total,
        record,
    };
    on_event(&event);
    slots[index] = Some(event.record);
}

/// Campaign runs completed (successful `run_with_progress` returns).
static CAMPAIGN_RUNS: StaticCounter = StaticCounter::new("anafault.campaign.runs");
/// Faults simulated across all campaigns.
static CAMPAIGN_FAULTS: StaticCounter = StaticCounter::new("anafault.campaign.faults");
/// Faults whose outcome was `Detected`.
static CAMPAIGN_DETECTED: StaticCounter = StaticCounter::new("anafault.campaign.detected");
/// Faults abandoned early by fault dropping.
static CAMPAIGN_EARLY_STOPS: StaticCounter = StaticCounter::new("anafault.campaign.early_stops");

/// One flush at campaign end — the per-fault hot path stays free of
/// atomic traffic on the global registry.
fn flush_campaign_counters(result: &CampaignResult) {
    if !cat_telemetry::enabled() {
        return;
    }
    CAMPAIGN_RUNS.inc();
    CAMPAIGN_FAULTS.add(result.records.len() as u64);
    let detected = result
        .records
        .iter()
        .filter(|r| matches!(r.outcome, FaultOutcome::Detected { .. }))
        .count() as u64;
    CAMPAIGN_DETECTED.add(detected);
    CAMPAIGN_EARLY_STOPS.add(result.telemetry.early_stops);
}

impl CampaignResult {
    /// The nominal waveform of the primary (first) observed node.
    pub fn nominal(&self) -> &Wave {
        &self.nominals[0]
    }

    /// Detection times per fault (`None` for undetected or failed).
    pub fn detections(&self) -> Vec<Option<f64>> {
        self.records
            .iter()
            .map(|r| match r.outcome {
                FaultOutcome::Detected { at, .. } => Some(at),
                _ => None,
            })
            .collect()
    }

    /// Fault coverage versus time, sampled at `sample_times`.
    pub fn coverage_curve(&self, sample_times: &[f64]) -> Vec<(f64, f64)> {
        coverage_curve(&self.detections(), sample_times)
    }

    /// Final fault coverage in percent.
    pub fn final_coverage(&self) -> f64 {
        final_coverage(&self.detections())
    }

    /// Summed per-fault simulation seconds (the paper's protocol-file
    /// runtime comparison between fault models uses this).
    pub fn fault_sim_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.sim_seconds).sum()
    }

    /// Total kernel work across all fault simulations.
    pub fn total_newton_iterations(&self) -> u64 {
        self.records.iter().map(|r| r.newton_iterations).sum()
    }

    /// Records of faults that failed to simulate or inject.
    pub fn failures(&self) -> Vec<&FaultRecord> {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    FaultOutcome::InjectionFailed(_) | FaultOutcome::SimulationFailed(_)
                )
            })
            .collect()
    }

    /// Aggregates the per-fault records into a [`CampaignReport`]:
    /// verdict counts, summed kernel work, solver counters and the
    /// per-fault time/iteration distributions.
    pub fn report(&self) -> CampaignReport {
        let mut report = CampaignReport {
            faults: self.records.len() as u64,
            coverage_percent: self.final_coverage(),
            wall_seconds: self.total_seconds,
            nominal_seconds: self.nominal_seconds,
            fault_sim_seconds: self.fault_sim_seconds(),
            telemetry: self.telemetry,
            sim_seconds: HistogramSnapshot::empty(SIM_SECONDS_EDGES),
            iterations: HistogramSnapshot::empty(ITERATIONS_EDGES),
            ..CampaignReport::default()
        };
        let sim_hist = cat_telemetry::Histogram::new(SIM_SECONDS_EDGES);
        let iter_hist = cat_telemetry::Histogram::new(ITERATIONS_EDGES);
        for r in &self.records {
            match r.outcome {
                FaultOutcome::Detected { .. } => report.detected += 1,
                FaultOutcome::NotDetected => report.not_detected += 1,
                FaultOutcome::InjectionFailed(_) => report.injection_failed += 1,
                FaultOutcome::SimulationFailed(_) => report.simulation_failed += 1,
            }
            report.newton_iterations += r.telemetry.newton_iterations;
            report.steps += r.telemetry.steps;
            report.halvings += r.telemetry.halvings;
            report.solver.merge(&r.telemetry.solver);
            sim_hist.record(r.sim_seconds);
            iter_hist.record(r.telemetry.newton_iterations as f64);
        }
        report.sim_seconds = sim_hist.snapshot();
        report.iterations = iter_hist.snapshot();
        report
    }
}

/// Bucket upper bounds for the per-fault wall-clock distribution (s).
const SIM_SECONDS_EDGES: &[f64] = &[1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0];
/// Bucket upper bounds for the per-fault Newton-iteration distribution.
const ITERATIONS_EDGES: &[f64] = &[1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6];

/// Aggregated campaign run report, built by [`CampaignResult::report`]
/// and persisted by bench binaries under `--metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Faults simulated.
    pub faults: u64,
    /// Faults whose response left the tolerance band.
    pub detected: u64,
    /// Faults that stayed within tolerance for the whole test.
    pub not_detected: u64,
    /// Faults whose injection failed.
    pub injection_failed: u64,
    /// Faults whose kernel simulation failed.
    pub simulation_failed: u64,
    /// Final fault coverage in percent.
    pub coverage_percent: f64,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Seconds spent on the nominal simulation.
    pub nominal_seconds: f64,
    /// Summed per-fault simulation seconds (across workers, so this
    /// exceeds `wall_seconds` on multi-threaded runs).
    pub fault_sim_seconds: f64,
    /// Accepted Newton solves across all fault simulations.
    pub newton_iterations: u64,
    /// Accepted transient steps across all fault simulations.
    pub steps: u64,
    /// Timestep halvings across all fault simulations.
    pub halvings: u64,
    /// Sparse-solver work counters summed over all fault simulations.
    pub solver: SolverStats,
    /// Session-wide pattern-cache and early-stop telemetry.
    pub telemetry: CampaignTelemetry,
    /// Distribution of per-fault wall-clock seconds.
    pub sim_seconds: HistogramSnapshot,
    /// Distribution of per-fault Newton iterations.
    pub iterations: HistogramSnapshot,
}

impl Default for CampaignReport {
    fn default() -> Self {
        CampaignReport {
            faults: 0,
            detected: 0,
            not_detected: 0,
            injection_failed: 0,
            simulation_failed: 0,
            coverage_percent: 0.0,
            wall_seconds: 0.0,
            nominal_seconds: 0.0,
            fault_sim_seconds: 0.0,
            newton_iterations: 0,
            steps: 0,
            halvings: 0,
            solver: SolverStats::default(),
            telemetry: CampaignTelemetry::default(),
            sim_seconds: HistogramSnapshot::empty(SIM_SECONDS_EDGES),
            iterations: HistogramSnapshot::empty(ITERATIONS_EDGES),
        }
    }
}

impl CampaignReport {
    /// Serialises the report as a single JSON object, following the
    /// same hand-rolled conventions as [`crate::protocol`].
    pub fn to_json(&self) -> String {
        use cat_telemetry::json::num;
        let t = &self.telemetry;
        format!(
            concat!(
                "{{\"faults\": {}, \"detected\": {}, \"not_detected\": {}, ",
                "\"injection_failed\": {}, \"simulation_failed\": {}, ",
                "\"coverage_percent\": {}, \"wall_seconds\": {}, ",
                "\"nominal_seconds\": {}, \"fault_sim_seconds\": {}, ",
                "\"newton_iterations\": {}, \"steps\": {}, \"halvings\": {}, ",
                "\"early_stops\": {}, \"batches\": {}, \"batched_faults\": {}, ",
                "\"lane_compactions\": {}, \"lane_refills\": {}, ",
                "\"ejections\": {}, \"pattern_builds\": {}, ",
                "\"pattern_cache_hits\": {}, \"pattern_cache_misses\": {}, ",
                "\"pattern_cache_entries\": {}, \"refactorisations\": {}, ",
                "\"repivots\": {}, \"dense_fallbacks\": {}, \"demotions\": {}, ",
                "\"sim_seconds_distribution\": {}, ",
                "\"newton_iterations_distribution\": {}}}"
            ),
            self.faults,
            self.detected,
            self.not_detected,
            self.injection_failed,
            self.simulation_failed,
            num(self.coverage_percent),
            num(self.wall_seconds),
            num(self.nominal_seconds),
            num(self.fault_sim_seconds),
            self.newton_iterations,
            self.steps,
            self.halvings,
            t.early_stops,
            t.batches,
            t.batched_faults,
            t.lane_compactions,
            t.lane_refills,
            t.ejections,
            t.pattern_cache_misses,
            t.pattern_cache_hits,
            t.pattern_cache_misses,
            t.pattern_cache_entries,
            self.solver.refactorisations,
            self.solver.repivots,
            self.solver.dense_fallbacks,
            self.solver.demotions,
            self.sim_seconds.to_json(),
            self.iterations.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEffect;
    use spice::parser::parse_netlist;

    /// A simple RC low-pass with a pulse input: faults change the
    /// output visibly.
    fn testbench() -> Circuit {
        parse_netlist(
            "rc lowpass\n\
             V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
             R1 in out 10k\n\
             C1 out 0 1n ic=0\n\
             R2 out 0 100k\n\
             .end\n",
        )
        .unwrap()
    }

    fn campaign_builder() -> CampaignBuilder {
        Campaign::builder()
            .testbench(testbench())
            .tran(TranSpec::new(0.5e-6, 50e-6).with_uic())
            .observe("out")
            .detection(DetectionSpec {
                v_tol: 1.0,
                t_tol: 1e-6,
            })
            .model(HardFaultModel::paper_resistor())
            .threads(2)
    }

    fn campaign() -> Campaign {
        campaign_builder().build().unwrap()
    }

    fn fault_set() -> Vec<Fault> {
        vec![
            // Hard short in->out: output follows input instantly — detected.
            Fault::new(
                1,
                "BRI in->out",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "out".into(),
                },
            ),
            // Output shorted to ground — detected.
            Fault::new(
                2,
                "BRI out->0",
                FaultEffect::Short {
                    a: "out".into(),
                    b: "0".into(),
                },
            ),
            // R2 drifts 5 %: invisible at 1 V tolerance — not detected.
            Fault::new(
                3,
                "SOFT R2 x1.05",
                FaultEffect::ParamDeviation {
                    element: "R2".into(),
                    factor: 1.05,
                },
            ),
            // R1 open: output never charges — detected.
            Fault::new(
                4,
                "OPN R1.0",
                FaultEffect::OpenTerminal {
                    element: "R1".into(),
                    terminal: 0,
                },
            ),
            // Bogus fault: injection failure recorded, campaign continues.
            Fault::new(
                5,
                "BAD",
                FaultEffect::Short {
                    a: "nope".into(),
                    b: "out".into(),
                },
            ),
        ]
    }

    #[test]
    fn builder_rejects_incomplete_configuration() {
        assert_eq!(
            Campaign::builder().build().unwrap_err(),
            ConfigError::MissingTestbench
        );
        assert_eq!(
            Campaign::builder()
                .testbench(testbench())
                .build()
                .unwrap_err(),
            ConfigError::MissingTran
        );
        assert_eq!(
            Campaign::builder()
                .testbench(testbench())
                .tran(TranSpec::new(1e-6, 1e-5))
                .build()
                .unwrap_err(),
            ConfigError::NoObservedNodes
        );
    }

    #[test]
    fn builder_defaults_match_the_paper() {
        let c = Campaign::builder()
            .testbench(testbench())
            .tran(TranSpec::new(1e-6, 1e-5))
            .observe("out")
            .build()
            .unwrap();
        assert_eq!(c.detection(), DetectionSpec::paper_fig5());
        assert_eq!(c.model(), HardFaultModel::paper_resistor());
        assert_eq!(c.observed(), ["out".to_string()]);
        assert_eq!(c.max_faults(), None);
        assert!(!c.early_stop_enabled());
    }

    #[test]
    fn campaign_detects_expected_subset() {
        let result = campaign().run(&fault_set()).unwrap();
        assert_eq!(result.records.len(), 5);
        assert!(matches!(
            result.records[0].outcome,
            FaultOutcome::Detected { .. }
        ));
        assert!(matches!(
            result.records[1].outcome,
            FaultOutcome::Detected { .. }
        ));
        assert_eq!(result.records[2].outcome, FaultOutcome::NotDetected);
        assert!(matches!(
            result.records[3].outcome,
            FaultOutcome::Detected { .. }
        ));
        assert!(matches!(
            result.records[4].outcome,
            FaultOutcome::InjectionFailed(_)
        ));
        // 3 of 5 detected.
        assert_eq!(result.final_coverage(), 60.0);
        assert_eq!(result.failures().len(), 1);
        // Every detection names the observed node.
        for r in &result.records {
            if let FaultOutcome::Detected { node, .. } = &r.outcome {
                assert_eq!(node, "out");
            }
        }
    }

    #[test]
    fn coverage_curve_reaches_final_value() {
        let result = campaign().run(&fault_set()).unwrap();
        let samples: Vec<f64> = (0..=50).map(|i| i as f64 * 1e-6).collect();
        let curve = result.coverage_curve(&samples);
        assert_eq!(curve.last().unwrap().1, result.final_coverage());
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = campaign_builder().threads(1).build().unwrap();
        let parallel = campaign_builder().threads(4).build().unwrap();
        let faults = fault_set();
        let a = serial.run(&faults).unwrap();
        let b = parallel.run(&faults).unwrap();
        let oa: Vec<_> = a.records.iter().map(|r| r.outcome.clone()).collect();
        let ob: Vec<_> = b.records.iter().map(|r| r.outcome.clone()).collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn missing_observe_node_is_fatal() {
        let c = campaign_builder().observe("ghost").build().unwrap();
        assert!(c.run(&fault_set()).is_err());
    }

    #[test]
    fn source_model_campaign_runs() {
        let c = campaign_builder()
            .model(HardFaultModel::Source)
            .build()
            .unwrap();
        let result = c.run(&fault_set()).unwrap();
        assert!(matches!(
            result.records[0].outcome,
            FaultOutcome::Detected { .. }
        ));
        assert_eq!(result.records[2].outcome, FaultOutcome::NotDetected);
    }

    /// Two independent RC branches: a fault on the second branch is
    /// invisible at the first output.
    fn two_branch_testbench() -> Circuit {
        parse_netlist(
            "two branches\n\
             V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
             R1 in out1 10k\n\
             C1 out1 0 1n ic=0\n\
             R2 in out2 10k\n\
             C2 out2 0 1n ic=0\n\
             .end\n",
        )
        .unwrap()
    }

    #[test]
    fn any_detect_across_multiple_observed_nodes() {
        let fault = vec![Fault::new(
            1,
            "BRI out2->0",
            FaultEffect::Short {
                a: "out2".into(),
                b: "0".into(),
            },
        )];
        let base = || {
            Campaign::builder()
                .testbench(two_branch_testbench())
                .tran(TranSpec::new(0.5e-6, 50e-6).with_uic())
                .detection(DetectionSpec {
                    v_tol: 1.0,
                    t_tol: 1e-6,
                })
                .threads(1)
        };
        // Observing only the healthy branch misses the fault …
        let miss = base().observe("out1").build().unwrap();
        let r = miss.run(&fault).unwrap();
        assert_eq!(r.records[0].outcome, FaultOutcome::NotDetected);
        // … observing both catches it, and names the detecting node.
        let hit = base().observe("out1").observe("out2").build().unwrap();
        let r = hit.run(&fault).unwrap();
        match &r.records[0].outcome {
            FaultOutcome::Detected { node, .. } => assert_eq!(node, "out2"),
            other => panic!("expected detection, got {other:?}"),
        }
        assert_eq!(r.observed, ["out1".to_string(), "out2".to_string()]);
        assert_eq!(r.nominals.len(), 2);
    }

    #[test]
    fn early_stop_outcomes_match_full_length() {
        let faults = fault_set();
        let full = campaign_builder().build().unwrap().run(&faults).unwrap();
        let dropped = campaign_builder()
            .early_stop(true)
            .build()
            .unwrap()
            .run(&faults)
            .unwrap();
        let oa: Vec<_> = full.records.iter().map(|r| r.outcome.clone()).collect();
        let ob: Vec<_> = dropped.records.iter().map(|r| r.outcome.clone()).collect();
        assert_eq!(oa, ob, "fault dropping must not change outcomes");
        // Detected faults abandon the rest of the transient, so the
        // kernel does strictly less work.
        assert!(
            dropped.total_newton_iterations() < full.total_newton_iterations(),
            "dropped {} vs full {}",
            dropped.total_newton_iterations(),
            full.total_newton_iterations()
        );
    }

    #[test]
    fn progress_stream_emits_one_event_per_fault() {
        let faults = fault_set();
        let c = campaign_builder().threads(4).build().unwrap();
        let mut events: Vec<(usize, usize, usize)> = Vec::new();
        let result = c
            .session(&faults)
            .run_with_progress(|p| events.push((p.index, p.completed, p.total)))
            .unwrap();
        assert_eq!(events.len(), faults.len());
        // `completed` counts arrivals 1..=n; `total` is constant.
        for (n, &(_, completed, total)) in events.iter().enumerate() {
            assert_eq!(completed, n + 1);
            assert_eq!(total, faults.len());
        }
        // Every input index reports exactly once.
        let mut indices: Vec<usize> = events.iter().map(|e| e.0).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..faults.len()).collect::<Vec<_>>());
        assert_eq!(result.records.len(), faults.len());
    }

    #[test]
    fn fault_budget_truncates_the_list() {
        let faults = fault_set();
        let c = campaign_builder().max_faults(2).build().unwrap();
        assert_eq!(c.session(&faults).faults().len(), 2);
        let result = c.run(&faults).unwrap();
        assert_eq!(result.records.len(), 2);
        assert_eq!(result.records[0].fault.id, 1);
        assert_eq!(result.records[1].fault.id, 2);
    }

    #[test]
    fn per_fault_telemetry_is_populated() {
        let result = campaign().run(&fault_set()).unwrap();
        for r in &result.records {
            assert_eq!(r.telemetry.wall.as_secs_f64(), r.sim_seconds);
            assert_eq!(r.telemetry.newton_iterations, r.newton_iterations);
            match &r.outcome {
                FaultOutcome::InjectionFailed(_) => {
                    assert_eq!(r.telemetry.steps, 0);
                    assert_eq!(r.telemetry.newton_iterations, 0);
                }
                _ => {
                    // Simulated faults took real transient steps and
                    // at least one Newton solve per step.
                    assert!(r.telemetry.steps > 0);
                    assert!(r.telemetry.newton_iterations >= r.telemetry.steps);
                    assert!(r.telemetry.wall > Duration::ZERO);
                }
            }
            // This RC testbench is below the sparse cutoff, so the
            // sparse counters stay untouched.
            assert_eq!(r.telemetry.solver, spice::SolverStats::default());
            assert!(!r.telemetry.early_stopped, "full runs never early-stop");
        }
    }

    #[test]
    fn session_telemetry_counts_cache_and_early_stops() {
        let faults = fault_set();
        let result = campaign_builder()
            .early_stop(true)
            .build()
            .unwrap()
            .run(&faults)
            .unwrap();
        let t = result.telemetry;
        // Dense-only campaign: nothing ever reaches the sparse cache.
        assert_eq!(t.pattern_cache_hits + t.pattern_cache_misses, 0);
        assert_eq!(t.pattern_cache_entries, 0);
        // The three detected faults dropped their remaining transient.
        assert_eq!(t.early_stops, 3);
        let flagged = result
            .records
            .iter()
            .filter(|r| r.telemetry.early_stopped)
            .count() as u64;
        assert_eq!(flagged, t.early_stops);
    }

    #[test]
    fn share_wall_conserves_total() {
        let total = Duration::from_micros(12_345);
        let shares = share_wall(total, &[3, 1, 0, 4]);
        assert_eq!(shares.len(), 4);
        let sum: Duration = shares.iter().sum();
        let diff = sum.abs_diff(total);
        assert!(diff < Duration::from_nanos(1_000), "off by {diff:?}");
        assert_eq!(shares[2], Duration::ZERO);
        // More iterations ⇒ a larger share.
        assert!(shares[3] > shares[0] && shares[0] > shares[1]);
        // No recorded work: the time still has to go somewhere — split
        // it equally so totals stay conserved.
        let eq = share_wall(total, &[0, 0]);
        assert_eq!(eq[0], eq[1]);
        assert!(share_wall(total, &[]).is_empty());
    }

    #[test]
    fn batch_mode_selects_lane_width() {
        assert_eq!(campaign().batch_width(), None);
        let auto = campaign_builder().batch(BatchMode::Auto).build().unwrap();
        assert_eq!(auto.batch_mode(), BatchMode::Auto);
        assert_eq!(auto.batch_width(), Some(DEFAULT_BATCH_WIDTH));
        let fixed = campaign_builder()
            .batch(BatchMode::Width(3))
            .build()
            .unwrap();
        assert_eq!(fixed.batch_width(), Some(3));
        // Width 0 is nonsense; clamp instead of dividing by zero later.
        let clamped = campaign_builder()
            .batch(BatchMode::Width(0))
            .build()
            .unwrap();
        assert_eq!(clamped.batch_width(), Some(1));
    }

    #[test]
    fn signature_recording_populates_records_and_forces_scalar() {
        let c = campaign_builder()
            .record_signatures(true)
            .batch(BatchMode::Auto)
            .early_stop(true)
            .build()
            .unwrap();
        assert!(c.record_signatures_enabled());
        assert_eq!(c.batch_width(), None, "recording forces the scalar path");
        let points = c.signature_spec().points;
        let result = c.run(&fault_set()).unwrap();
        for r in &result.records {
            match &r.outcome {
                FaultOutcome::InjectionFailed(_) | FaultOutcome::SimulationFailed(_) => {
                    assert!(r.signature.is_none(), "failures carry no signature");
                }
                _ => {
                    let sig = r.signature.as_ref().expect("simulated faults record one");
                    assert_eq!(sig.nodes.len(), 1);
                    assert_eq!(sig.nodes[0].trajectory.len(), points);
                }
            }
            assert!(!r.telemetry.early_stopped, "recording runs full-length");
        }
        // Detected faults deviate visibly; their onset is where the
        // resampled deviation first crosses the detection tolerance.
        for r in &result.records {
            if let (FaultOutcome::Detected { .. }, Some(sig)) = (&r.outcome, &r.signature) {
                assert!(sig.nodes[0].peak_deviation > 0.0);
                assert!(sig.nodes[0].onset.is_some());
            }
        }
        // Default sessions never record.
        let plain = campaign().run(&fault_set()).unwrap();
        assert!(plain.records.iter().all(|r| r.signature.is_none()));
    }

    /// A 12-section RC ladder driven by a pulse: 14 unknowns, enough to
    /// clear the sparse cutoff so batched groups actually build.
    fn ladder_testbench() -> Circuit {
        let mut s = String::from("ladder\nV1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n");
        let mut prev = "in".to_string();
        for i in 1..=12 {
            s.push_str(&format!("R{i} {prev} n{i} 1k\nC{i} n{i} 0 1n ic=0\n"));
            prev = format!("n{i}");
        }
        s.push_str(".end\n");
        parse_netlist(&s).unwrap()
    }

    /// Shorts near and far from the observed node, an open, a soft
    /// deviation and a broken fault — a mix of detected, undetected,
    /// structural and failing injections.
    fn ladder_faults() -> Vec<Fault> {
        let mut faults = vec![Fault::new(
            1,
            "BRI in->n1",
            FaultEffect::Short {
                a: "in".into(),
                b: "n1".into(),
            },
        )];
        for i in 2..=6 {
            faults.push(Fault::new(
                i,
                format!("BRI n{}->n{}", i - 1, i),
                FaultEffect::Short {
                    a: format!("n{}", i - 1),
                    b: format!("n{i}"),
                },
            ));
        }
        faults.push(Fault::new(
            7,
            "BRI n12->0",
            FaultEffect::Short {
                a: "n12".into(),
                b: "0".into(),
            },
        ));
        faults.push(Fault::new(
            8,
            "SOFT R6 x1.02",
            FaultEffect::ParamDeviation {
                element: "R6".into(),
                factor: 1.02,
            },
        ));
        faults.push(Fault::new(
            9,
            "OPN R3.0",
            FaultEffect::OpenTerminal {
                element: "R3".into(),
                terminal: 0,
            },
        ));
        faults.push(Fault::new(
            10,
            "BAD",
            FaultEffect::Short {
                a: "nope".into(),
                b: "n1".into(),
            },
        ));
        faults
    }

    fn ladder_campaign(model: HardFaultModel) -> CampaignBuilder {
        Campaign::builder()
            .testbench(ladder_testbench())
            .tran(TranSpec::new(0.5e-6, 50e-6).with_uic())
            .observe("n12")
            .detection(DetectionSpec {
                v_tol: 1.0,
                t_tol: 1e-6,
            })
            .model(model)
            .threads(1)
    }

    /// The tentpole invariant: batched scheduling must reproduce the
    /// scalar fault-dropping verdicts exactly — outcome variant,
    /// detection time and detecting node — for both the resistor model
    /// (plain union groups) and the source model (bordered groups), at
    /// several lane widths.
    #[test]
    fn batched_campaign_matches_scalar_verdicts() {
        let faults = ladder_faults();
        for model in [HardFaultModel::paper_resistor(), HardFaultModel::Source] {
            let scalar = ladder_campaign(model)
                .early_stop(true)
                .build()
                .unwrap()
                .run(&faults)
                .unwrap();
            let expected: Vec<_> = scalar.records.iter().map(|r| r.outcome.clone()).collect();
            for width in [1, 3, 8] {
                let batched = ladder_campaign(model)
                    .batch(BatchMode::Width(width))
                    .build()
                    .unwrap()
                    .run(&faults)
                    .unwrap();
                let got: Vec<_> = batched.records.iter().map(|r| r.outcome.clone()).collect();
                assert_eq!(got, expected, "model {model:?} width {width}");
                assert!(batched.telemetry.batches >= 1);
                assert!(batched.telemetry.batched_faults >= 1);
            }
        }
    }

    #[test]
    fn batched_records_attribute_shared_wall_clock() {
        let faults = ladder_faults();
        let result = ladder_campaign(HardFaultModel::paper_resistor())
            .batch(BatchMode::Width(4))
            .build()
            .unwrap()
            .run(&faults)
            .unwrap();
        let mut batched = 0;
        for r in &result.records {
            if matches!(r.outcome, FaultOutcome::InjectionFailed(_)) {
                continue;
            }
            if r.telemetry.batch_width > 0 {
                batched += 1;
                // Width is clamped to the group size, so singleton
                // groups (e.g. the open, which adds a node) run at 1.
                assert!(r.telemetry.batch_width <= 4);
                assert!(!r.telemetry.ejected);
                assert!(r.telemetry.wall > Duration::ZERO);
                assert_eq!(r.sim_seconds, r.telemetry.wall.as_secs_f64());
                assert!(r.telemetry.steps > 0);
                assert!(r.telemetry.newton_iterations >= r.telemetry.steps);
            }
        }
        assert_eq!(batched as u64, result.telemetry.batched_faults);
        assert!(batched > 0, "ladder faults must actually batch");
        // The short/soft group has 8 members, so it runs at full width.
        assert!(result.records.iter().any(|r| r.telemetry.batch_width == 4));
        // Detected faults dropped their lanes early, so the compactor
        // must have retired lanes and refilled from the queue.
        assert!(result.telemetry.lane_compactions > 0);
        assert!(result.telemetry.lane_refills > 0);
        assert!(result.telemetry.early_stops > 0);
    }

    /// Circuits below the sparse cutoff cannot build a batch group; the
    /// session must fall back to scalar dropping and still agree.
    #[test]
    fn batched_small_circuit_falls_back_to_scalar() {
        let faults = fault_set();
        let scalar = campaign_builder()
            .early_stop(true)
            .build()
            .unwrap()
            .run(&faults)
            .unwrap();
        let batched = campaign_builder()
            .batch(BatchMode::Auto)
            .build()
            .unwrap()
            .run(&faults)
            .unwrap();
        let oa: Vec<_> = scalar.records.iter().map(|r| r.outcome.clone()).collect();
        let ob: Vec<_> = batched.records.iter().map(|r| r.outcome.clone()).collect();
        assert_eq!(oa, ob);
        assert_eq!(batched.telemetry.batched_faults, 0);
        assert_eq!(batched.telemetry.batches, 0);
        for r in &batched.records {
            assert_eq!(r.telemetry.batch_width, 0);
            assert!(!r.telemetry.ejected);
        }
    }

    /// The streaming interface fires once per fault in batch mode too.
    #[test]
    fn batched_progress_stream_emits_one_event_per_fault() {
        let faults = ladder_faults();
        let c = ladder_campaign(HardFaultModel::paper_resistor())
            .batch(BatchMode::Width(4))
            .build()
            .unwrap();
        let mut events: Vec<(usize, usize, usize)> = Vec::new();
        let result = c
            .session(&faults)
            .run_with_progress(|p| events.push((p.index, p.completed, p.total)))
            .unwrap();
        assert_eq!(events.len(), faults.len());
        for (n, &(_, completed, total)) in events.iter().enumerate() {
            assert_eq!(completed, n + 1);
            assert_eq!(total, faults.len());
        }
        let mut indices: Vec<usize> = events.iter().map(|e| e.0).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..faults.len()).collect::<Vec<_>>());
        assert_eq!(result.records.len(), faults.len());
    }

    #[test]
    fn report_aggregates_records() {
        let result = campaign().run(&fault_set()).unwrap();
        let report = result.report();
        assert_eq!(report.faults, 5);
        assert_eq!(report.detected, 3);
        assert_eq!(report.not_detected, 1);
        assert_eq!(report.injection_failed, 1);
        assert_eq!(report.simulation_failed, 0);
        assert_eq!(report.coverage_percent, 60.0);
        assert_eq!(
            report.newton_iterations,
            result.total_newton_iterations(),
            "report sums the same counters as the result accessors"
        );
        assert_eq!(report.fault_sim_seconds, result.fault_sim_seconds());
        assert_eq!(report.sim_seconds.count, 5);
        assert_eq!(report.iterations.count, 5);
        assert!(report.sim_seconds.sum > 0.0);

        // The JSON rendering exposes every counter and both
        // distributions, and parses back through the protocol parser.
        let json = report.to_json();
        let doc = crate::protocol::parse_json(&json).expect("report JSON parses");
        assert_eq!(doc.field("faults").unwrap().as_u64().unwrap(), 5);
        assert_eq!(doc.field("detected").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            doc.field("coverage_percent").unwrap().as_f64().unwrap(),
            60.0
        );
        for key in [
            "pattern_builds",
            "pattern_cache_hits",
            "refactorisations",
            "repivots",
            "dense_fallbacks",
            "demotions",
            "early_stops",
            "steps",
            "halvings",
        ] {
            assert!(doc.field(key).is_ok(), "missing report key `{key}`");
        }
        let dist = doc.field("sim_seconds_distribution").unwrap();
        let edges = dist.field("edges").unwrap().as_f64_array().unwrap();
        let counts = dist.field("counts").unwrap().as_array().unwrap();
        assert_eq!(counts.len(), edges.len() + 1);
        assert_eq!(dist.field("count").unwrap().as_u64().unwrap(), 5);
    }

    #[test]
    fn resume_replays_checkpoint_and_matches_uninterrupted_run() {
        let faults = fault_set();
        let reference = campaign().run(&faults).unwrap();
        for k in [0, 1, 3, faults.len()] {
            let checkpoint: Vec<FaultRecord> = reference.records[..k].to_vec();
            let mut events = 0usize;
            let resumed = campaign()
                .session(&faults)
                .run_resumed(&checkpoint, |p| {
                    // Replays stream first, in input order, verbatim.
                    if p.completed <= k {
                        assert_eq!(p.index, p.completed - 1);
                    }
                    events += 1;
                })
                .unwrap();
            assert_eq!(events, faults.len(), "one event per fault at k={k}");
            assert_eq!(resumed.telemetry.replayed_faults, k as u64);
            assert_eq!(resumed.records.len(), reference.records.len());
            for (i, (res, refr)) in resumed.records.iter().zip(&reference.records).enumerate() {
                assert_eq!(res.fault.id, refr.fault.id);
                assert_eq!(res.outcome, refr.outcome, "verdict differs at {i}, k={k}");
                if i < k {
                    // Replayed records are clones of the checkpoint —
                    // bitwise-equal timings prove nothing re-simulated.
                    assert_eq!(res.sim_seconds, refr.sim_seconds);
                    assert_eq!(res.telemetry, refr.telemetry);
                }
            }
        }
    }

    #[test]
    fn resume_ignores_unknown_and_duplicate_checkpoint_records() {
        let faults = fault_set();
        let reference = campaign().run(&faults).unwrap();
        let mut checkpoint = vec![reference.records[0].clone()];
        // A torn rewrite can duplicate a record; only the first counts.
        let mut dup = reference.records[0].clone();
        dup.sim_seconds = -1.0;
        checkpoint.push(dup);
        // A record from some other campaign's fault list is ignored.
        let mut alien = reference.records[1].clone();
        alien.fault.id = 9999;
        checkpoint.push(alien);
        let resumed = campaign()
            .session(&faults)
            .run_resumed(&checkpoint, |_| {})
            .unwrap();
        assert_eq!(resumed.telemetry.replayed_faults, 1);
        assert_eq!(
            resumed.records[0].sim_seconds,
            reference.records[0].sim_seconds
        );
        for (res, refr) in resumed.records.iter().zip(&reference.records) {
            assert_eq!(res.outcome, refr.outcome);
        }
    }

    #[test]
    fn prepared_campaign_matches_session_run() {
        let faults = fault_set();
        let reference = campaign().run(&faults).unwrap();
        let prepared = campaign().prepare().unwrap();
        let budgeted = prepared.budgeted(&faults);
        assert_eq!(budgeted.len(), faults.len());
        let records: Vec<FaultRecord> = budgeted
            .iter()
            .map(|f| prepared.simulate_fault(f))
            .collect();
        let result = prepared.finish(records, 2, 1.5);
        assert_eq!(result.observed, reference.observed);
        assert_eq!(result.nominals, reference.nominals);
        assert_eq!(result.records.len(), reference.records.len());
        for (res, refr) in result.records.iter().zip(&reference.records) {
            assert_eq!(res.outcome, refr.outcome);
        }
        assert_eq!(result.telemetry.replayed_faults, 2);
        assert_eq!(result.total_seconds, 1.5);
    }

    #[test]
    fn prepared_campaign_budget_applies() {
        let prepared = campaign_builder()
            .max_faults(2)
            .build()
            .unwrap()
            .prepare()
            .unwrap();
        let faults = fault_set();
        assert_eq!(prepared.budgeted(&faults).len(), 2);
    }
}
