//! # anafault — the automatic analogue fault simulator
//!
//! The Rust reproduction of AnaFAULT (paper §V): a complete tool that
//! takes a circuit, a fault list and a stimulus, and produces fault
//! coverage statistics. Its defining capability — the one the paper
//! notes stock circuit simulators lack — is **altering the topology** of
//! the circuit for every fault:
//!
//! * [`fault`] — the fault model vocabulary of Fig. 2: local shorts,
//!   global shorts, local opens, **split nodes** (a node of order *n*
//!   becomes two nodes of order *k* and *n−k*) and transistor
//!   stuck-opens, plus parametric (soft) deviations;
//! * [`inject`] — rewrites a deep copy of the in-memory netlist per
//!   fault, under either the **resistor model** (short = 0.01 Ω,
//!   open = 100 MΩ) or the **source model** (ideal 0 V / 0 A sources);
//! * [`campaign`] — the repetitive simulate–compare–log cycle as a
//!   builder-configured session: [`CampaignBuilder`] is the only way to
//!   assemble a [`Campaign`], and [`Campaign::session`] streams one
//!   [`CampaignProgress`] event per completed fault from a pool of
//!   worker threads (the paper's cluster-parallel execution, reproduced
//!   with threads). Several nodes can be observed at once (any-detect),
//!   a fault budget caps the list, and fault dropping abandons each
//!   faulty transient at the moment of detection;
//! * [`coverage`] — tolerance-band detection (2 V amplitude / 0.2 µs
//!   time in the paper's Fig. 5) and fault-coverage-versus-time curves;
//! * [`faultlist`] — the textual fault-list interface through which LIFT
//!   hands over extracted faults;
//! * [`soft`] — parametric (soft) fault generation, deterministic sweeps
//!   and Monte Carlo deviations (the paper's §II soft-fault model), with
//!   id offsets so mixed hard/soft campaigns keep unique fault ids;
//! * [`report`] — tabular reports, protocol rows and ASCII coverage
//!   plots;
//! * [`protocol`] — the machine-readable JSON protocol file
//!   ([`CampaignResult`] round-trips losslessly);
//! * [`diagnosis`] — bridges a finished campaign (run with
//!   `record_signatures(true)`) to the `diagnose` crate's fault
//!   dictionaries and ambiguity classes.
//!
//! See the [`campaign`] module for a runnable quickstart.

pub mod campaign;
pub mod coverage;
pub mod diagnosis;
pub mod fault;
pub mod faultlist;
pub mod inject;
pub mod protocol;
pub mod report;
pub mod soft;

pub use campaign::{
    share_wall, BatchMode, Campaign, CampaignBuilder, CampaignProgress, CampaignReport,
    CampaignResult, CampaignSession, CampaignTelemetry, ConfigError, FaultOutcome, FaultRecord,
    FaultTelemetry, PreparedCampaign, DEFAULT_BATCH_WIDTH,
};
pub use coverage::{coverage_curve, DetectionSpec};
pub use diagnosis::{build_dictionary, DictionaryError};
pub use fault::{Fault, FaultEffect, MosTerminal};
pub use inject::{inject, HardFaultModel, InjectError};
pub use protocol::{CampaignSpec, ProtocolError, StreamEvent};
pub use soft::{MonteCarloSpec, SweepSpec};
