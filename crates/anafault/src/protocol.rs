//! Machine-readable protocol files.
//!
//! The paper's AnaFAULT writes a per-fault protocol file; this module
//! is its machine-readable counterpart: [`CampaignResult`] (and every
//! [`FaultRecord`] inside it) serializes to a self-contained JSON
//! document and parses back without loss. Service front-ends and the
//! bench binaries consume this instead of re-formatting records by
//! hand. The writer/parser are hand-rolled (the build is offline — see
//! `vendor/README.md`), covering exactly the subset of JSON the schema
//! needs.

use crate::campaign::{
    Campaign, CampaignProgress, CampaignResult, CampaignTelemetry, FaultOutcome, FaultRecord,
    FaultTelemetry,
};
use crate::coverage::DetectionSpec;
use crate::fault::{Fault, FaultEffect};
use crate::inject::HardFaultModel;
use diagnose::{Candidate, DictionaryEntry, FaultDictionary, FaultSignature, NodeSignature};
use spice::{SolverStats, Wave};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Duration;

/// Schema version stamped into every protocol file.
pub const PROTOCOL_VERSION: u64 = 1;

/// An error from [`from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The text is not valid JSON.
    Parse(String),
    /// The JSON does not match the protocol schema.
    Schema(String),
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Parse(m) => write!(f, "protocol JSON parse error: {m}"),
            ProtocolError::Schema(m) => write!(f, "protocol JSON schema error: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes a campaign result to the JSON protocol document.
pub fn to_json(result: &CampaignResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": {PROTOCOL_VERSION},");
    let _ = writeln!(
        s,
        "  \"observed\": [{}],",
        result
            .observed
            .iter()
            .map(|n| quote(n))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"nominal_seconds\": {},", num(result.nominal_seconds));
    let _ = writeln!(s, "  \"total_seconds\": {},", num(result.total_seconds));
    let t = &result.telemetry;
    let _ = writeln!(
        s,
        "  \"telemetry\": {{\"pattern_cache_hits\": {}, \"pattern_cache_misses\": {}, \
         \"pattern_cache_entries\": {}, \"early_stops\": {}, \"batches\": {}, \
         \"batched_faults\": {}, \"lane_compactions\": {}, \"lane_refills\": {}, \
         \"ejections\": {}, \"replayed_faults\": {}, \"deduped_faults\": {}}},",
        t.pattern_cache_hits,
        t.pattern_cache_misses,
        t.pattern_cache_entries,
        t.early_stops,
        t.batches,
        t.batched_faults,
        t.lane_compactions,
        t.lane_refills,
        t.ejections,
        t.replayed_faults,
        t.deduped_faults
    );
    s.push_str("  \"nominals\": [\n");
    for (i, wave) in result.nominals.iter().enumerate() {
        let comma = if i + 1 < result.nominals.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "    {{\"times\": {}, \"values\": {}}}{comma}",
            num_array(wave.times()),
            num_array(wave.values())
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"records\": [\n");
    for (i, record) in result.records.iter().enumerate() {
        let comma = if i + 1 < result.records.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "    {}{comma}", record_json(record));
    }
    s.push_str("  ]\n}\n");
    s
}

fn record_json(record: &FaultRecord) -> String {
    let signature = match &record.signature {
        Some(s) => format!(", \"signature\": {}", signature_json(s)),
        None => String::new(),
    };
    format!(
        "{{\"fault\": {}, \"outcome\": {}, \"sim_seconds\": {}, \"newton_iterations\": {}, \
         \"telemetry\": {}{signature}}}",
        fault_json(&record.fault),
        outcome_json(&record.outcome),
        num(record.sim_seconds),
        record.newton_iterations,
        fault_telemetry_json(&record.telemetry)
    )
}

fn signature_json(signature: &FaultSignature) -> String {
    let nodes = signature
        .nodes
        .iter()
        .map(|node| {
            let onset = match node.onset {
                Some(t) => num(t),
                None => "null".to_string(),
            };
            format!(
                "{{\"trajectory\": {}, \"onset\": {}, \"peak_deviation\": {}, \
                 \"steady_state_offset\": {}}}",
                num_array(&node.trajectory),
                onset,
                num(node.peak_deviation),
                num(node.steady_state_offset)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{\"nodes\": [{nodes}]}}")
}

fn signature_from_json(v: &Json) -> Result<FaultSignature, ProtocolError> {
    let nodes = v
        .field("nodes")?
        .as_array()?
        .iter()
        .map(|node| {
            Ok(NodeSignature {
                trajectory: node.field("trajectory")?.as_f64_array()?,
                onset: match node.field("onset")? {
                    Json::Null => None,
                    t => Some(t.as_f64()?),
                },
                peak_deviation: node.field("peak_deviation")?.as_f64()?,
                steady_state_offset: node.field("steady_state_offset")?.as_f64()?,
            })
        })
        .collect::<Result<_, ProtocolError>>()?;
    Ok(FaultSignature { nodes })
}

fn fault_telemetry_json(t: &FaultTelemetry) -> String {
    format!(
        "{{\"wall_seconds\": {}, \"steps\": {}, \"halvings\": {}, \"newton_iterations\": {}, \
         \"refactorisations\": {}, \"repivots\": {}, \"dense_fallbacks\": {}, \
         \"demotions\": {}, \"early_stopped\": {}, \"batch_width\": {}, \"ejected\": {}}}",
        num(t.wall.as_secs_f64()),
        t.steps,
        t.halvings,
        t.newton_iterations,
        t.solver.refactorisations,
        t.solver.repivots,
        t.solver.dense_fallbacks,
        t.solver.demotions,
        t.early_stopped,
        t.batch_width,
        t.ejected
    )
}

fn fault_json(fault: &Fault) -> String {
    let probability = match fault.probability {
        Some(p) => num(p),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\": {}, \"label\": {}, \"probability\": {}, \"effect\": {}}}",
        fault.id,
        quote(&fault.label),
        probability,
        effect_json(&fault.effect)
    )
}

fn effect_json(effect: &FaultEffect) -> String {
    match effect {
        FaultEffect::Short { a, b } => {
            format!(
                "{{\"kind\": \"short\", \"a\": {}, \"b\": {}}}",
                quote(a),
                quote(b)
            )
        }
        FaultEffect::ElementShort { element, t1, t2 } => format!(
            "{{\"kind\": \"element_short\", \"element\": {}, \"t1\": {t1}, \"t2\": {t2}}}",
            quote(element)
        ),
        FaultEffect::OpenTerminal { element, terminal } => format!(
            "{{\"kind\": \"open_terminal\", \"element\": {}, \"terminal\": {terminal}}}",
            quote(element)
        ),
        FaultEffect::SplitNode {
            node,
            move_terminals,
        } => {
            let moves = move_terminals
                .iter()
                .map(|(e, t)| format!("[{}, {t}]", quote(e)))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{\"kind\": \"split_node\", \"node\": {}, \"move_terminals\": [{moves}]}}",
                quote(node)
            )
        }
        FaultEffect::ParamDeviation { element, factor } => format!(
            "{{\"kind\": \"param_deviation\", \"element\": {}, \"factor\": {}}}",
            quote(element),
            num(*factor)
        ),
    }
}

fn outcome_json(outcome: &FaultOutcome) -> String {
    match outcome {
        FaultOutcome::Detected { at, node } => format!(
            "{{\"status\": \"detected\", \"at\": {}, \"node\": {}}}",
            num(*at),
            quote(node)
        ),
        FaultOutcome::NotDetected => "{\"status\": \"not_detected\"}".to_string(),
        FaultOutcome::InjectionFailed(m) => format!(
            "{{\"status\": \"injection_failed\", \"message\": {}}}",
            quote(m)
        ),
        FaultOutcome::SimulationFailed(m) => format!(
            "{{\"status\": \"simulation_failed\", \"message\": {}}}",
            quote(m)
        ),
    }
}

/// Formats a finite f64 so it parses back to the identical bits
/// (Rust's shortest round-trip representation; JSON-compatible for all
/// finite values, including `-0.0`). JSON has no NaN/Infinity, so
/// non-finite values become `null` — the document stays parseable, and
/// a required numeric field that was non-finite surfaces as an
/// explicit [`ProtocolError::Schema`] on read instead of invalid JSON.
fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // `{:?}` may print an exponent Rust-style (`1e-7`); JSON accepts it.
    format!("{x:?}")
}

fn num_array(xs: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&num(*x));
    }
    s.push(']');
    s
}

fn quote(text: &str) -> String {
    let mut s = String::with_capacity(text.len() + 2);
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Public so telemetry consumers (NDJSON event
/// streams, bench run reports) can reuse the protocol parser instead
/// of growing a second one; the protocol schema mapping below covers
/// only what the campaign document needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always read as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Json>),
}

/// Parses one standalone JSON value (rejecting trailing data). This is
/// the generic entry point behind [`from_json`]; NDJSON consumers call
/// it once per line.
///
/// # Errors
/// [`ProtocolError::Parse`] on malformed JSON.
pub fn parse_json(text: &str) -> Result<Json, ProtocolError> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data"));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts. The daemon feeds this
/// parser untrusted network input; without a bound, `[[[[…` recurses
/// once per byte and overflows the stack (an abort, not a catchable
/// error). The protocol schema nests four levels deep, so 128 is far
/// beyond any legitimate document.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn error(&self, message: &str) -> ProtocolError {
        ProtocolError::Parse(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), ProtocolError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Json::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    /// Runs one container parse with the depth guard held.
    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Json, ProtocolError>,
    ) -> Result<Json, ProtocolError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, ProtocolError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ProtocolError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes the 4 hex digits of a `\u` escape (the `\u` itself is
    /// already consumed) and, for UTF-16 high surrogates, the mandatory
    /// `\uXXXX` low-surrogate continuation — external writers such as
    /// Python's `json.dumps` escape astral characters as surrogate
    /// pairs.
    fn unicode_escape(&mut self) -> Result<char, ProtocolError> {
        let hi = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.error("unpaired low surrogate"));
        }
        if (0xD800..=0xDBFF).contains(&hi) {
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(self.error("unpaired high surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.error("unpaired high surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.error("bad \\u code point"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("bad \\u code point"))
    }

    fn hex4(&mut self) -> Result<u32, ProtocolError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

// ---------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------

fn schema_err(message: impl Into<String>) -> ProtocolError {
    ProtocolError::Schema(message.into())
}

impl Json {
    /// The value under `key`, or a schema error when absent (or when
    /// `self` is not an object). Use [`Json::get`] for optional fields.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, ProtocolError> {
        match self {
            Json::Object(map) => map
                .get(key)
                .ok_or_else(|| schema_err(format!("missing field `{key}`"))),
            _ => Err(schema_err(format!("expected object with field `{key}`"))),
        }
    }

    /// The value under `key`, `None` when absent or when `self` is not
    /// an object — for schema fields newer than the capture being read.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, or a schema error.
    pub fn as_f64(&self) -> Result<f64, ProtocolError> {
        match self {
            Json::Number(x) => Ok(*x),
            _ => Err(schema_err("expected a number")),
        }
    }

    /// The value as a non-negative integer, or a schema error.
    pub fn as_usize(&self) -> Result<usize, ProtocolError> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 {
            Ok(x as usize)
        } else {
            Err(schema_err("expected a non-negative integer"))
        }
    }

    /// The value as a `u64` counter, or a schema error.
    pub fn as_u64(&self) -> Result<u64, ProtocolError> {
        Ok(self.as_usize()? as u64)
    }

    /// The value as a boolean, or a schema error.
    pub fn as_bool(&self) -> Result<bool, ProtocolError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(schema_err("expected a boolean")),
        }
    }

    /// The string contents, or a schema error.
    pub fn as_str(&self) -> Result<&str, ProtocolError> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(schema_err("expected a string")),
        }
    }

    /// The array items, or a schema error.
    pub fn as_array(&self) -> Result<&[Json], ProtocolError> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(schema_err("expected an array")),
        }
    }

    /// The array items as `f64`, or a schema error.
    pub fn as_f64_array(&self) -> Result<Vec<f64>, ProtocolError> {
        self.as_array()?.iter().map(Json::as_f64).collect()
    }
}

/// Parses a JSON protocol document back into a [`CampaignResult`].
///
/// # Errors
/// [`ProtocolError::Parse`] on malformed JSON, [`ProtocolError::Schema`]
/// when the document does not match the protocol schema.
pub fn from_json(text: &str) -> Result<CampaignResult, ProtocolError> {
    result_from_value(&parse_json(text)?)
}

/// Maps an already-parsed protocol document to a [`CampaignResult`] —
/// the back half of [`from_json`], shared with the NDJSON stream
/// terminator in [`event_from_json`].
fn result_from_value(doc: &Json) -> Result<CampaignResult, ProtocolError> {
    let version = doc.field("version")?.as_usize()?;
    if version as u64 != PROTOCOL_VERSION {
        return Err(schema_err(format!(
            "unsupported protocol version {version}"
        )));
    }
    let observed: Vec<String> = doc
        .field("observed")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<_, _>>()?;
    let nominals: Vec<Wave> = doc
        .field("nominals")?
        .as_array()?
        .iter()
        .map(wave_from_json)
        .collect::<Result<_, _>>()?;
    if observed.is_empty() || observed.len() != nominals.len() {
        return Err(schema_err("observed/nominals mismatch"));
    }
    let records: Vec<FaultRecord> = doc
        .field("records")?
        .as_array()?
        .iter()
        .map(record_from_json)
        .collect::<Result<_, _>>()?;
    Ok(CampaignResult {
        observed,
        nominals,
        records,
        nominal_seconds: doc.field("nominal_seconds")?.as_f64()?,
        total_seconds: doc.field("total_seconds")?.as_f64()?,
        telemetry: campaign_telemetry_from_json(doc.get("telemetry"))?,
    })
}

/// Campaign-level telemetry is *optional* in the document — protocol
/// files captured before the telemetry layer existed parse to
/// [`CampaignTelemetry::default`].
fn campaign_telemetry_from_json(v: Option<&Json>) -> Result<CampaignTelemetry, ProtocolError> {
    let Some(v) = v else {
        return Ok(CampaignTelemetry::default());
    };
    Ok(CampaignTelemetry {
        pattern_cache_hits: v.field("pattern_cache_hits")?.as_u64()?,
        pattern_cache_misses: v.field("pattern_cache_misses")?.as_u64()?,
        pattern_cache_entries: v.field("pattern_cache_entries")?.as_usize()?,
        early_stops: v.field("early_stops")?.as_u64()?,
        batches: opt_u64(v, "batches")?,
        batched_faults: opt_u64(v, "batched_faults")?,
        lane_compactions: opt_u64(v, "lane_compactions")?,
        lane_refills: opt_u64(v, "lane_refills")?,
        ejections: opt_u64(v, "ejections")?,
        replayed_faults: opt_u64(v, "replayed_faults")?,
        deduped_faults: opt_u64(v, "deduped_faults")?,
    })
}

/// Reads a counter that postdates the first telemetry schema: absent in
/// older captures, so it defaults to zero instead of erroring.
fn opt_u64(v: &Json, key: &str) -> Result<u64, ProtocolError> {
    v.get(key).map_or(Ok(0), |j| j.as_u64())
}

/// Same back-compat rule for a boolean flag (absent ⇒ `false`).
fn opt_bool(v: &Json, key: &str) -> Result<bool, ProtocolError> {
    v.get(key).map_or(Ok(false), |j| j.as_bool())
}

/// Per-record telemetry is *optional* for the same reason.
fn fault_telemetry_from_json(v: Option<&Json>) -> Result<FaultTelemetry, ProtocolError> {
    let Some(v) = v else {
        return Ok(FaultTelemetry::default());
    };
    let wall_seconds = v.field("wall_seconds")?.as_f64()?;
    if !wall_seconds.is_finite() || wall_seconds < 0.0 {
        return Err(schema_err("wall_seconds must be finite and non-negative"));
    }
    Ok(FaultTelemetry {
        wall: Duration::from_secs_f64(wall_seconds),
        steps: v.field("steps")?.as_u64()?,
        halvings: v.field("halvings")?.as_u64()?,
        newton_iterations: v.field("newton_iterations")?.as_u64()?,
        solver: SolverStats {
            refactorisations: v.field("refactorisations")?.as_u64()?,
            repivots: v.field("repivots")?.as_u64()?,
            dense_fallbacks: v.field("dense_fallbacks")?.as_u64()?,
            demotions: v.field("demotions")?.as_u64()?,
        },
        early_stopped: v.field("early_stopped")?.as_bool()?,
        batch_width: opt_u64(v, "batch_width")? as u32,
        ejected: opt_bool(v, "ejected")?,
    })
}

fn wave_from_json(v: &Json) -> Result<Wave, ProtocolError> {
    let times = v.field("times")?.as_f64_array()?;
    let values = v.field("values")?.as_f64_array()?;
    if times.len() != values.len() || !times.windows(2).all(|w| w[0] < w[1]) {
        return Err(schema_err("malformed waveform"));
    }
    Ok(Wave::new(times, values))
}

fn record_from_json(v: &Json) -> Result<FaultRecord, ProtocolError> {
    Ok(FaultRecord {
        fault: fault_from_json(v.field("fault")?)?,
        outcome: outcome_from_json(v.field("outcome")?)?,
        sim_seconds: v.field("sim_seconds")?.as_f64()?,
        newton_iterations: v.field("newton_iterations")?.as_usize()? as u64,
        telemetry: fault_telemetry_from_json(v.get("telemetry"))?,
        // Signatures postdate the first record schema: absent (or null)
        // in signature-less captures, so they parse to `None`.
        signature: match v.get("signature") {
            None | Some(Json::Null) => None,
            Some(s) => Some(signature_from_json(s)?),
        },
    })
}

fn fault_from_json(v: &Json) -> Result<Fault, ProtocolError> {
    let mut fault = Fault::new(
        v.field("id")?.as_usize()?,
        v.field("label")?.as_str()?,
        effect_from_json(v.field("effect")?)?,
    );
    match v.field("probability")? {
        Json::Null => {}
        p => fault = fault.with_probability(p.as_f64()?),
    }
    Ok(fault)
}

fn effect_from_json(v: &Json) -> Result<FaultEffect, ProtocolError> {
    match v.field("kind")?.as_str()? {
        "short" => Ok(FaultEffect::Short {
            a: v.field("a")?.as_str()?.to_string(),
            b: v.field("b")?.as_str()?.to_string(),
        }),
        "element_short" => Ok(FaultEffect::ElementShort {
            element: v.field("element")?.as_str()?.to_string(),
            t1: v.field("t1")?.as_usize()?,
            t2: v.field("t2")?.as_usize()?,
        }),
        "open_terminal" => Ok(FaultEffect::OpenTerminal {
            element: v.field("element")?.as_str()?.to_string(),
            terminal: v.field("terminal")?.as_usize()?,
        }),
        "split_node" => {
            let move_terminals = v
                .field("move_terminals")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    if pair.len() != 2 {
                        return Err(schema_err("move_terminals entries are [element, terminal]"));
                    }
                    Ok((pair[0].as_str()?.to_string(), pair[1].as_usize()?))
                })
                .collect::<Result<_, _>>()?;
            Ok(FaultEffect::SplitNode {
                node: v.field("node")?.as_str()?.to_string(),
                move_terminals,
            })
        }
        "param_deviation" => Ok(FaultEffect::ParamDeviation {
            element: v.field("element")?.as_str()?.to_string(),
            factor: v.field("factor")?.as_f64()?,
        }),
        kind => Err(schema_err(format!("unknown effect kind `{kind}`"))),
    }
}

fn outcome_from_json(v: &Json) -> Result<FaultOutcome, ProtocolError> {
    match v.field("status")?.as_str()? {
        "detected" => Ok(FaultOutcome::Detected {
            at: v.field("at")?.as_f64()?,
            node: v.field("node")?.as_str()?.to_string(),
        }),
        "not_detected" => Ok(FaultOutcome::NotDetected),
        "injection_failed" => Ok(FaultOutcome::InjectionFailed(
            v.field("message")?.as_str()?.to_string(),
        )),
        "simulation_failed" => Ok(FaultOutcome::SimulationFailed(
            v.field("message")?.as_str()?.to_string(),
        )),
        status => Err(schema_err(format!("unknown outcome status `{status}`"))),
    }
}

// ---------------------------------------------------------------------
// Campaign specification documents
// ---------------------------------------------------------------------

/// Schema version stamped into every campaign-spec document.
pub const SPEC_VERSION: u64 = 1;

/// A self-contained, serializable campaign request: everything a
/// service front-end needs to rebuild and run a [`Campaign`] — the
/// testbench as netlist text, the transient window, observed nodes,
/// detection tolerances, fault model, execution knobs and the fault
/// list itself. This is what clients `POST` to `anafault-serve` and
/// what the daemon persists to its state directory so an interrupted
/// campaign can be rebuilt after a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The fault-free testbench circuit, as netlist text
    /// ([`spice::Circuit::to_netlist`] round-trips through the parser).
    pub netlist: String,
    /// Transient timestep (s).
    pub tstep: f64,
    /// Transient stop time (s).
    pub tstop: f64,
    /// Start from the netlist's initial conditions (`uic`).
    pub uic: bool,
    /// Observed output nodes (any-detect).
    pub observe: Vec<String>,
    /// Detection tolerances.
    pub detection: DetectionSpec,
    /// Hard fault model.
    pub model: HardFaultModel,
    /// Abandon each faulty transient at first detection.
    pub early_stop: bool,
    /// Record a diagnosis [`FaultSignature`] per simulated fault
    /// (forces full-length scalar simulation).
    pub record_signatures: bool,
    /// Fault budget: simulate at most this many faults from the head
    /// of the list.
    pub max_faults: Option<usize>,
    /// Client identity for the server's per-client fault budgets;
    /// anonymous submissions share one bucket.
    pub client: Option<String>,
    /// The faults to simulate, in ranked order.
    pub faults: Vec<Fault>,
}

impl CampaignSpec {
    /// Serializes the spec to its JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"spec_version\": {SPEC_VERSION},");
        let _ = writeln!(s, "  \"netlist\": {},", quote(&self.netlist));
        let _ = writeln!(
            s,
            "  \"tran\": {{\"tstep\": {}, \"tstop\": {}, \"uic\": {}}},",
            num(self.tstep),
            num(self.tstop),
            self.uic
        );
        let _ = writeln!(
            s,
            "  \"observe\": [{}],",
            self.observe
                .iter()
                .map(|n| quote(n))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            s,
            "  \"detection\": {{\"v_tol\": {}, \"t_tol\": {}}},",
            num(self.detection.v_tol),
            num(self.detection.t_tol)
        );
        let _ = writeln!(s, "  \"model\": {},", model_json(&self.model));
        let _ = writeln!(s, "  \"early_stop\": {},", self.early_stop);
        if self.record_signatures {
            let _ = writeln!(s, "  \"record_signatures\": true,");
        }
        if let Some(max) = self.max_faults {
            let _ = writeln!(s, "  \"max_faults\": {max},");
        }
        if let Some(client) = &self.client {
            let _ = writeln!(s, "  \"client\": {},", quote(client));
        }
        s.push_str("  \"faults\": [\n");
        for (i, fault) in self.faults.iter().enumerate() {
            let comma = if i + 1 < self.faults.len() { "," } else { "" };
            let _ = writeln!(s, "    {}{comma}", fault_json(fault));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses and validates a campaign-spec document.
    ///
    /// # Errors
    /// [`ProtocolError::Parse`] on malformed JSON,
    /// [`ProtocolError::Schema`] when the document does not match the
    /// spec schema or carries non-physical values (non-positive
    /// transient window, no observed nodes).
    pub fn from_json(text: &str) -> Result<CampaignSpec, ProtocolError> {
        let doc = parse_json(text)?;
        let version = doc.field("spec_version")?.as_usize()?;
        if version as u64 != SPEC_VERSION {
            return Err(schema_err(format!("unsupported spec version {version}")));
        }
        let tran = doc.field("tran")?;
        let tstep = tran.field("tstep")?.as_f64()?;
        let tstop = tran.field("tstop")?.as_f64()?;
        if !(tstep.is_finite() && tstop.is_finite()) || tstep <= 0.0 || tstop < tstep {
            return Err(schema_err(
                "transient window needs 0 < tstep <= tstop, both finite",
            ));
        }
        let observe: Vec<String> = doc
            .field("observe")?
            .as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Result<_, _>>()?;
        if observe.is_empty() {
            return Err(schema_err("spec observes no nodes"));
        }
        let detection = doc.field("detection")?;
        let spec = CampaignSpec {
            netlist: doc.field("netlist")?.as_str()?.to_string(),
            tstep,
            tstop,
            uic: tran.field("uic")?.as_bool()?,
            observe,
            detection: DetectionSpec {
                v_tol: detection.field("v_tol")?.as_f64()?,
                t_tol: detection.field("t_tol")?.as_f64()?,
            },
            model: model_from_json(doc.field("model")?)?,
            early_stop: opt_bool(&doc, "early_stop")?,
            record_signatures: opt_bool(&doc, "record_signatures")?,
            max_faults: match doc.get("max_faults") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_usize()?),
            },
            client: match doc.get("client") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_str()?.to_string()),
            },
            faults: doc
                .field("faults")?
                .as_array()?
                .iter()
                .map(fault_from_json)
                .collect::<Result<_, _>>()?,
        };
        Ok(spec)
    }

    /// Rebuilds the executable [`Campaign`] this spec describes: parses
    /// the netlist and assembles the builder. The spec's fault list and
    /// budget are *not* consumed here — open a session over
    /// [`CampaignSpec::faults`] (the builder carries the budget).
    ///
    /// # Errors
    /// [`ProtocolError::Schema`] when the netlist does not parse or the
    /// configuration is incomplete.
    pub fn build_campaign(&self) -> Result<Campaign, ProtocolError> {
        let circuit = spice::parser::parse_netlist(&self.netlist)
            .map_err(|e| schema_err(format!("spec netlist does not parse: {e}")))?;
        let mut tran = spice::tran::TranSpec::new(self.tstep, self.tstop);
        if self.uic {
            tran = tran.with_uic();
        }
        let mut builder = Campaign::builder()
            .testbench(circuit)
            .tran(tran)
            .observe_nodes(self.observe.iter().cloned())
            .detection(self.detection)
            .model(self.model)
            .early_stop(self.early_stop)
            .record_signatures(self.record_signatures);
        if let Some(max) = self.max_faults {
            builder = builder.max_faults(max);
        }
        builder
            .build()
            .map_err(|e| schema_err(format!("spec does not configure a campaign: {e}")))
    }

    /// Removes faults whose *effect* duplicates an earlier entry (same
    /// model kind and the same nodes/terminals — the canonical effect
    /// serialization is the comparison key). The first occurrence wins,
    /// keeping the ranked order; labels and ids of later duplicates are
    /// dropped with them. Returns the number of entries trimmed, which
    /// the daemon records as `CampaignTelemetry::deduped_faults`.
    pub fn dedup_faults(&mut self) -> u64 {
        let before = self.faults.len();
        let mut seen = BTreeSet::new();
        self.faults.retain(|f| seen.insert(effect_json(&f.effect)));
        (before - self.faults.len()) as u64
    }
}

fn model_json(model: &HardFaultModel) -> String {
    match model {
        HardFaultModel::Resistor { r_short, r_open } => format!(
            "{{\"kind\": \"resistor\", \"r_short\": {}, \"r_open\": {}}}",
            num(*r_short),
            num(*r_open)
        ),
        HardFaultModel::Source => "{\"kind\": \"source\"}".to_string(),
    }
}

fn model_from_json(v: &Json) -> Result<HardFaultModel, ProtocolError> {
    match v.field("kind")?.as_str()? {
        "resistor" => Ok(HardFaultModel::Resistor {
            r_short: v.field("r_short")?.as_f64()?,
            r_open: v.field("r_open")?.as_f64()?,
        }),
        "source" => Ok(HardFaultModel::Source),
        kind => Err(schema_err(format!("unknown fault model kind `{kind}`"))),
    }
}

// ---------------------------------------------------------------------
// NDJSON event stream
// ---------------------------------------------------------------------

/// One line of a campaign event stream (and of the daemon's checkpoint
/// files): either a per-fault progress event or the terminating full
/// result document.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A fault completed.
    Progress(CampaignProgress),
    /// The campaign finished; this is the last line of a stream.
    Result(CampaignResult),
}

/// Serializes one progress event as a single NDJSON line (no trailing
/// newline). The embedded record uses the same schema as the `records`
/// array of a protocol document.
pub fn progress_to_json(progress: &CampaignProgress) -> String {
    format!(
        "{{\"event\": \"progress\", \"index\": {}, \"completed\": {}, \"total\": {}, \
         \"record\": {}}}",
        progress.index,
        progress.completed,
        progress.total,
        record_json(&progress.record)
    )
}

/// Serializes the stream-terminating result as a single NDJSON line (no
/// trailing newline). The embedded document is byte-for-byte
/// [`to_json`] with its newlines flattened to spaces — legal, because
/// the writer escapes every control character inside strings.
pub fn result_event_json(result: &CampaignResult) -> String {
    let flat = to_json(result).replace('\n', " ");
    format!("{{\"event\": \"result\", \"result\": {}}}", flat.trim())
}

/// Parses one NDJSON stream (or checkpoint) line.
///
/// # Errors
/// [`ProtocolError::Parse`] on malformed JSON — a torn final checkpoint
/// line surfaces here — and [`ProtocolError::Schema`] on an unknown
/// event kind or a non-conforming payload.
pub fn event_from_json(line: &str) -> Result<StreamEvent, ProtocolError> {
    let doc = parse_json(line)?;
    match doc.field("event")?.as_str()? {
        "progress" => Ok(StreamEvent::Progress(CampaignProgress {
            index: doc.field("index")?.as_usize()?,
            completed: doc.field("completed")?.as_usize()?,
            total: doc.field("total")?.as_usize()?,
            record: record_from_json(doc.field("record")?)?,
        })),
        "result" => Ok(StreamEvent::Result(result_from_value(
            doc.field("result")?,
        )?)),
        kind => Err(schema_err(format!("unknown stream event `{kind}`"))),
    }
}

// ---------------------------------------------------------------------
// Fault-dictionary and diagnosis documents
// ---------------------------------------------------------------------

/// Schema version stamped into every dictionary document.
pub const DICT_VERSION: u64 = 1;

/// Serializes a fault dictionary to its JSON document. The writer is
/// deterministic: serialize → parse → serialize reproduces the bytes,
/// which the daemon relies on when reloading persisted dictionaries.
pub fn dictionary_to_json(dict: &FaultDictionary) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"dict_version\": {DICT_VERSION},");
    let _ = writeln!(
        s,
        "  \"observed\": [{}],",
        dict.observed
            .iter()
            .map(|n| quote(n))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"t0\": {},", num(dict.t0));
    let _ = writeln!(s, "  \"t1\": {},", num(dict.t1));
    let _ = writeln!(s, "  \"points\": {},", dict.points);
    let _ = writeln!(s, "  \"threshold\": {},", num(dict.threshold));
    let _ = writeln!(s, "  \"shift_steps\": {},", dict.shift_steps);
    s.push_str("  \"nominal\": [\n");
    for (i, row) in dict.nominal.iter().enumerate() {
        let comma = if i + 1 < dict.nominal.len() { "," } else { "" };
        let _ = writeln!(s, "    {}{comma}", num_array(row));
    }
    s.push_str("  ],\n");
    s.push_str("  \"entries\": [\n");
    for (i, entry) in dict.entries.iter().enumerate() {
        let comma = if i + 1 < dict.entries.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"fault_id\": {}, \"label\": {}, \"signature\": {}}}{comma}",
            entry.fault_id,
            quote(&entry.label),
            signature_json(&entry.signature)
        );
    }
    s.push_str("  ],\n");
    let classes = dict
        .classes
        .iter()
        .map(|class| {
            format!(
                "[{}]",
                class
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(s, "  \"classes\": [{classes}]");
    s.push_str("}\n");
    s
}

/// Parses a dictionary document back into a [`FaultDictionary`].
///
/// Beyond shape, the parser enforces the invariants the matcher leans
/// on: a shared grid (`points` ≥ 2, `t1` > `t0`), one nominal row and
/// one signature node per observed name, every trajectory on the grid,
/// and `classes` forming a partition of the entry indices.
///
/// # Errors
/// [`ProtocolError::Parse`] on malformed JSON, [`ProtocolError::Schema`]
/// on a schema or invariant violation.
pub fn dictionary_from_json(text: &str) -> Result<FaultDictionary, ProtocolError> {
    let doc = parse_json(text)?;
    let version = doc.field("dict_version")?.as_u64()?;
    if version != DICT_VERSION {
        return Err(schema_err(format!(
            "unsupported dictionary version {version}"
        )));
    }
    let observed: Vec<String> = doc
        .field("observed")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<_, _>>()?;
    if observed.is_empty() {
        return Err(schema_err("dictionary observes no nodes"));
    }
    let t0 = doc.field("t0")?.as_f64()?;
    let t1 = doc.field("t1")?.as_f64()?;
    if !t0.is_finite() || !t1.is_finite() || t1 <= t0 {
        return Err(schema_err("dictionary grid window must satisfy t0 < t1"));
    }
    let points = doc.field("points")?.as_usize()?;
    if points < 2 {
        return Err(schema_err("dictionary grid needs at least two points"));
    }
    let threshold = doc.field("threshold")?.as_f64()?;
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(schema_err("threshold must be finite and non-negative"));
    }
    let shift_steps = doc.field("shift_steps")?.as_usize()?;
    let nominal: Vec<Vec<f64>> = doc
        .field("nominal")?
        .as_array()?
        .iter()
        .map(Json::as_f64_array)
        .collect::<Result<_, _>>()?;
    if nominal.len() != observed.len() || nominal.iter().any(|row| row.len() != points) {
        return Err(schema_err("nominal rows must match observed × points"));
    }
    let entries: Vec<DictionaryEntry> = doc
        .field("entries")?
        .as_array()?
        .iter()
        .map(|v| {
            let signature = signature_from_json(v.field("signature")?)?;
            if signature.nodes.len() != observed.len()
                || signature.nodes.iter().any(|n| n.trajectory.len() != points)
            {
                return Err(schema_err("entry signature off the dictionary grid"));
            }
            Ok(DictionaryEntry {
                fault_id: v.field("fault_id")?.as_usize()?,
                label: v.field("label")?.as_str()?.to_string(),
                signature,
            })
        })
        .collect::<Result<_, _>>()?;
    let classes: Vec<Vec<usize>> = doc
        .field("classes")?
        .as_array()?
        .iter()
        .map(|class| class.as_array()?.iter().map(Json::as_usize).collect())
        .collect::<Result<_, _>>()?;
    let mut seen = vec![false; entries.len()];
    for &index in classes.iter().flatten() {
        if index >= entries.len() || seen[index] {
            return Err(schema_err("classes must partition the entry indices"));
        }
        seen[index] = true;
    }
    if seen.iter().any(|covered| !covered) {
        return Err(schema_err("classes must partition the entry indices"));
    }
    Ok(FaultDictionary {
        observed,
        t0,
        t1,
        points,
        threshold,
        shift_steps,
        nominal,
        entries,
        classes,
    })
}

/// Schema version stamped into every diagnosis request.
pub const DIAGNOSE_VERSION: u64 = 1;

/// A waveform-to-fault matching request: measured waveforms, tagged
/// with the campaign whose dictionary should rank them.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseRequest {
    /// Campaign id whose dictionary answers the query.
    pub campaign: String,
    /// Measured `(node, waveform)` pairs; node names must be a subset
    /// of the dictionary's observed nodes.
    pub waves: Vec<(String, Wave)>,
}

impl DiagnoseRequest {
    /// Serializes the request as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let waves = self
            .waves
            .iter()
            .map(|(node, wave)| {
                format!(
                    "{{\"node\": {}, \"times\": {}, \"values\": {}}}",
                    quote(node),
                    num_array(wave.times()),
                    num_array(wave.values())
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"diagnose_version\": {DIAGNOSE_VERSION}, \"campaign\": {}, \"waves\": [{waves}]}}",
            quote(&self.campaign)
        )
    }

    /// Parses a diagnosis request. Waveforms are validated the same way
    /// as protocol nominals (equal lengths, strictly increasing times)
    /// *before* any [`Wave`] is constructed — this parser fronts raw
    /// network input and must reject rather than panic.
    ///
    /// # Errors
    /// [`ProtocolError::Parse`] on malformed JSON, [`ProtocolError::Schema`]
    /// on a version/shape mismatch or a malformed waveform.
    pub fn from_json(text: &str) -> Result<Self, ProtocolError> {
        let doc = parse_json(text)?;
        let version = doc.field("diagnose_version")?.as_u64()?;
        if version != DIAGNOSE_VERSION {
            return Err(schema_err(format!(
                "unsupported diagnose version {version}"
            )));
        }
        let waves = doc
            .field("waves")?
            .as_array()?
            .iter()
            .map(|v| {
                let node = v.field("node")?.as_str()?.to_string();
                Ok((node, wave_from_json(v)?))
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        if waves.is_empty() {
            return Err(schema_err("diagnosis needs at least one waveform"));
        }
        Ok(DiagnoseRequest {
            campaign: doc.field("campaign")?.as_str()?.to_string(),
            waves,
        })
    }
}

/// Serializes one ranked diagnosis candidate as an NDJSON line (no
/// trailing newline) — the daemon streams one per ambiguity class,
/// best match first, `rank` starting at 1.
pub fn candidate_json(rank: usize, candidate: &Candidate) -> String {
    let faults = candidate
        .fault_ids
        .iter()
        .zip(&candidate.labels)
        .map(|(id, label)| format!("{{\"id\": {id}, \"label\": {}}}", quote(label)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"rank\": {rank}, \"class\": {}, \"score\": {}, \"faults\": [{faults}]}}",
        candidate.class,
        num(candidate.score)
    )
}

/// Parses one candidate line back into its rank and [`Candidate`].
///
/// # Errors
/// [`ProtocolError::Parse`] on malformed JSON, [`ProtocolError::Schema`]
/// on a non-conforming candidate object.
pub fn candidate_from_json(line: &str) -> Result<(usize, Candidate), ProtocolError> {
    let doc = parse_json(line)?;
    let faults = doc.field("faults")?.as_array()?;
    let mut fault_ids = Vec::with_capacity(faults.len());
    let mut labels = Vec::with_capacity(faults.len());
    for fault in faults {
        fault_ids.push(fault.field("id")?.as_usize()?);
        labels.push(fault.field("label")?.as_str()?.to_string());
    }
    Ok((
        doc.field("rank")?.as_usize()?,
        Candidate {
            class: doc.field("class")?.as_usize()?,
            score: doc.field("score")?.as_f64()?,
            fault_ids,
            labels,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> CampaignResult {
        CampaignResult {
            observed: vec!["11".to_string(), "out\"quoted\"".to_string()],
            nominals: vec![
                Wave::new(vec![0.0, 1e-6, 2e-6], vec![0.0, 5.0, -0.25]),
                Wave::new(vec![0.0, 1e-6], vec![2.2, 2.2]),
            ],
            records: vec![
                FaultRecord {
                    fault: Fault::new(
                        6,
                        "BRI n_ds_short 5->6",
                        FaultEffect::Short {
                            a: "5".into(),
                            b: "6".into(),
                        },
                    )
                    .with_probability(3.2e-8),
                    outcome: FaultOutcome::Detected {
                        at: 0.5e-6,
                        node: "11".into(),
                    },
                    sim_seconds: 0.01,
                    newton_iterations: 400,
                    telemetry: FaultTelemetry {
                        wall: Duration::from_millis(10),
                        steps: 120,
                        halvings: 3,
                        newton_iterations: 400,
                        solver: SolverStats {
                            refactorisations: 123,
                            repivots: 1,
                            dense_fallbacks: 1,
                            demotions: 0,
                        },
                        early_stopped: true,
                        batch_width: 4,
                        ejected: true,
                    },
                    signature: Some(FaultSignature {
                        nodes: vec![
                            NodeSignature {
                                trajectory: vec![0.0, 0.5, -0.25],
                                onset: Some(0.5e-6),
                                peak_deviation: 0.5,
                                steady_state_offset: -0.25,
                            },
                            NodeSignature {
                                trajectory: vec![0.0, 0.0, 0.0],
                                onset: None,
                                peak_deviation: 0.0,
                                steady_state_offset: 0.0,
                            },
                        ],
                    }),
                },
                FaultRecord {
                    fault: Fault::new(
                        7,
                        "SOP M3.g",
                        FaultEffect::OpenTerminal {
                            element: "M3".into(),
                            terminal: 1,
                        },
                    ),
                    outcome: FaultOutcome::NotDetected,
                    sim_seconds: 0.02,
                    newton_iterations: 410,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        9,
                        "OPN split 6",
                        FaultEffect::SplitNode {
                            node: "6".into(),
                            move_terminals: vec![("C1".into(), 1), ("M4".into(), 0)],
                        },
                    ),
                    outcome: FaultOutcome::InjectionFailed("unknown node `zz`".into()),
                    sim_seconds: 0.001,
                    newton_iterations: 0,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        10,
                        "BRI R2",
                        FaultEffect::ElementShort {
                            element: "R2".into(),
                            t1: 0,
                            t2: 1,
                        },
                    ),
                    outcome: FaultOutcome::SimulationFailed("tran failed to converge".into()),
                    sim_seconds: 0.5,
                    newton_iterations: 12,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
                FaultRecord {
                    fault: Fault::new(
                        11,
                        "SOFT R1 x1.050",
                        FaultEffect::ParamDeviation {
                            element: "R1".into(),
                            factor: 1.05,
                        },
                    ),
                    outcome: FaultOutcome::NotDetected,
                    sim_seconds: 0.015,
                    newton_iterations: 380,
                    telemetry: FaultTelemetry::default(),
                    signature: None,
                },
            ],
            nominal_seconds: 0.0123,
            total_seconds: 0.25,
            telemetry: CampaignTelemetry {
                pattern_cache_hits: 5,
                pattern_cache_misses: 2,
                pattern_cache_entries: 2,
                early_stops: 1,
                batches: 3,
                batched_faults: 4,
                lane_compactions: 2,
                lane_refills: 1,
                ejections: 1,
                replayed_faults: 2,
                deduped_faults: 3,
            },
        }
    }

    #[test]
    fn json_round_trips_every_effect_and_outcome() {
        let original = sample_result();
        let text = to_json(&original);
        let back = from_json(&text).expect("round trip parses");
        assert_eq!(back.observed, original.observed);
        assert_eq!(back.nominals, original.nominals);
        assert_eq!(back.nominal_seconds, original.nominal_seconds);
        assert_eq!(back.total_seconds, original.total_seconds);
        assert_eq!(back.records.len(), original.records.len());
        for (a, b) in back.records.iter().zip(&original.records) {
            assert_eq!(a.fault, b.fault);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.sim_seconds, b.sim_seconds);
            assert_eq!(a.newton_iterations, b.newton_iterations);
            assert_eq!(a.telemetry, b.telemetry);
            assert_eq!(a.signature, b.signature);
        }
        assert_eq!(back.telemetry, original.telemetry);
        // Derived statistics survive too.
        assert_eq!(back.final_coverage(), original.final_coverage());
        assert_eq!(back.detections(), original.detections());
    }

    /// Protocol files written before the telemetry layer existed lack
    /// both the top-level and the per-record `telemetry` objects; they
    /// must keep parsing, with defaults filled in.
    #[test]
    fn pre_telemetry_captures_still_parse() {
        let old_capture = r#"{
  "version": 1,
  "observed": ["out"],
  "nominal_seconds": 0.01,
  "total_seconds": 0.05,
  "nominals": [
    {"times": [0.0, 1e-6], "values": [0.0, 5.0]}
  ],
  "records": [
    {"fault": {"id": 1, "label": "BRI a->b", "probability": null,
      "effect": {"kind": "short", "a": "a", "b": "b"}},
     "outcome": {"status": "not_detected"},
     "sim_seconds": 0.02, "newton_iterations": 40}
  ]
}"#;
        let back = from_json(old_capture).expect("old capture parses");
        assert_eq!(back.telemetry, CampaignTelemetry::default());
        assert_eq!(back.records[0].telemetry, FaultTelemetry::default());
        assert_eq!(back.records[0].newton_iterations, 40);
    }

    /// A *present but malformed* telemetry object is a schema error,
    /// not silently defaulted.
    #[test]
    fn malformed_telemetry_rejected() {
        let mut result = sample_result();
        result.records.truncate(1);
        let text = to_json(&result).replace("\"wall_seconds\": 0.01", "\"wall_seconds\": null");
        assert!(matches!(from_json(&text), Err(ProtocolError::Schema(_))));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(matches!(
            from_json("not json"),
            Err(ProtocolError::Parse(_))
        ));
        assert!(matches!(
            from_json("{\"version\": 1}"),
            Err(ProtocolError::Schema(_))
        ));
        assert!(matches!(
            from_json("{\"version\": 99, \"observed\": [], \"nominals\": [], \"records\": [], \"nominal_seconds\": 0, \"total_seconds\": 0}"),
            Err(ProtocolError::Schema(_))
        ));
        // Trailing garbage is an error, not silently ignored.
        let mut text = to_json(&sample_result());
        text.push_str("[]");
        assert!(matches!(from_json(&text), Err(ProtocolError::Parse(_))));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{1}µ";
        let quoted = quote(tricky);
        let mut p = Parser::new(&quoted);
        assert_eq!(p.string().unwrap(), tricky);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            3.2e-8,
            1e-7,
            4e-6,
            f64::MIN_POSITIVE,
            123456.789,
        ] {
            let s = num(x);
            let back = s.parse::<f64>().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(num(x), "null");
        }
        // A NaN probability yields a valid document that parses back
        // with the probability absent.
        let mut result = sample_result();
        result.records[0].fault.probability = Some(f64::NAN);
        let text = to_json(&result);
        let back = from_json(&text).expect("document stays valid JSON");
        assert_eq!(back.records[0].fault.probability, None);
    }

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            netlist: "rc µ-bench\nV1 in 0 pulse(0 5 0 1u 1u 40u 100u)\nR1 in out 10k\n\
                      C1 out 0 1n ic=0\n.end\n"
                .to_string(),
            tstep: 0.5e-6,
            tstop: 50e-6,
            uic: true,
            observe: vec!["out".to_string()],
            detection: DetectionSpec {
                v_tol: 1.0,
                t_tol: 1e-6,
            },
            model: HardFaultModel::paper_resistor(),
            early_stop: false,
            record_signatures: false,
            max_faults: Some(8),
            client: Some("ci".to_string()),
            faults: vec![
                Fault::new(
                    1,
                    "BRI in->out",
                    FaultEffect::Short {
                        a: "in".into(),
                        b: "out".into(),
                    },
                )
                .with_probability(1e-7),
                Fault::new(
                    2,
                    "SOFT R1 ×1.05",
                    FaultEffect::ParamDeviation {
                        element: "R1".into(),
                        factor: 1.05,
                    },
                ),
            ],
        }
    }

    #[test]
    fn spec_round_trips_and_builds() {
        let spec = sample_spec();
        let text = spec.to_json();
        let back = CampaignSpec::from_json(&text).expect("spec round trip parses");
        assert_eq!(back, spec);
        let campaign = back.build_campaign().expect("spec builds a campaign");
        assert_eq!(campaign.observed(), ["out".to_string()]);
        assert_eq!(campaign.max_faults(), Some(8));
        assert_eq!(campaign.model(), HardFaultModel::paper_resistor());
        // A session honours the spec's budget over the spec's faults.
        assert_eq!(campaign.session(&back.faults).faults().len(), 2);
    }

    #[test]
    fn spec_source_model_and_optional_fields() {
        let mut spec = sample_spec();
        spec.model = HardFaultModel::Source;
        spec.max_faults = None;
        spec.client = None;
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_rejects_bad_documents() {
        let spec = sample_spec();
        // Non-physical transient window.
        let bad = spec.to_json().replace("\"tstep\": 5e-7", "\"tstep\": -1.0");
        assert!(matches!(
            CampaignSpec::from_json(&bad),
            Err(ProtocolError::Schema(_))
        ));
        // No observed nodes.
        let bad = spec.to_json().replace("[\"out\"]", "[]");
        assert!(matches!(
            CampaignSpec::from_json(&bad),
            Err(ProtocolError::Schema(_))
        ));
        // Unknown model kind.
        let bad = spec
            .to_json()
            .replace("\"kind\": \"resistor\"", "\"kind\": \"laser\"");
        assert!(matches!(
            CampaignSpec::from_json(&bad),
            Err(ProtocolError::Schema(_))
        ));
        // A netlist that does not parse fails at build time.
        let mut broken = spec.clone();
        broken.netlist = "broken\nR1 in\n.end\n".to_string();
        assert!(CampaignSpec::from_json(&broken.to_json())
            .unwrap()
            .build_campaign()
            .is_err());
    }

    #[test]
    fn stream_events_round_trip() {
        let result = sample_result();
        let progress = CampaignProgress {
            index: 3,
            completed: 1,
            total: 5,
            record: result.records[0].clone(),
        };
        let line = progress_to_json(&progress);
        assert!(!line.contains('\n'), "NDJSON lines are single-line");
        match event_from_json(&line).unwrap() {
            StreamEvent::Progress(p) => {
                assert_eq!(p.index, 3);
                assert_eq!(p.completed, 1);
                assert_eq!(p.total, 5);
                assert_eq!(p.record.fault, progress.record.fault);
                assert_eq!(p.record.outcome, progress.record.outcome);
                assert_eq!(p.record.telemetry, progress.record.telemetry);
            }
            StreamEvent::Result(_) => panic!("expected a progress event"),
        }

        let line = result_event_json(&result);
        assert!(!line.contains('\n'), "NDJSON lines are single-line");
        match event_from_json(&line).unwrap() {
            StreamEvent::Result(r) => {
                assert_eq!(r.observed, result.observed);
                assert_eq!(r.nominals, result.nominals);
                assert_eq!(r.telemetry, result.telemetry);
                assert_eq!(r.records.len(), result.records.len());
            }
            StreamEvent::Progress(_) => panic!("expected a result event"),
        }

        assert!(matches!(
            event_from_json("{\"event\": \"flush\"}"),
            Err(ProtocolError::Schema(_))
        ));
    }

    /// Every strict prefix of a golden document must come back as an
    /// error — never a panic. This is what lets resume tolerate a
    /// checkpoint whose final line was torn mid-write. (Prefixes that
    /// only drop trailing whitespace still parse, hence the `trim_end`
    /// cutoff.)
    fn assert_prefixes_fail<T>(text: &str, parse: impl Fn(&str) -> Result<T, ProtocolError>) {
        let end = text.trim_end().len();
        for k in (0..text.len()).filter(|&k| text.is_char_boundary(k)) {
            let prefix = &text[..k];
            if k < end {
                assert!(parse(prefix).is_err(), "prefix of {k} bytes parsed");
            } else {
                assert!(
                    parse(prefix).is_ok(),
                    "whitespace-trimmed tail failed at {k}"
                );
            }
        }
    }

    #[test]
    fn truncated_result_documents_error_at_every_offset() {
        assert_prefixes_fail(&to_json(&sample_result()), from_json);
    }

    #[test]
    fn truncated_spec_documents_error_at_every_offset() {
        assert_prefixes_fail(&sample_spec().to_json(), CampaignSpec::from_json);
    }

    #[test]
    fn truncated_stream_lines_error_at_every_offset() {
        let result = sample_result();
        let progress = CampaignProgress {
            index: 0,
            completed: 1,
            total: 5,
            record: result.records[0].clone(),
        };
        assert_prefixes_fail(&progress_to_json(&progress), event_from_json);
        assert_prefixes_fail(&result_event_json(&result), event_from_json);
    }

    #[test]
    fn spec_record_signatures_round_trips_and_reaches_the_campaign() {
        let mut spec = sample_spec();
        spec.record_signatures = true;
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let campaign = back.build_campaign().unwrap();
        assert!(campaign.record_signatures_enabled());
        // The flag is omitted (not written as `false`) when off, so
        // pre-diagnosis specs keep parsing unchanged.
        spec.record_signatures = false;
        assert!(!spec.to_json().contains("record_signatures"));
        assert!(
            !CampaignSpec::from_json(&spec.to_json())
                .unwrap()
                .record_signatures
        );
    }

    #[test]
    fn spec_dedup_trims_repeated_effects_keeping_the_first() {
        let mut spec = sample_spec();
        // Same effect as fault 1 under a different id and label, plus a
        // genuinely new effect — only the repeat goes.
        spec.faults.push(Fault::new(
            9,
            "BRI in->out again",
            FaultEffect::Short {
                a: "in".into(),
                b: "out".into(),
            },
        ));
        spec.faults.push(Fault::new(
            10,
            "SOP C1.0",
            FaultEffect::OpenTerminal {
                element: "C1".into(),
                terminal: 0,
            },
        ));
        assert_eq!(spec.dedup_faults(), 1);
        assert_eq!(
            spec.faults.iter().map(|f| f.id).collect::<Vec<_>>(),
            [1, 2, 10]
        );
        // Idempotent once clean.
        assert_eq!(spec.dedup_faults(), 0);
    }

    fn sample_dictionary() -> FaultDictionary {
        FaultDictionary {
            observed: vec!["11".to_string(), "out\"quoted\"".to_string()],
            t0: 0.0,
            t1: 2e-6,
            points: 3,
            threshold: 0.05,
            shift_steps: 2,
            nominal: vec![vec![0.0, 5.0, -0.25], vec![2.2, 2.2, 2.2]],
            entries: vec![
                DictionaryEntry {
                    fault_id: 6,
                    label: "BRI n_ds_short 5->6".to_string(),
                    signature: FaultSignature {
                        nodes: vec![
                            NodeSignature {
                                trajectory: vec![0.0, 0.5, -0.25],
                                onset: Some(0.5e-6),
                                peak_deviation: 0.5,
                                steady_state_offset: -0.25,
                            },
                            NodeSignature {
                                trajectory: vec![0.0, 0.0, 0.0],
                                onset: None,
                                peak_deviation: 0.0,
                                steady_state_offset: 0.0,
                            },
                        ],
                    },
                },
                DictionaryEntry {
                    fault_id: 10,
                    label: "BRI R2".to_string(),
                    signature: FaultSignature {
                        nodes: vec![
                            NodeSignature {
                                trajectory: vec![0.0, -2.0, -2.0],
                                onset: Some(1e-6),
                                peak_deviation: 2.0,
                                steady_state_offset: -2.0,
                            },
                            NodeSignature {
                                trajectory: vec![0.1, 0.1, 0.1],
                                onset: Some(0.0),
                                peak_deviation: 0.1,
                                steady_state_offset: 0.1,
                            },
                        ],
                    },
                },
            ],
            classes: vec![vec![0], vec![1]],
        }
    }

    #[test]
    fn dictionary_round_trips_bitwise() {
        let dict = sample_dictionary();
        let text = dictionary_to_json(&dict);
        let back = dictionary_from_json(&text).expect("dictionary parses");
        assert_eq!(back, dict);
        // Reserialization is byte-identical — the daemon reloads
        // persisted dictionaries and must not see drift.
        assert_eq!(dictionary_to_json(&back), text);
    }

    #[test]
    fn truncated_dictionary_documents_error_at_every_offset() {
        assert_prefixes_fail(
            &dictionary_to_json(&sample_dictionary()),
            dictionary_from_json,
        );
    }

    #[test]
    fn dictionary_rejects_invariant_violations() {
        let text = dictionary_to_json(&sample_dictionary());
        for (from, to) in [
            // Unsupported version.
            ("\"dict_version\": 1", "\"dict_version\": 2"),
            // Trajectories no longer sit on the grid.
            ("\"points\": 3", "\"points\": 4"),
            // Degenerate window.
            ("\"t1\": 2e-6", "\"t1\": 0.0"),
            // Entry 1 appears twice, entry 0 never.
            ("\"classes\": [[0], [1]]", "\"classes\": [[1], [1]]"),
            // Entry index out of range.
            ("\"classes\": [[0], [1]]", "\"classes\": [[0], [7]]"),
            // A nominal row off the grid.
            ("[2.2, 2.2, 2.2]", "[2.2, 2.2]"),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "tamper `{from}` did not apply");
            assert!(
                matches!(dictionary_from_json(&bad), Err(ProtocolError::Schema(_))),
                "tamper `{to}` accepted"
            );
        }
    }

    #[test]
    fn diagnose_request_round_trips_and_validates_waves() {
        let request = DiagnoseRequest {
            campaign: "c12".to_string(),
            waves: vec![(
                "out\"quoted\"".to_string(),
                Wave::new(vec![0.0, 1e-6, 2e-6], vec![0.0, 5.0, -0.25]),
            )],
        };
        let line = request.to_json();
        assert!(!line.contains('\n'), "requests are NDJSON-safe");
        assert_eq!(DiagnoseRequest::from_json(&line).unwrap(), request);
        assert_prefixes_fail(&line, DiagnoseRequest::from_json);
        // Non-increasing times must be rejected before Wave::new — this
        // parser fronts raw network input.
        let bad = line.replace("[0.0, 1e-6, 2e-6]", "[0.0, 2e-6, 1e-6]");
        assert_ne!(bad, line, "tamper did not apply");
        assert!(matches!(
            DiagnoseRequest::from_json(&bad),
            Err(ProtocolError::Schema(_))
        ));
        // An empty wave set can never rank anything.
        let empty = format!(
            "{{\"diagnose_version\": {DIAGNOSE_VERSION}, \"campaign\": \"c1\", \"waves\": []}}"
        );
        assert!(matches!(
            DiagnoseRequest::from_json(&empty),
            Err(ProtocolError::Schema(_))
        ));
    }

    #[test]
    fn candidate_lines_round_trip() {
        let candidate = Candidate {
            class: 4,
            score: 0.125,
            fault_ids: vec![6, 10],
            labels: vec!["BRI n_ds_short 5->6".to_string(), "BRI R2".to_string()],
        };
        let line = candidate_json(1, &candidate);
        assert!(!line.contains('\n'), "candidates are NDJSON lines");
        let (rank, back) = candidate_from_json(&line).unwrap();
        assert_eq!(rank, 1);
        assert_eq!(back, candidate);
        assert_prefixes_fail(&line, candidate_from_json);
    }

    /// Unbounded nesting must be a parse error, not a stack overflow —
    /// the daemon feeds this parser raw network input.
    #[test]
    fn deep_nesting_is_rejected_not_fatal() {
        for open in ["[", "{\"k\":["] {
            let bomb = open.repeat(100_000);
            assert!(matches!(parse_json(&bomb), Err(ProtocolError::Parse(_))));
        }
        // The limit leaves generous headroom over the real schema.
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&deep).is_ok());
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Python's `json.dumps` escapes astral characters this way.
        let mut p = Parser::new("\"\\ud83d\\ude00 ok\"");
        assert_eq!(p.string().unwrap(), "\u{1F600} ok");
        // Lone or malformed surrogates are rejected, not mangled.
        for bad in [
            "\"\\ud83d\"",
            "\"\\ud83d\\n\"",
            "\"\\ude00\"",
            "\"\\ud83d\\ud83d\"",
        ] {
            assert!(Parser::new(bad).string().is_err(), "{bad}");
        }
    }
}
