//! The `--metrics` run report must carry every counter key the CI
//! smoke job greps for, parse as JSON, and embed the campaign report.

use anafault::protocol::parse_json;
use anafault::{Campaign, DetectionSpec, HardFaultModel};
use bench::{render_report, BatchSummary, DiagnosisSummary, REPORT_SCHEMA, REQUIRED_COUNTERS};
use spice::tran::TranSpec;
use vco::OBSERVED_NODE;

#[test]
fn report_contains_required_keys() {
    cat_telemetry::set_enabled(true);
    let (sys, tb) = bench::vco_system();
    let faults: Vec<_> = sys.fault_list().into_iter().take(4).collect();
    let campaign = Campaign::builder()
        .testbench(tb)
        .tran(TranSpec::new(10e-9, 0.2e-6).with_uic())
        .observe(OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .early_stop(true)
        .build()
        .expect("complete configuration");
    let result = campaign.run(&faults).expect("campaign runs");
    cat_telemetry::set_enabled(false);

    let phases = vec![("campaign".to_string(), 0.25)];
    let batch = BatchSummary {
        width: 4,
        speedup: Some(2.5),
        verdicts_agree: Some(true),
    };
    let diagnosis = DiagnosisSummary {
        entries: 4,
        classes: 3,
        queries: 4,
        top1: 4,
        top3: 4,
    };
    let text = render_report(
        "smoke",
        1.0,
        &phases,
        Some(&result.report()),
        Some(batch),
        Some(diagnosis),
    );
    let doc = parse_json(&text).expect("report is valid JSON");

    assert_eq!(
        doc.field("schema").unwrap().as_str().unwrap(),
        REPORT_SCHEMA
    );
    assert_eq!(doc.field("bench").unwrap().as_str().unwrap(), "smoke");
    assert_eq!(doc.field("wall_seconds").unwrap().as_f64().unwrap(), 1.0);

    let phases_json = doc.field("phases").unwrap().as_array().unwrap();
    assert_eq!(phases_json.len(), 1);
    assert_eq!(
        phases_json[0].field("name").unwrap().as_str().unwrap(),
        "campaign"
    );
    assert_eq!(
        phases_json[0].field("seconds").unwrap().as_f64().unwrap(),
        0.25
    );

    // Every key the CI smoke job checks for must exist even when its
    // counter never fired (zero-filled).
    let counters = doc.field("counters").expect("counters object");
    for key in REQUIRED_COUNTERS {
        counters
            .get(key)
            .unwrap_or_else(|| panic!("required counter `{key}` missing"))
            .as_u64()
            .unwrap_or_else(|_| panic!("counter `{key}` must be an integer"));
    }
    // The campaign really ran under telemetry, so the transient
    // counters are non-zero, not just present.
    assert!(counters.get("spice.tran.runs").unwrap().as_u64().unwrap() > 0);
    assert!(
        counters
            .get("spice.newton.iterations")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // The batching trajectory entry round-trips through the report.
    let batch_json = doc.field("batch").expect("batch object");
    assert_eq!(batch_json.field("width").unwrap().as_u64().unwrap(), 4);
    assert_eq!(batch_json.field("speedup").unwrap().as_f64().unwrap(), 2.5);
    assert!(batch_json
        .field("verdicts_agree")
        .unwrap()
        .as_bool()
        .unwrap());

    // The diagnosis entry round-trips through the report.
    let diag_json = doc.field("diagnosis").expect("diagnosis object");
    for (key, want) in [
        ("entries", 4u64),
        ("classes", 3),
        ("queries", 4),
        ("top1", 4),
        ("top3", 4),
    ] {
        assert_eq!(
            diag_json.field(key).unwrap().as_u64().unwrap(),
            want,
            "diagnosis key `{key}`"
        );
    }

    let campaign_json = doc.field("campaign").expect("campaign object");
    assert_eq!(
        campaign_json.field("faults").unwrap().as_u64().unwrap(),
        faults.len() as u64
    );
    for key in [
        "coverage_percent",
        "wall_seconds",
        "pattern_builds",
        "batches",
        "batched_faults",
        "lane_compactions",
        "lane_refills",
        "ejections",
        "sim_seconds_distribution",
        "newton_iterations_distribution",
    ] {
        assert!(
            campaign_json.get(key).is_some(),
            "campaign report key `{key}` missing"
        );
    }
}

#[test]
fn report_without_campaign_has_null_campaign() {
    let text = render_report("empty", 0.0, &[], None, None, None);
    let doc = parse_json(&text).expect("report is valid JSON");
    assert_eq!(
        doc.field("schema").unwrap().as_str().unwrap(),
        REPORT_SCHEMA
    );
    // `campaign`, `batch` and `diagnosis` are present-but-null so
    // consumers can distinguish "didn't run" from a truncated document.
    assert!(doc.get("campaign").is_some());
    assert!(doc.get("campaign").unwrap().as_f64().is_err());
    assert!(doc.get("batch").is_some());
    assert!(doc.get("diagnosis").is_some());
}
