//! LIFT-side benchmarks: circuit extraction and fault extraction from
//! the VCO layout — the preprocessing cost the paper's flow pays once
//! per design.

use criterion::{criterion_group, criterion_main, Criterion};
use extract::ExtractOptions;
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let (flat, tech) = vco::vco_layout();
    let mut group = c.benchmark_group("lift");
    group.sample_size(20);
    group.bench_function("circuit_extraction", |b| {
        b.iter(|| {
            extract::extract(black_box(&flat), &tech, &ExtractOptions::default()).expect("extracts")
        })
    });
    let netlist = extract::extract(&flat, &tech, &ExtractOptions::default()).expect("extracts");
    group.bench_function("fault_extraction_glrfm", |b| {
        b.iter(|| lift::extract_faults(black_box(&netlist), &tech, &bench::paper_lift_options()))
    });
    group.bench_function("layout_generation", |b| b.iter(vco::vco_layout));
    group.bench_function("gds_write_read", |b| {
        let (lib, _) = vco::vco_library();
        b.iter(|| {
            let bytes = layout::gds::write_library(black_box(&lib)).expect("writes");
            layout::gds::read_library(&bytes).expect("reads")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
