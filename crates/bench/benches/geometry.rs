//! Geometry substrate benchmarks: the boolean and critical-area
//! primitives LIFT leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use defect::SizeDistribution;
use geom::{Rect, Region};
use std::hint::black_box;

fn bench_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry");
    // A comb of 200 wires — a dense-layer workload.
    let comb: Vec<Rect> = (0..200)
        .map(|i| Rect::from_wh(0, i * 3_000, 300_000, 1_500))
        .collect();
    group.bench_function("region_union_200_wires", |b| {
        b.iter(|| Region::from_rects(black_box(&comb).iter().copied()))
    });
    let region = Region::from_rects(comb.iter().copied());
    let other = Region::from_rects((0..200).map(|i| Rect::from_wh(i * 1_500, 0, 1_000, 600_000)));
    group.bench_function("region_intersection", |b| {
        b.iter(|| black_box(&region).intersection(black_box(&other)))
    });
    let dist = SizeDistribution::default_1um();
    group.bench_function("weighted_bridge_area_closed_form", |b| {
        b.iter(|| defect::weighted_bridge_area(black_box(30_000.0), 1_500.0, &dist))
    });
    let a = Region::from_rects([Rect::new(0, 0, 30_000, 1_500)]);
    let bb = Region::from_rects([Rect::new(0, 3_000, 30_000, 4_500)]);
    group.bench_function("weighted_bridge_area_exact_64pt", |b| {
        b.iter(|| defect::critical::weighted_bridge_area_exact(black_box(&a), &bb, &dist, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_geometry);
criterion_main!(benches);
