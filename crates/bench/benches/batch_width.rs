//! Batch-width sweep on the Fig. 5 campaign: the same trimmed fault
//! list through the lockstep batched scheduler at k = 1, 2, 4, 8, 16
//! lanes, plus the per-fault scalar path as the baseline. The sweep
//! shows where lane-compaction gains saturate against SoA overhead —
//! the batching trajectory the `--metrics` reports track over PRs.

use anafault::BatchMode;
use bench::fig5_campaign_batched;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Faults per sweep point: enough to fill every width under test
/// (16 lanes) while keeping a criterion iteration in seconds.
const FAULT_BUDGET: usize = 24;

fn bench_batch_width(c: &mut Criterion) {
    let model = anafault::HardFaultModel::Source;
    let mut group = c.benchmark_group("batch_width");
    group.sample_size(10);
    group.bench_function("scalar", |b| {
        b.iter(|| fig5_campaign_batched(black_box(model), BatchMode::Off, Some(FAULT_BUDGET)).0)
    });
    for k in [1usize, 2, 4, 8, 16] {
        let name = format!("k{k}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                fig5_campaign_batched(black_box(model), BatchMode::Width(k), Some(FAULT_BUDGET)).0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_width);
criterion_main!(benches);
