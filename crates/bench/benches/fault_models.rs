//! The RT-RATIO performance experiment as a Criterion benchmark: one
//! fault simulation under each hard-fault model. The paper's finding —
//! the source model costs more (43 % over the whole campaign) because
//! every injected short adds an MNA branch row — should reproduce as
//! `short_source ≥ short_resistor`.

use anafault::{inject, Fault, FaultEffect, HardFaultModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let (_, tb) = bench::vco_system();
    let fault = Fault::new(
        1,
        "BRI 6->0",
        FaultEffect::Short {
            a: "6".into(),
            b: "0".into(),
        },
    );
    let spec = bench::paper_tran();
    let mut group = c.benchmark_group("fault_models");
    group.sample_size(10);
    group.bench_function("short_resistor_model", |b| {
        let faulty = inject(&tb, &fault, HardFaultModel::paper_resistor()).expect("injects");
        b.iter(|| spice::tran::tran(black_box(&faulty), &spec).expect("simulates"))
    });
    group.bench_function("short_source_model", |b| {
        let faulty = inject(&tb, &fault, HardFaultModel::Source).expect("injects");
        b.iter(|| spice::tran::tran(black_box(&faulty), &spec).expect("simulates"))
    });
    group.bench_function("injection_only", |b| {
        b.iter(|| {
            inject(black_box(&tb), &fault, HardFaultModel::paper_resistor()).expect("injects")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
