//! Kernel simulator benchmarks: the nominal VCO transient (the unit of
//! work every fault simulation repeats) and the integrator ablation
//! (backward Euler vs trapezoidal) called out in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, Criterion};
use spice::tran::{tran, TranSpec};
use std::hint::black_box;
use vco::{vco_testbench, TestbenchParams};

fn bench_nominal_transient(c: &mut Criterion) {
    let ckt = vco_testbench(&TestbenchParams::default());
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_function("vco_tran_400steps_be", |b| {
        let spec = TranSpec::new(10e-9, 4e-6).with_uic();
        b.iter(|| tran(black_box(&ckt), &spec).expect("converges"))
    });
    group.bench_function("vco_tran_400steps_trap", |b| {
        let spec = TranSpec::new(10e-9, 4e-6).with_uic().with_trapezoidal();
        b.iter(|| tran(black_box(&ckt), &spec).expect("converges"))
    });
    group.bench_function("vco_dcop", |b| {
        // Operating point with settled supply (DC sources).
        let mut dc = vco::vco_schematic();
        let vdd = dc.node("vdd");
        let vin = dc.node("1");
        dc.add(
            "VDD",
            vec![vdd, spice::Circuit::GROUND],
            spice::ElementKind::Vsource {
                wave: spice::Waveform::Dc(5.0),
            },
        );
        dc.add(
            "VIN",
            vec![vin, spice::Circuit::GROUND],
            spice::ElementKind::Vsource {
                wave: spice::Waveform::Dc(2.2),
            },
        );
        b.iter(|| spice::dcop::dc_operating_point(black_box(&dc)).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_nominal_transient);
criterion_main!(benches);
