//! Kernel simulator benchmarks: the nominal VCO transient (the unit of
//! work every fault simulation repeats) and the integrator ablation
//! (backward Euler vs trapezoidal) called out in DESIGN.md §7 — now
//! also the dense-vs-sparse solver comparison: the same 400-step
//! transient through the seed dense LU and through the pattern-reusing
//! sparse engine, with the measured speedup printed as part of the
//! bench output.

use criterion::{criterion_group, criterion_main, Criterion};
use spice::tran::{tran, TranSpec};
use spice::SolverKind;
use std::hint::black_box;
use std::time::Instant;
use vco::{vco_testbench, TestbenchParams};

fn paper_spec(kind: SolverKind) -> TranSpec {
    TranSpec::new(10e-9, 4e-6).with_uic().with_solver(kind)
}

fn bench_nominal_transient(c: &mut Criterion) {
    let ckt = vco_testbench(&TestbenchParams::default());
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_function("vco_tran_400steps_be_dense", |b| {
        let spec = paper_spec(SolverKind::Dense);
        b.iter(|| tran(black_box(&ckt), &spec).expect("converges"))
    });
    group.bench_function("vco_tran_400steps_be_sparse", |b| {
        let spec = paper_spec(SolverKind::Sparse);
        b.iter(|| tran(black_box(&ckt), &spec).expect("converges"))
    });
    group.bench_function("vco_tran_400steps_trap", |b| {
        let spec = TranSpec::new(10e-9, 4e-6).with_uic().with_trapezoidal();
        b.iter(|| tran(black_box(&ckt), &spec).expect("converges"))
    });
    // Operating point with settled supply (DC sources).
    let dc = vco::vco_dc_testbench(&TestbenchParams::default());
    group.bench_function("vco_dcop_dense", |b| {
        b.iter(|| {
            spice::dcop::dc_operating_point_with(black_box(&dc), SolverKind::Dense, None)
                .expect("solves")
        })
    });
    group.bench_function("vco_dcop_sparse", |b| {
        b.iter(|| {
            spice::dcop::dc_operating_point_with(black_box(&dc), SolverKind::Sparse, None)
                .expect("solves")
        })
    });
    group.finish();

    // Headline number for the ROADMAP acceptance: dense-vs-sparse
    // wall-clock on the full VCO transient, measured back to back.
    let time = |kind: SolverKind| {
        let spec = paper_spec(kind);
        tran(&ckt, &spec).expect("warm-up converges");
        let reps = 10u32;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(tran(&ckt, &spec).expect("converges"));
        }
        t0.elapsed() / reps
    };
    let dense = time(SolverKind::Dense);
    let sparse = time(SolverKind::Sparse);
    println!(
        "kernel/vco_tran_400steps dense {dense:?} vs sparse {sparse:?}: {:.2}x speedup",
        dense.as_secs_f64() / sparse.as_secs_f64()
    );
}

criterion_group!(benches, bench_nominal_transient);
criterion_main!(benches);
