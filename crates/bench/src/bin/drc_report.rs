//! DRC report for the generated VCO layout. The remaining violation
//! classes are by construction (see DESIGN.md): doubled contact/via
//! pairs sit tighter than the standard cut spacing (redundant-via
//! practice), and the conservative width check flags rectangle
//! decomposition slivers at wire joints.

use bench::Metrics;
use std::collections::BTreeMap;

fn main() {
    let mut metrics = Metrics::from_args("drc_report");
    metrics.phase("drc");
    let (flat, tech) = vco::vco_layout();
    let violations = layout::drc_check(&flat, &tech);
    println!("VCO layout DRC: {} findings\n", violations.len());
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    for v in &violations {
        *by_class
            .entry(format!("{} {:?}", v.layer, v.rule))
            .or_insert(0) += 1;
    }
    println!("{:<28} {:>6}", "class", "count");
    println!("{}", "-".repeat(36));
    for (class, n) in by_class {
        println!("{class:<28} {n:>6}");
    }
    println!("\nknown-benign classes: doubled-cut pairs (cont/via spacing),");
    println!("decomposition slivers (poly min-width at riser joints), and");
    println!("same-net pad-to-track gaps in the routing channel.");
    metrics.finish();
}
