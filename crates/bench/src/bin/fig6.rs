//! FIG6 — regenerates the bridging-resistor sweep: the resistor
//! shorting the Schmitt trigger transistor M11's drain to ground takes
//! values 1 kΩ (barely visible), 41 Ω, 21 Ω and 1 Ω (oscillation stops
//! after one cycle).

use bench::{ascii_wave, fig6_sweep, Metrics};

fn main() {
    let mut metrics = Metrics::from_args("fig6");
    metrics.phase("sweep");
    let sweep = fig6_sweep(&[1000.0, 41.0, 21.0, 1.0]);
    println!("Fig. 6 — effect of the bridge resistor value, M11 drain -> GND");
    println!("         (V(11) over 4 µs)\n");
    for (r, wave) in &sweep {
        println!(
            "R = {:>6.0} Ω   f = {:?} Hz, Vpp = {:.2} V",
            r,
            wave.frequency().map(|f| f.round()),
            wave.amplitude()
        );
        print!("{}", ascii_wave(wave, 100, 8, -1.0, 5.5));
        println!();
    }
    println!("paper's observation: 1 kΩ leaves the waveform almost nominal;");
    println!("decreasing R degrades the oscillation until it stops (R = 1 Ω),");
    println!("i.e. the optimal modelling resistance depends on the location.");
    metrics.finish();
}
