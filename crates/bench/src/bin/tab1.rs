//! TAB1 — regenerates Tab. 1: likely physical failure modes and their
//! relative defect densities.

use bench::Metrics;
use defect::{FailureClass, MechanismTable};

fn main() {
    let mut metrics = Metrics::from_args("tab1");
    metrics.phase("table");
    let table = MechanismTable::paper_defaults();
    println!("Tab. 1 — Likely physical failure modes in a digital CMOS process");
    println!("         and typical relative failure densities\n");
    println!(
        "{:<22} {:<8} {:>10} {:>16}",
        "layer(s)", "failure", "relative", "absolute [/nm²]"
    );
    println!("{}", "-".repeat(60));
    for (m, d) in table.entries() {
        let class = match m.class() {
            FailureClass::Open => "open",
            FailureClass::Short => "short",
        };
        println!(
            "{:<22} {:<8} {:>10} {:>16.2e}",
            m.id(),
            class,
            d,
            table.absolute_density(*m)
        );
    }
    println!("{}", "-".repeat(60));
    println!("normalisation: metal-1 short density = 1 defect/cm² (paper §IV)");
    println!("\n(paper values reproduced verbatim — this table is the input");
    println!(" to every probability LIFT computes)");
    metrics.finish();
}
