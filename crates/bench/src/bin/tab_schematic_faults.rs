//! SCH-FLT — regenerates the §VI schematic fault counts: 78 single
//! opens on the transistors + 1 capacitor open, and 73 shorts (six
//! gate-drain pairs are designed shorts).

use bench::Metrics;
use lift::schematic::schematic_faults;
use vco::vco_schematic;

fn main() {
    let mut metrics = Metrics::from_args("tab_schematic_faults");
    metrics.phase("faults");
    let ckt = vco_schematic();
    let n_mos = vco::schematic::transistor_count(&ckt);
    let n_diode = vco::schematic::diode_connected_count(&ckt);
    let faults = schematic_faults(&ckt);

    let mos_opens = faults
        .opens
        .iter()
        .filter(|f| f.label.contains('M'))
        .count();
    let cap_opens = faults.opens.len() - mos_opens;

    println!("Schematic-complete fault list of the VCO (paper §VI)\n");
    println!("{:<42} {:>8} {:>8}", "", "paper", "measured");
    println!("{}", "-".repeat(62));
    println!("{:<42} {:>8} {:>8}", "transistors", 26, n_mos);
    println!(
        "{:<42} {:>8} {:>8}",
        "designed gate-drain shorts", 6, n_diode
    );
    println!(
        "{:<42} {:>8} {:>8}",
        "single opens on transistors", 78, mos_opens
    );
    println!("{:<42} {:>8} {:>8}", "opens on the capacitor", 1, cap_opens);
    println!(
        "{:<42} {:>8} {:>8}",
        "shorts (incl. capacitor)",
        73,
        faults.shorts.len()
    );
    println!(
        "{:<42} {:>8} {:>8}",
        "complete fault list",
        78 + 1 + 73,
        faults.total()
    );
    metrics.finish();
}
