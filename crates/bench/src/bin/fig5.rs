//! FIG5 — regenerates the fault-coverage plot: coverage vs % of test
//! time with 2 V amplitude and 0.2 µs time tolerance. Paper: coverage
//! almost 100 % after 25 % of test time, all faults detected by ~55 %.
//! By default the campaign runs once per linear-solver backend and the
//! dense-vs-sparse comparison is recorded alongside the report (the
//! sparse run doubles as the report's data); `--skip-solver-compare`
//! runs the campaign a single time instead.

use anafault::report::{coverage_plot, protocol_table};
use anafault::HardFaultModel;
use bench::{fig5_campaign_limited, fig5_curve, fig5_solver_comparison, Metrics};

/// Parses `--max-faults <n>` from the process arguments.
fn max_faults_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--max-faults" {
            let n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--max-faults requires a positive integer");
                std::process::exit(2);
            });
            return Some(n);
        }
    }
    None
}

fn main() {
    let mut metrics = Metrics::from_args("fig5");
    let skip_compare = std::env::args().any(|a| a == "--skip-solver-compare");
    let max_faults = max_faults_arg();
    // `--json` emits the machine-readable protocol document instead of
    // the hand-formatted report (pipe into a file or a service).
    if std::env::args().any(|a| a == "--json") {
        metrics.phase("campaign");
        let (result, _) = fig5_campaign_limited(HardFaultModel::Source, max_faults);
        print!("{}", anafault::protocol::to_json(&result));
        metrics.attach_campaign(result.report());
        metrics.finish();
        return;
    }
    let (comparison, result) = if skip_compare {
        metrics.phase("campaign");
        let (result, _) = fig5_campaign_limited(HardFaultModel::Source, max_faults);
        (None, result)
    } else {
        metrics.phase("solver-comparison");
        let (cmp, sparse_result) = fig5_solver_comparison(HardFaultModel::Source);
        (Some(cmp), sparse_result)
    };
    metrics.attach_campaign(result.report());
    metrics.phase("render");
    let curve = fig5_curve(&result);
    println!("Fig. 5 — fault coverage plot (source model, 2 V / 0.2 µs tolerance)\n");
    print!("{}", coverage_plot(&curve, 80, 16));

    // Key milestones.
    let cov_at = |pct: f64| {
        curve
            .iter()
            .find(|(t, _)| *t >= pct / 100.0 * 4e-6)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    };
    let detections: Vec<f64> = result.detections().into_iter().flatten().collect();
    let last_detection = detections.iter().copied().fold(0.0, f64::max);
    println!("\n{:<46} {:>8} {:>9}", "", "paper", "measured");
    println!("{}", "-".repeat(66));
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "coverage at 25% of test time",
        "~100%",
        cov_at(25.0)
    );
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "all detected faults found by (% test time)",
        "55%",
        100.0 * last_detection / 4e-6
    );
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "final fault coverage",
        "100%",
        result.final_coverage()
    );
    println!("\nprotocol (first 15 rows):");
    let table = protocol_table(&result);
    for line in table.lines().take(18) {
        println!("{line}");
    }

    if let Some(cmp) = comparison {
        println!(
            "\nsolver comparison (full campaign, {} faults):",
            cmp.n_faults
        );
        println!(
            "  dense LU      {:>8.2} s   ({} Newton iterations)",
            cmp.dense_seconds, cmp.dense_work
        );
        println!(
            "  sparse engine {:>8.2} s   ({} Newton iterations)",
            cmp.sparse_seconds, cmp.sparse_work
        );
        println!("  speedup       {:>8.2} x  (wall-clock)", cmp.speedup());
        println!(
            "  speedup       {:>8.2} x  (per unit of kernel work)",
            cmp.work_normalised_speedup()
        );
        if cmp.verdicts_agree() {
            println!("  verdicts      identical on every fault");
        } else {
            println!("  verdicts      DISAGREE on faults {:?}", cmp.disagreements);
        }
    }
    metrics.finish();
}
