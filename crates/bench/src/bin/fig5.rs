//! FIG5 — regenerates the fault-coverage plot: coverage vs % of test
//! time with 2 V amplitude and 0.2 µs time tolerance. Paper: coverage
//! almost 100 % after 25 % of test time, all faults detected by ~55 %.
//! By default the campaign runs once per linear-solver backend and the
//! dense-vs-sparse comparison is recorded alongside the report (the
//! sparse run doubles as the report's data); `--skip-solver-compare`
//! runs the campaign a single time instead.
//!
//! Batched scheduling (`spice::batch`) is on by default: `--batch <k>`
//! pins the lane width, `--batch auto` picks the default, and
//! `--batch off` restores the per-fault scalar path. When both the
//! solver comparison and batching run, the batched campaign is timed
//! against the scalar sparse run and the speedup lands in the
//! `--metrics` report's `batch` entry.

use anafault::report::{coverage_plot, protocol_table};
use anafault::{protocol, BatchMode, HardFaultModel};
use bench::{
    batch_width_of, compare_batch, fig5_campaign_batched, fig5_campaign_signed, fig5_campaign_spec,
    fig5_curve, fig5_solver_comparison, self_diagnose, ArgSpec, BatchSummary, Metrics,
};

const ARGS: ArgSpec = ArgSpec {
    bench: "fig5",
    usage: "\
usage: fig5 [flags]

  --json                 print the machine-readable protocol document
  --emit-spec            print the campaign as an anafault-serve spec and exit
  --signatures           record diagnosis signatures in --emit-spec output
  --diagnose             run with signatures, build the fault dictionary and
                         self-diagnose every detected fault
  --skip-solver-compare  run the campaign once (no dense-vs-sparse pass)
  --batch K|auto|off     lane width for the batched scheduler (default auto)
  --max-faults N         trim the fault list to the first N faults
  --client NAME          client tag stamped into --emit-spec output
  --metrics FILE         write the bench-report/1 run report to FILE
  --help                 print this help
",
    value_flags: &["--metrics", "--max-faults", "--batch", "--client"],
    bool_flags: &[
        "--json",
        "--emit-spec",
        "--signatures",
        "--diagnose",
        "--skip-solver-compare",
    ],
};

fn main() {
    let args = ARGS.parse_or_exit();
    let mut metrics = Metrics::with_path("fig5", args.value("--metrics").map(String::from));
    let skip_compare = args.flag("--skip-solver-compare");
    let max_faults: Option<usize> = match args.parsed("--max-faults") {
        Ok(n @ Some(1..)) | Ok(n @ None) => n,
        _ => ARGS.fail("--max-faults requires a positive integer"),
    };
    let batch = match args.value("--batch") {
        None | Some("auto") => BatchMode::Auto,
        Some("off") => BatchMode::Off,
        Some(v) => match v.parse::<usize>() {
            Ok(k) if k >= 1 => BatchMode::Width(k),
            _ => ARGS.fail("--batch requires a positive lane width, `auto` or `off`"),
        },
    };
    // `--emit-spec` prints the campaign as a serve-submittable spec
    // document — the producer side of the anafault-serve smoke flow.
    if args.flag("--emit-spec") {
        let spec = fig5_campaign_spec(
            HardFaultModel::Source,
            max_faults,
            args.value("--client").map(String::from),
            args.flag("--signatures"),
        );
        print!("{}", spec.to_json());
        return;
    }
    // `--diagnose` runs the signature-recording campaign, builds the
    // fault dictionary, checks it round-trips bitwise through the
    // protocol, then feeds every detected fault's own synthesized probe
    // back through the diagnoser. A probe reconstructs its stored
    // trajectory to round-off, so the true ambiguity class must rank
    // first for every query — anything less is a failure (exit 1).
    if args.flag("--diagnose") {
        metrics.phase("campaign");
        let (result, _) = fig5_campaign_signed(HardFaultModel::Source, max_faults);
        metrics.phase("dictionary");
        let dict = anafault::build_dictionary(&result)
            .expect("signature-recording campaign seeds a dictionary");
        let text = protocol::dictionary_to_json(&dict);
        let reloaded = protocol::dictionary_from_json(&text).expect("dictionary document parses");
        assert_eq!(
            protocol::dictionary_to_json(&reloaded),
            text,
            "dictionary must survive serialize/reload bitwise"
        );
        metrics.phase("diagnose");
        let summary = self_diagnose(&dict, &result);
        println!("Fig. 5 campaign — fault-dictionary self-diagnosis (source model)\n");
        println!("  faults simulated      {:>6}", result.records.len());
        println!("  dictionary entries    {:>6}", summary.entries);
        println!("  ambiguity classes     {:>6}", summary.classes);
        println!("  detected faults probed{:>6}", summary.queries);
        println!(
            "  top-1 accuracy        {:>6} / {} ({:.1}%)",
            summary.top1,
            summary.queries,
            100.0 * summary.top1 as f64 / summary.queries.max(1) as f64
        );
        println!(
            "  top-3 accuracy        {:>6} / {} ({:.1}%)",
            summary.top3,
            summary.queries,
            100.0 * summary.top3 as f64 / summary.queries.max(1) as f64
        );
        let ok = summary.top1 == summary.queries && summary.queries > 0;
        metrics.attach_campaign(result.report());
        metrics.attach_diagnosis(summary);
        metrics.finish();
        if !ok {
            eprintln!("self-diagnosis missed: every detected fault must rank top-1");
            std::process::exit(1);
        }
        return;
    }
    // `--json` emits the machine-readable protocol document instead of
    // the hand-formatted report (pipe into a file or a service).
    if args.flag("--json") {
        metrics.phase("campaign");
        let (result, _) = fig5_campaign_batched(HardFaultModel::Source, batch, max_faults);
        print!("{}", anafault::protocol::to_json(&result));
        metrics.attach_campaign(result.report());
        metrics.finish();
        return;
    }
    let mut batch_summary: Option<BatchSummary> = None;
    let (comparison, result) = if skip_compare {
        metrics.phase("campaign");
        let (result, _) = fig5_campaign_batched(HardFaultModel::Source, batch, max_faults);
        if batch != BatchMode::Off {
            batch_summary = Some(BatchSummary {
                width: batch_width_of(batch),
                speedup: None,
                verdicts_agree: None,
            });
        }
        (None, result)
    } else {
        metrics.phase("solver-comparison");
        let (cmp, sparse_result) = fig5_solver_comparison(HardFaultModel::Source);
        if batch != BatchMode::Off {
            // Time the batched scheduler against the scalar sparse run
            // it is meant to replace (both over the full fault list,
            // like the solver comparison).
            metrics.phase("batch-comparison");
            let (batched, _) = fig5_campaign_batched(HardFaultModel::Source, batch, None);
            let bc = compare_batch(&sparse_result, &batched, batch_width_of(batch));
            println!(
                "batch comparison ({} faults, width {}):",
                bc.n_faults, bc.width
            );
            println!(
                "  scalar        {:>8.2} s   ({} Newton iterations)",
                bc.scalar_seconds, bc.scalar_work
            );
            println!(
                "  batched       {:>8.2} s   ({} Newton iterations)",
                bc.batched_seconds, bc.batched_work
            );
            println!("  speedup       {:>8.2} x  (wall-clock)", bc.speedup());
            if bc.verdicts_agree() {
                println!("  verdicts      identical on every fault\n");
            } else {
                println!(
                    "  verdicts      DISAGREE on faults {:?}\n",
                    bc.disagreements
                );
            }
            batch_summary = Some(BatchSummary {
                width: bc.width,
                speedup: Some(bc.speedup()),
                verdicts_agree: Some(bc.verdicts_agree()),
            });
        }
        (Some(cmp), sparse_result)
    };
    metrics.attach_campaign(result.report());
    if let Some(b) = batch_summary {
        metrics.attach_batch(b);
    }
    metrics.phase("render");
    let curve = fig5_curve(&result);
    println!("Fig. 5 — fault coverage plot (source model, 2 V / 0.2 µs tolerance)\n");
    print!("{}", coverage_plot(&curve, 80, 16));

    // Key milestones.
    let cov_at = |pct: f64| {
        curve
            .iter()
            .find(|(t, _)| *t >= pct / 100.0 * 4e-6)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    };
    let detections: Vec<f64> = result.detections().into_iter().flatten().collect();
    let last_detection = detections.iter().copied().fold(0.0, f64::max);
    println!("\n{:<46} {:>8} {:>9}", "", "paper", "measured");
    println!("{}", "-".repeat(66));
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "coverage at 25% of test time",
        "~100%",
        cov_at(25.0)
    );
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "all detected faults found by (% test time)",
        "55%",
        100.0 * last_detection / 4e-6
    );
    println!(
        "{:<46} {:>8} {:>8.1}%",
        "final fault coverage",
        "100%",
        result.final_coverage()
    );
    println!("\nprotocol (first 15 rows):");
    let table = protocol_table(&result);
    for line in table.lines().take(18) {
        println!("{line}");
    }

    if let Some(cmp) = comparison {
        println!(
            "\nsolver comparison (full campaign, {} faults):",
            cmp.n_faults
        );
        println!(
            "  dense LU      {:>8.2} s   ({} Newton iterations)",
            cmp.dense_seconds, cmp.dense_work
        );
        println!(
            "  sparse engine {:>8.2} s   ({} Newton iterations)",
            cmp.sparse_seconds, cmp.sparse_work
        );
        println!("  speedup       {:>8.2} x  (wall-clock)", cmp.speedup());
        println!(
            "  speedup       {:>8.2} x  (per unit of kernel work)",
            cmp.work_normalised_speedup()
        );
        if cmp.verdicts_agree() {
            println!("  verdicts      identical on every fault");
        } else {
            println!("  verdicts      DISAGREE on faults {:?}", cmp.disagreements);
        }
    }
    metrics.finish();
}
