//! RT-RATIO — regenerates the §VI runtime comparison: the source-model
//! campaign took 43 % longer than the resistor-model one (4383 s vs
//! 3068 s on the paper's workstation).

use bench::{runtime_comparison, Metrics};

fn main() {
    let mut metrics = Metrics::from_args("tab_runtime");
    metrics.phase("campaigns");
    println!("Fault-model runtime comparison (full campaign, both models)\n");
    let cmp = runtime_comparison();
    println!("{:<40} {:>10} {:>12}", "", "paper", "measured");
    println!("{}", "-".repeat(64));
    println!(
        "{:<40} {:>9}s {:>11.2}s",
        "resistor model fault-sim time", 3068, cmp.resistor_seconds
    );
    println!(
        "{:<40} {:>9}s {:>11.2}s",
        "source model fault-sim time", 4383, cmp.source_seconds
    );
    println!(
        "{:<40} {:>10} {:>12.2}",
        "source / resistor ratio",
        1.43,
        cmp.ratio()
    );
    println!(
        "{:<40} {:>10} {:>12}",
        "kernel work resistor (solves)", "-", cmp.resistor_work
    );
    println!(
        "{:<40} {:>10} {:>12}",
        "kernel work source (solves)", "-", cmp.source_work
    );
    println!(
        "{:<40} {:>10} {:>11.1}pp",
        "coverage difference between models", "~0", cmp.coverage_delta
    );
    println!("{}", "-".repeat(64));
    println!("\nreproduction note: the paper measured the source model 43 %");
    println!("slower on ELDO, whose sparse kernel pays per extra branch");
    println!("equation. In this dense-LU kernel the cost balance flips: the");
    println!("0.01 Ω short makes the Jacobian stiff and costs extra Newton");
    println!("iterations, while the ideal 0 V source is handled exactly —");
    println!("so the resistor model ends up the slower one here. What *does*");
    println!("reproduce is the paper's actionable conclusion: both models");
    println!("yield identical fault coverage (\"nearly identical plots\"),");
    println!("and the choice of resistor value is the delicate part (Fig. 6).");
    metrics.finish();
}
