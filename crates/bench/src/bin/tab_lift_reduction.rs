//! LIFT-RED — regenerates the §VI reduction result: LIFT extracted 70
//! failures (55 bridging, 8 line opens, 7 transistor stuck-opens), a
//! 53 % reduction against the schematic-complete list.

use bench::{lift_reduction, Metrics};

fn main() {
    let mut metrics = Metrics::from_args("tab_lift_reduction");
    metrics.phase("lift");
    let report = lift_reduction();
    let s = &report.lift.stats;
    println!("LIFT fault extraction on the VCO layout (paper §VI)\n");
    println!("{:<40} {:>8} {:>9}", "", "paper", "measured");
    println!("{}", "-".repeat(60));
    println!(
        "{:<40} {:>8} {:>9}",
        "schematic fault list",
        152,
        report.schematic_total()
    );
    println!(
        "{:<40} {:>8} {:>9}",
        "candidates enumerated by LIFT", "-", s.candidates
    );
    println!("{:<40} {:>8} {:>9}", "extracted failures", 70, s.total());
    println!("{:<40} {:>8} {:>9}", "  bridging", 55, s.bridges);
    println!("{:<40} {:>8} {:>9}", "  line opens", 8, s.line_opens);
    println!(
        "{:<40} {:>8} {:>9}",
        "  transistor stuck open", 7, s.stuck_opens
    );
    println!(
        "{:<40} {:>7.1}% {:>8.1}%",
        "reduction vs schematic list",
        53.9,
        report.reduction_percent()
    );
    println!("{}", "-".repeat(60));
    println!("\ntop 10 extracted faults by probability:");
    for f in report.lift.faults.iter().take(10) {
        println!(
            "  #{:<4} p = {:.2e}   {}",
            f.id, f.probability, f.fault.label
        );
    }
    println!("\nnote: the category split differs from the paper because our");
    println!("generated layout routes every gate through an individual poly");
    println!("riser (floating-gate opens dominate the open population),");
    println!("whereas the fabricated chip's abutment-style layout spreads");
    println!("opens across interconnect. Totals and reduction match.");
    metrics.finish();
}
