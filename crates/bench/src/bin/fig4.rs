//! FIG4 — regenerates the example waveforms of Fig. 4: fault-free
//! V(11), fault #6 (`BRI n_ds_short 5->6`, changes the oscillation
//! frequency) and fault #339-style (`BRI metal1_short 1->5`).

use bench::{ascii_wave, fig4_waveforms, Metrics};

fn main() {
    let mut metrics = Metrics::from_args("fig4");
    metrics.phase("waveforms");
    let fig = fig4_waveforms();
    println!("Fig. 4 — faults extracted by LIFT, simulated by AnaFAULT");
    println!("         (V(11) over the 4 µs / 400-step transient)\n");

    println!(
        "fault-free   (f = {:?} Hz, Vpp = {:.2} V)",
        fig.fault_free.frequency().map(|f| f.round()),
        fig.fault_free.amplitude()
    );
    print!("{}", ascii_wave(&fig.fault_free, 100, 10, -1.0, 5.5));

    let (label, wave) = &fig.f_ds;
    println!(
        "\n{label}   (f = {:?} Hz, Vpp = {:.2} V)",
        wave.frequency().map(|f| f.round()),
        wave.amplitude()
    );
    print!("{}", ascii_wave(wave, 100, 10, -1.0, 5.5));

    let (label, wave) = &fig.f_m1;
    println!(
        "\n{label}   (f = {:?} Hz, Vpp = {:.2} V)",
        wave.frequency().map(|f| f.round()),
        wave.amplitude()
    );
    print!("{}", ascii_wave(wave, 100, 10, -1.0, 5.5));

    println!("\npaper's observation: some short faults change the oscillation");
    println!("frequency (top fault), others force a constant output (bottom).");
    metrics.finish();
}
