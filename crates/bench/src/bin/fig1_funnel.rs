//! FIG1 — regenerates the fault-list funnel of Fig. 1: all faults →
//! L²RFM → GLRFM, arrow width ∝ list size.

use bench::{fault_funnel, Metrics};

fn main() {
    let mut metrics = Metrics::from_args("fig1_funnel");
    metrics.phase("funnel");
    let funnel = fault_funnel();
    println!("Fig. 1 — analogue fault simulation from concept and schematic");
    println!("         to layout (arrow width ∝ fault-list size)\n");
    print!("{}", funnel.render(50));
    metrics.finish();
}
