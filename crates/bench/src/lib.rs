//! # bench — the experiment harness
//!
//! One function per table/figure of the paper (see DESIGN.md §4). Each
//! `src/bin/*` binary calls one of these and prints the regenerated
//! artefact next to the paper's reference values; the Criterion benches
//! measure the performance dimensions (fault-model runtime ratio,
//! kernel/extraction throughput).

pub mod args;
pub mod metrics;

pub use args::{ArgSpec, Args};
pub use metrics::{
    render_report, BatchSummary, DiagnosisSummary, Metrics, REPORT_SCHEMA, REQUIRED_COUNTERS,
};

use anafault::{
    BatchMode, Campaign, CampaignResult, DetectionSpec, Fault, FaultEffect, FaultOutcome,
    HardFaultModel, DEFAULT_BATCH_WIDTH,
};
use cat_core::{CatSystem, FaultFunnel};
use defect::SizeDistribution;
use diagnose::{Diagnoser, FaultDictionary};
use extract::ExtractOptions;
use lift::schematic::schematic_faults;
use lift::{LiftOptions, LiftResult};
use spice::tran::TranSpec;
use spice::{Circuit, SolverKind, Wave};
use vco::{attach_sources, TestbenchParams, OBSERVED_NODE};

/// The LIFT configuration used for all paper experiments: Tab. 1
/// densities, x₀ = 1 µm / x_max = 10 µm defect sizes, p_min = 3·10⁻⁸.
/// These reproduce the paper's headline reduction (70 faults, 53 %)
/// on our generated layout.
pub fn paper_lift_options() -> LiftOptions {
    LiftOptions {
        ports: vec!["vdd".into(), "0".into(), "1".into(), "11".into()],
        size_dist: SizeDistribution::new(1_000, 10_000),
        p_min: 3e-8,
        ..LiftOptions::default()
    }
}

/// The paper's transient: 400 steps over 4 µs, starting at supply
/// activation (UIC).
pub fn paper_tran() -> TranSpec {
    TranSpec::new(10e-9, 4e-6).with_uic()
}

/// [`paper_tran`] pinned to a specific linear-solver backend (used by
/// the dense-vs-sparse comparisons).
pub fn paper_tran_with_solver(kind: SolverKind) -> TranSpec {
    paper_tran().with_solver(kind)
}

/// Builds the full CAT system for the VCO plus the testbench circuit.
pub fn vco_system() -> (CatSystem, Circuit) {
    let (flat, tech) = vco::vco_layout();
    let sys = CatSystem::from_layout(
        &flat,
        &tech,
        &ExtractOptions::default(),
        &paper_lift_options(),
    )
    .expect("VCO layout extracts cleanly");
    let mut tb = sys.circuit.clone();
    attach_sources(&mut tb, &TestbenchParams::default());
    (sys, tb)
}

/// A campaign with the paper's settings over the given testbench.
/// Early stop stays off so fault-model runtime comparisons measure the
/// full transient, as the paper's protocol files did.
pub fn paper_campaign(testbench: Circuit, model: HardFaultModel) -> Campaign {
    Campaign::builder()
        .testbench(testbench)
        .tran(paper_tran())
        .observe(OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(model)
        .build()
        .expect("paper campaign settings are complete")
}

// ---------------------------------------------------------------------
// SCH-FLT + LIFT-RED: the §VI fault-count tables
// ---------------------------------------------------------------------

/// The §VI reduction experiment: schematic-complete counts versus
/// LIFT's extracted list.
#[derive(Debug, Clone)]
pub struct ReductionReport {
    /// Schematic single opens (paper: 78 + 1 capacitor = 79).
    pub schematic_opens: usize,
    /// Schematic shorts (paper: 73 including the capacitor).
    pub schematic_shorts: usize,
    /// Designed gate-drain shorts skipped (paper: 6).
    pub designed_shorts: usize,
    /// LIFT result.
    pub lift: LiftResult,
}

impl ReductionReport {
    /// Total schematic faults.
    pub fn schematic_total(&self) -> usize {
        self.schematic_opens + self.schematic_shorts
    }

    /// The headline reduction percentage (paper: 53 %).
    pub fn reduction_percent(&self) -> f64 {
        self.lift.reduction_vs(self.schematic_total())
    }
}

/// Runs the reduction experiment.
pub fn lift_reduction() -> ReductionReport {
    let (sys, _) = vco_system();
    let sch = schematic_faults(&vco::vco_schematic());
    ReductionReport {
        schematic_opens: sch.opens.len(),
        schematic_shorts: sch.shorts.len(),
        designed_shorts: sch.skipped_designed_shorts,
        lift: sys.lift,
    }
}

/// The Fig. 1 funnel: all faults → L²RFM → GLRFM.
pub fn fault_funnel() -> FaultFunnel {
    let tech = layout::Technology::generic_1um();
    let sch = schematic_faults(&vco::vco_schematic());
    let all = sch.all();
    let patterns = cat_core::l2rfm::characterise_mos(&tech);
    let l2 = cat_core::l2rfm::apply_patterns(&all, &patterns);
    let (sys, _) = vco_system();
    FaultFunnel::new(all.len(), l2.len(), sys.lift.stats.total())
}

// ---------------------------------------------------------------------
// FIG4: example fault waveforms
// ---------------------------------------------------------------------

/// The Fig. 4 regeneration: fault-free output plus the two example
/// bridging faults.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Fault-free V(11).
    pub fault_free: Wave,
    /// `BRI n_ds_short 5->6` label and waveform.
    pub f_ds: (String, Wave),
    /// `BRI metal1_short 1->5` label and waveform.
    pub f_m1: (String, Wave),
}

/// Simulates the Fig. 4 waveforms (resistor fault model, as in the
/// paper's main run).
pub fn fig4_waveforms() -> Fig4 {
    let (sys, tb) = vco_system();
    let nominal = spice::tran::tran(&tb, &paper_tran()).expect("nominal run");
    let fault_free = nominal.wave(OBSERVED_NODE).expect("observed node");

    let find = |needle: &str| -> Fault {
        sys.lift
            .faults
            .iter()
            .map(|f| &f.fault)
            .find(|f| f.label.contains(needle))
            .unwrap_or_else(|| panic!("fault `{needle}` not in the LIFT list"))
            .clone()
    };
    let run = |fault: &Fault| -> Wave {
        let faulty =
            anafault::inject(&tb, fault, HardFaultModel::paper_resistor()).expect("injectable");
        spice::tran::tran(&faulty, &paper_tran())
            .expect("faulty run")
            .wave(OBSERVED_NODE)
            .expect("observed node")
    };
    let f_ds = find("n_ds_short 5->6");
    let f_m1 = find("metal1_short 1->5");
    Fig4 {
        fault_free,
        f_ds: (format!("#{} {}", f_ds.id, f_ds.label), run(&f_ds)),
        f_m1: (format!("#{} {}", f_m1.id, f_m1.label), run(&f_m1)),
    }
}

// ---------------------------------------------------------------------
// FIG5: fault coverage vs time
// ---------------------------------------------------------------------

/// The Fig. 5 coverage curve, sampled each 1 % of test time.
pub fn fig5_curve(result: &CampaignResult) -> Vec<(f64, f64)> {
    let samples: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0 * 4e-6).collect();
    result.coverage_curve(&samples)
}

/// Runs the full fault-simulation campaign and returns the result plus
/// the coverage curve sampled each 1 % of test time.
pub fn fig5_campaign(model: HardFaultModel) -> (CampaignResult, Vec<(f64, f64)>) {
    fig5_campaign_limited(model, None)
}

/// [`fig5_campaign`] with an optional fault budget — the CI smoke job
/// runs a trimmed list (`--max-faults`) so the report pipeline is
/// exercised in seconds rather than the full campaign's minutes.
pub fn fig5_campaign_limited(
    model: HardFaultModel,
    max_faults: Option<usize>,
) -> (CampaignResult, Vec<(f64, f64)>) {
    fig5_campaign_batched(model, BatchMode::Off, max_faults)
}

/// [`fig5_campaign_limited`] with a batch scheduling mode: anything but
/// [`BatchMode::Off`] runs same-topology faults in SIMD-friendly
/// lockstep lanes over one shared matrix structure (`spice::batch`),
/// with fault dropping implied.
pub fn fig5_campaign_batched(
    model: HardFaultModel,
    batch: BatchMode,
    max_faults: Option<usize>,
) -> (CampaignResult, Vec<(f64, f64)>) {
    let (sys, tb) = vco_system();
    let mut builder = Campaign::builder()
        .testbench(tb)
        .tran(paper_tran())
        .observe(OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(model)
        .batch(batch);
    if let Some(n) = max_faults {
        builder = builder.max_faults(n);
    }
    let result = builder
        .build()
        .expect("paper campaign settings are complete")
        .run(&sys.fault_list())
        .expect("nominal simulation succeeds");
    let curve = fig5_curve(&result);
    (result, curve)
}

/// [`fig5_campaign_limited`] with diagnosis signature recording on:
/// every successfully simulated fault's record carries its deviation
/// trajectory, so the result can seed a fault dictionary. Signature
/// recording needs the complete faulty waveform, so the campaign runs
/// scalar and full-length (batching and fault dropping are bypassed by
/// the builder).
pub fn fig5_campaign_signed(
    model: HardFaultModel,
    max_faults: Option<usize>,
) -> (CampaignResult, Vec<(f64, f64)>) {
    let (sys, tb) = vco_system();
    let mut builder = Campaign::builder()
        .testbench(tb)
        .tran(paper_tran())
        .observe(OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(model)
        .record_signatures(true);
    if let Some(n) = max_faults {
        builder = builder.max_faults(n);
    }
    let result = builder
        .build()
        .expect("paper campaign settings are complete")
        .run(&sys.fault_list())
        .expect("nominal simulation succeeds");
    let curve = fig5_curve(&result);
    (result, curve)
}

/// Probes every detected fault's own synthesized waveform back through
/// the dictionary and counts how often its true ambiguity class lands
/// at rank 1 (and within the first 3). On a self-consistent dictionary
/// the probe reconstructs the stored trajectory to round-off, so `top1`
/// must equal `queries` — the fig5 `--diagnose` acceptance check.
pub fn self_diagnose(dict: &FaultDictionary, result: &CampaignResult) -> DiagnosisSummary {
    let diagnoser = Diagnoser::new(dict);
    let mut queries = 0;
    let mut top1 = 0;
    let mut top3 = 0;
    for record in &result.records {
        if !matches!(record.outcome, FaultOutcome::Detected { .. }) {
            continue;
        }
        let Some(probe) = dict.probe_waves(record.fault.id) else {
            continue;
        };
        let candidates = diagnoser
            .rank(&probe)
            .expect("probe waves name observed nodes");
        queries += 1;
        let hit = |c: &diagnose::Candidate| c.fault_ids.contains(&record.fault.id);
        if candidates.first().is_some_and(hit) {
            top1 += 1;
        }
        if candidates.iter().take(3).any(hit) {
            top3 += 1;
        }
    }
    DiagnosisSummary {
        entries: dict.entries.len(),
        classes: dict.classes.len(),
        queries,
        top1,
        top3,
    }
}

/// The Fig. 5 campaign as a serialisable [`anafault::CampaignSpec`] —
/// what `fig5 --emit-spec` prints, and what the `anafault-serve` CI
/// smoke job submits. The spec must round-trip through the netlist
/// text, so both the daemon and `anafault-cli direct` rebuild exactly
/// the same circuit (node order included) and verdicts compare
/// bit-for-bit.
pub fn fig5_campaign_spec(
    model: HardFaultModel,
    max_faults: Option<usize>,
    client: Option<String>,
    signatures: bool,
) -> anafault::CampaignSpec {
    let (sys, tb) = vco_system();
    let tran = paper_tran();
    anafault::CampaignSpec {
        netlist: tb.to_netlist(),
        tstep: tran.tstep,
        tstop: tran.tstop,
        uic: tran.uic,
        observe: vec![OBSERVED_NODE.to_string()],
        detection: DetectionSpec::paper_fig5(),
        model,
        early_stop: false,
        record_signatures: signatures,
        max_faults,
        client,
        faults: sys.fault_list(),
    }
}

/// Dense-vs-sparse comparison on the Fig. 5 campaign: the same fault
/// list, tolerances and fault model through both linear-solver
/// backends, with verdict agreement checked fault by fault.
#[derive(Debug, Clone)]
pub struct SolverComparison {
    /// Wall-clock seconds for the whole campaign, dense LU.
    pub dense_seconds: f64,
    /// Wall-clock seconds for the whole campaign, sparse engine.
    pub sparse_seconds: f64,
    /// Kernel work (accepted Newton iterations), dense LU.
    pub dense_work: u64,
    /// Kernel work, sparse engine.
    pub sparse_work: u64,
    /// Faults simulated.
    pub n_faults: usize,
    /// Faults whose Detected/NotDetected/failure verdict differs
    /// between the backends (must be empty — listed by fault id).
    pub disagreements: Vec<usize>,
}

impl SolverComparison {
    /// Dense/sparse wall-clock ratio (> 1 means the sparse engine wins).
    pub fn speedup(&self) -> f64 {
        self.dense_seconds / self.sparse_seconds
    }

    /// Dense/sparse ratio of seconds *per Newton iteration* — the
    /// engine comparison with trajectory luck factored out. On
    /// halving-heavy faults the two backends legitimately walk
    /// different ladder paths (round-off level solution differences
    /// pick different damping/halving branches), so raw wall-clock
    /// undersells the per-solve speedup whenever the sparse run happens
    /// to draw more iterations.
    pub fn work_normalised_speedup(&self) -> f64 {
        (self.dense_seconds / self.dense_work.max(1) as f64)
            / (self.sparse_seconds / self.sparse_work.max(1) as f64)
    }

    /// True when both backends produced identical fault verdicts.
    pub fn verdicts_agree(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs the Fig. 5 campaign once per solver backend and compares
/// runtime and verdicts. Also returns the sparse run's full result so
/// the caller can render the coverage report without paying for a
/// third campaign.
pub fn fig5_solver_comparison(model: HardFaultModel) -> (SolverComparison, CampaignResult) {
    let (sys, tb) = vco_system();
    let faults = sys.fault_list();
    let run = |kind: SolverKind| {
        Campaign::builder()
            .testbench(tb.clone())
            .tran(paper_tran_with_solver(kind))
            .observe(OBSERVED_NODE)
            .detection(DetectionSpec::paper_fig5())
            .model(model)
            .build()
            .expect("paper campaign settings are complete")
            .run(&faults)
            .expect("nominal simulation succeeds")
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);
    let disagreements = verdict_disagreements(&dense, &sparse);
    let comparison = SolverComparison {
        dense_seconds: dense.total_seconds,
        sparse_seconds: sparse.total_seconds,
        dense_work: dense.total_newton_iterations(),
        sparse_work: sparse.total_newton_iterations(),
        n_faults: faults.len(),
        disagreements,
    };
    (comparison, sparse)
}

/// Fault ids whose Detected/NotDetected/failure verdict class differs
/// between two runs of the same fault list (detection *times* may move
/// within tolerance between engines; the verdict class must not).
fn verdict_disagreements(a: &CampaignResult, b: &CampaignResult) -> Vec<usize> {
    a.records
        .iter()
        .zip(&b.records)
        .filter(|(x, y)| {
            use anafault::FaultOutcome::*;
            !matches!(
                (&x.outcome, &y.outcome),
                (Detected { .. }, Detected { .. })
                    | (NotDetected, NotDetected)
                    | (InjectionFailed(_), InjectionFailed(_))
                    | (SimulationFailed(_), SimulationFailed(_))
            )
        })
        .map(|(x, _)| x.fault.id)
        .collect()
}

/// Scalar-vs-batched comparison on the Fig. 5 campaign: the same fault
/// list and fault model through the per-fault scalar path (the PR 6
/// baseline) and through the lockstep batched scheduler.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// Wall-clock seconds for the whole campaign, per-fault scalar.
    pub scalar_seconds: f64,
    /// Wall-clock seconds for the whole campaign, batched lockstep.
    pub batched_seconds: f64,
    /// Kernel work (accepted Newton iterations), scalar.
    pub scalar_work: u64,
    /// Kernel work, batched (including any ejected-lane re-runs).
    pub batched_work: u64,
    /// The lane width the batched run was configured with.
    pub width: usize,
    /// Faults simulated.
    pub n_faults: usize,
    /// Faults whose verdict class differs (must be empty).
    pub disagreements: Vec<usize>,
}

impl BatchComparison {
    /// Scalar/batched wall-clock ratio (> 1 means batching wins).
    pub fn speedup(&self) -> f64 {
        self.scalar_seconds / self.batched_seconds
    }

    /// True when both schedulers produced identical fault verdicts.
    pub fn verdicts_agree(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Compares an already-run scalar campaign against an already-run
/// batched campaign over the same fault list. Split from
/// [`fig5_batch_comparison`] so the fig5 binary can reuse its solver
/// comparison's sparse run as the scalar baseline.
pub fn compare_batch(
    scalar: &CampaignResult,
    batched: &CampaignResult,
    width: usize,
) -> BatchComparison {
    BatchComparison {
        scalar_seconds: scalar.total_seconds,
        batched_seconds: batched.total_seconds,
        scalar_work: scalar.total_newton_iterations(),
        batched_work: batched.total_newton_iterations(),
        width,
        n_faults: scalar.records.len(),
        disagreements: verdict_disagreements(scalar, batched),
    }
}

/// The lane width a [`BatchMode`] resolves to (0 for `Off`).
pub fn batch_width_of(batch: BatchMode) -> usize {
    match batch {
        BatchMode::Off => 0,
        BatchMode::Auto => DEFAULT_BATCH_WIDTH,
        BatchMode::Width(k) => k.max(1),
    }
}

/// Runs the Fig. 5 campaign once scalar and once batched and compares
/// runtime and verdicts. Also returns the batched run's full result so
/// the caller can render the coverage report from it.
pub fn fig5_batch_comparison(
    model: HardFaultModel,
    batch: BatchMode,
    max_faults: Option<usize>,
) -> (BatchComparison, CampaignResult) {
    let (scalar, _) = fig5_campaign_limited(model, max_faults);
    let (batched, _) = fig5_campaign_batched(model, batch, max_faults);
    let comparison = compare_batch(&scalar, &batched, batch_width_of(batch));
    (comparison, batched)
}

// ---------------------------------------------------------------------
// FIG6: bridge resistance sweep on M11's drain
// ---------------------------------------------------------------------

/// Simulates the Fig. 6 sweep: a resistor from the Schmitt trigger
/// M11's drain (the supply rail — M11 is the N-side feedback device)
/// to ground, for each resistance value. Observability comes through
/// the testbench's supply impedance, exactly as on a real bench.
pub fn fig6_sweep(r_values: &[f64]) -> Vec<(f64, Wave)> {
    let (_, tb) = vco_system();
    r_values
        .iter()
        .map(|&r| {
            let fault = Fault::new(
                900,
                format!("BRI M11.d->0 R={r}"),
                FaultEffect::Short {
                    a: "vdd".into(),
                    b: "0".into(),
                },
            );
            let model = HardFaultModel::Resistor {
                r_short: r,
                r_open: 100e6,
            };
            let faulty = anafault::inject(&tb, &fault, model).expect("injectable");
            let wave = spice::tran::tran(&faulty, &paper_tran())
                .expect("sweep point simulates")
                .wave(OBSERVED_NODE)
                .expect("observed node");
            (r, wave)
        })
        .collect()
}

// ---------------------------------------------------------------------
// RT-RATIO: source vs resistor model runtime
// ---------------------------------------------------------------------

/// Runtime comparison between the two hard-fault models (paper §VI:
/// source model 43 % slower — 4383 s vs 3068 s on their hardware).
#[derive(Debug, Clone)]
pub struct RuntimeComparison {
    /// Summed per-fault simulation seconds, resistor model.
    pub resistor_seconds: f64,
    /// Summed per-fault simulation seconds, source model.
    pub source_seconds: f64,
    /// Kernel work (Newton solves), resistor model.
    pub resistor_work: u64,
    /// Kernel work, source model.
    pub source_work: u64,
    /// Coverage agreement between the two models (percentage points of
    /// difference; the paper found "nearly identical" plots).
    pub coverage_delta: f64,
}

impl RuntimeComparison {
    /// Source/resistor runtime ratio (paper: 1.43).
    pub fn ratio(&self) -> f64 {
        self.source_seconds / self.resistor_seconds
    }
}

/// Runs both campaigns and compares runtimes.
pub fn runtime_comparison() -> RuntimeComparison {
    let (resistor, _) = fig5_campaign(HardFaultModel::paper_resistor());
    let (source, _) = fig5_campaign(HardFaultModel::Source);
    RuntimeComparison {
        resistor_seconds: resistor.fault_sim_seconds(),
        source_seconds: source.fault_sim_seconds(),
        resistor_work: resistor.total_newton_iterations(),
        source_work: source.total_newton_iterations(),
        coverage_delta: (resistor.final_coverage() - source.final_coverage()).abs(),
    }
}

// ---------------------------------------------------------------------
// Rendering helpers shared by the binaries
// ---------------------------------------------------------------------

/// Renders a waveform as an ASCII strip chart (`width` columns,
/// `height` rows), used by the fig4/fig6 binaries.
pub fn ascii_wave(wave: &Wave, width: usize, height: usize, v_min: f64, v_max: f64) -> String {
    let mut grid = vec![vec![' '; width]; height];
    let t0 = wave.times().first().copied().unwrap_or(0.0);
    let t1 = wave.times().last().copied().unwrap_or(1.0);
    // clippy wants `grid.iter().enumerate()`, but `col` indexes the
    // inner dimension under a computed `row`.
    #[allow(clippy::needless_range_loop)]
    for col in 0..width {
        let t = t0 + (t1 - t0) * col as f64 / (width - 1) as f64;
        let v = wave.value_at(t);
        let frac = ((v - v_min) / (v_max - v_min)).clamp(0.0, 1.0);
        let row = height - 1 - (frac * (height - 1) as f64).round() as usize;
        grid[row][col] = '*';
    }
    let mut s = String::new();
    for (i, row) in grid.iter().enumerate() {
        let level = v_max - (v_max - v_min) * i as f64 / (height - 1) as f64;
        s.push_str(&format!("{level:>6.1} |"));
        s.extend(row.iter());
        s.push('\n');
    }
    s.push_str(&format!("       +{}\n", "-".repeat(width)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_options_are_consistent() {
        let o = paper_lift_options();
        assert_eq!(o.p_min, 3e-8);
        assert_eq!(o.size_dist.x_max(), 10_000.0);
        let t = paper_tran();
        assert_eq!(t.tstep, 10e-9);
        assert_eq!(t.tstop, 4e-6);
        assert!(t.uic);
    }

    #[test]
    fn ascii_wave_renders() {
        let w = Wave::new(vec![0.0, 1.0, 2.0], vec![0.0, 5.0, 0.0]);
        let art = ascii_wave(&w, 30, 8, -1.0, 5.0);
        assert_eq!(art.lines().count(), 9);
        assert!(art.contains('*'));
    }
}
