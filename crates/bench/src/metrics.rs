//! The `--metrics <path>` run-report layer shared by every bench
//! binary.
//!
//! When a binary is invoked with `--metrics out.json`, telemetry
//! collection is switched on for the process and, at exit, a single
//! JSON document is written containing the run's wall-clock, its named
//! phases, every counter and histogram from the [`cat_telemetry`]
//! global registry, and (for campaign binaries) the aggregated
//! [`CampaignReport`]. The document follows the same hand-rolled JSON
//! conventions as `anafault::protocol` and parses back through
//! [`anafault::protocol::parse_json`].

use anafault::CampaignReport;
use cat_telemetry::json::{num, quote};
use std::time::Instant;

/// Counter keys every run report must contain. Keys the registry has
/// not seen (a dense-only campaign never touches the sparse cache) are
/// written with value 0 rather than omitted, so report consumers —
/// including the CI smoke job — can rely on their presence.
pub const REQUIRED_COUNTERS: &[&str] = &[
    "spice.sparse.pattern_builds",
    "spice.sparse.pattern_cache.hits",
    "spice.sparse.pattern_cache.misses",
    "spice.sparse.refactorisations",
    "spice.sparse.repivots",
    "spice.sparse.dense_fallbacks",
    "spice.sparse.demotions",
    "spice.tran.runs",
    "spice.tran.steps",
    "spice.newton.iterations",
    "spice.batch.batches",
    "spice.batch.lanes",
    "spice.batch.compactions",
    "spice.batch.refills",
    "spice.batch.ejections",
    "anafault.serve.requests",
    "anafault.serve.campaigns_started",
    "anafault.serve.campaigns_resumed",
    "anafault.serve.faults_replayed",
    "anafault.serve.stream_bytes",
    "anafault.diagnose.dictionaries_built",
    "anafault.diagnose.entries",
    "anafault.diagnose.classes",
    "anafault.diagnose.rankings",
];

/// Schema tag stamped into every run report.
pub const REPORT_SCHEMA: &str = "bench-report/1";

/// Per-binary metrics session. Construct with [`Metrics::from_args`]
/// at the top of `main`, mark coarse stages with [`Metrics::phase`],
/// and call [`Metrics::finish`] last.
#[derive(Debug)]
pub struct Metrics {
    bench: &'static str,
    path: Option<String>,
    start: Instant,
    phases: Vec<(String, f64)>,
    current: Option<(String, Instant)>,
    campaign: Option<CampaignReport>,
    batch: Option<BatchSummary>,
    diagnosis: Option<DiagnosisSummary>,
}

/// The batching trajectory entry written into the run report: which
/// lane width ran and what it bought over the scalar baseline.
#[derive(Debug, Clone, Copy)]
pub struct BatchSummary {
    /// Configured lane width.
    pub width: usize,
    /// Scalar/batched wall-clock ratio (> 1 means batching wins), or
    /// `None` when no scalar baseline ran alongside.
    pub speedup: Option<f64>,
    /// Whether scalar and batched verdicts agreed on every fault
    /// (`None` without a baseline).
    pub verdicts_agree: Option<bool>,
}

/// The diagnosis entry written into the run report: dictionary size,
/// ambiguity structure, and self-diagnosis accuracy. Produced by
/// [`crate::self_diagnose`].
#[derive(Debug, Clone, Copy)]
pub struct DiagnosisSummary {
    /// Faults with recorded signatures (dictionary entries).
    pub entries: usize,
    /// Ambiguity classes after clustering indistinguishable faults.
    pub classes: usize,
    /// Detected faults probed back through the dictionary.
    pub queries: usize,
    /// Probes whose true ambiguity class ranked first.
    pub top1: usize,
    /// Probes whose true ambiguity class ranked in the first three.
    pub top3: usize,
}

impl Metrics {
    /// Reads `--metrics <path>` from the process arguments. When the
    /// flag is present, telemetry collection is enabled process-wide;
    /// otherwise every later call is a cheap no-op.
    pub fn from_args(bench: &'static str) -> Metrics {
        let mut path = None;
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            if a == "--metrics" {
                path = args.next();
                if path.is_none() {
                    eprintln!("--metrics requires a file path");
                    std::process::exit(2);
                }
            }
        }
        Metrics::with_path(bench, path)
    }

    /// Builds a session from an already-parsed `--metrics` value — the
    /// entry point for binaries on the shared [`crate::ArgSpec`]
    /// parser, which owns the argument scan.
    pub fn with_path(bench: &'static str, path: Option<String>) -> Metrics {
        if path.is_some() {
            cat_telemetry::set_enabled(true);
        }
        Metrics {
            bench,
            path,
            start: Instant::now(),
            phases: Vec::new(),
            current: None,
            campaign: None,
            batch: None,
            diagnosis: None,
        }
    }

    /// True when `--metrics` was given (telemetry is being collected).
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Closes the running phase (if any) and opens a new one.
    pub fn phase(&mut self, name: &str) {
        self.end_phase();
        self.current = Some((name.to_string(), Instant::now()));
    }

    /// Attaches the aggregated campaign report to the run report.
    pub fn attach_campaign(&mut self, report: CampaignReport) {
        self.campaign = Some(report);
    }

    /// Attaches the batching summary (chosen lane width plus measured
    /// speedup and verdict agreement when a scalar baseline ran).
    pub fn attach_batch(&mut self, batch: BatchSummary) {
        self.batch = Some(batch);
    }

    /// Attaches the fault-dictionary self-diagnosis summary.
    pub fn attach_diagnosis(&mut self, diagnosis: DiagnosisSummary) {
        self.diagnosis = Some(diagnosis);
    }

    /// Closes the session: when `--metrics` was given, renders the run
    /// report and writes it to the requested path.
    pub fn finish(mut self) {
        self.end_phase();
        let Some(path) = self.path.take() else {
            return;
        };
        let report = render_report(
            self.bench,
            self.start.elapsed().as_secs_f64(),
            &self.phases,
            self.campaign.as_ref(),
            self.batch,
            self.diagnosis,
        );
        match std::fs::write(&path, report) {
            Ok(()) => eprintln!("metrics report written to {path}"),
            Err(e) => {
                eprintln!("failed to write metrics report to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    fn end_phase(&mut self) {
        if let Some((name, t0)) = self.current.take() {
            self.phases.push((name, t0.elapsed().as_secs_f64()));
        }
    }
}

/// Renders the run-report JSON document: schema tag, bench name,
/// wall-clock, phases, the global registry's counters (with
/// [`REQUIRED_COUNTERS`] zero-filled) and histograms, plus the
/// campaign report when one was attached. Public so tests can validate
/// the schema without spawning a binary.
pub fn render_report(
    bench: &str,
    wall_seconds: f64,
    phases: &[(String, f64)],
    campaign: Option<&CampaignReport>,
    batch: Option<BatchSummary>,
    diagnosis: Option<DiagnosisSummary>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(REPORT_SCHEMA)));
    s.push_str(&format!("  \"bench\": {},\n", quote(bench)));
    s.push_str(&format!("  \"wall_seconds\": {},\n", num(wall_seconds)));

    s.push_str("  \"phases\": [");
    for (i, (name, seconds)) in phases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": {}, \"seconds\": {}}}",
            quote(name),
            num(*seconds)
        ));
    }
    s.push_str("],\n");

    let mut counters = cat_telemetry::global().counter_values();
    for key in REQUIRED_COUNTERS {
        counters.entry(key.to_string()).or_insert(0);
    }
    s.push_str("  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {}", quote(name), value));
    }
    s.push_str("},\n");

    let histograms = cat_telemetry::global().histogram_snapshots();
    s.push_str("  \"histograms\": {");
    for (i, (name, snapshot)) in histograms.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {}", quote(name), snapshot.to_json()));
    }
    s.push_str("},\n");

    match batch {
        Some(b) => {
            let speedup = match b.speedup {
                Some(v) => num(v),
                None => "null".to_string(),
            };
            let agree = match b.verdicts_agree {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "  \"batch\": {{\"width\": {}, \"speedup\": {}, \"verdicts_agree\": {}}},\n",
                b.width, speedup, agree
            ));
        }
        None => s.push_str("  \"batch\": null,\n"),
    }

    match diagnosis {
        Some(d) => s.push_str(&format!(
            "  \"diagnosis\": {{\"entries\": {}, \"classes\": {}, \"queries\": {}, \
             \"top1\": {}, \"top3\": {}}},\n",
            d.entries, d.classes, d.queries, d.top1, d.top3
        )),
        None => s.push_str("  \"diagnosis\": null,\n"),
    }

    match campaign {
        Some(report) => s.push_str(&format!("  \"campaign\": {}\n", report.to_json())),
        None => s.push_str("  \"campaign\": null\n"),
    }
    s.push_str("}\n");
    s
}
