//! The shared command-line parser for the bench binaries.
//!
//! Every binary declares its flags once in an [`ArgSpec`] and calls
//! [`ArgSpec::parse_or_exit`]. Unknown flags, stray positionals and
//! missing values are rejected with exit code 2 and the usage text —
//! previously each binary rescanned `std::env::args()` per flag and a
//! typo like `--max-fault 8` silently ran the full campaign.
//!
//! [`ArgSpec::parse_from`] is the pure core, so the rejection rules are
//! unit-testable without spawning a process.

use std::collections::{BTreeMap, BTreeSet};

/// A binary's flag vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Binary name, used as the error-message prefix.
    pub bench: &'static str,
    /// Usage text printed on `--help` (exit 0) and on errors (exit 2).
    pub usage: &'static str,
    /// Flags that consume the following argument as their value.
    pub value_flags: &'static [&'static str],
    /// Boolean flags (present or not).
    pub bool_flags: &'static [&'static str],
}

/// The parsed result: which flags were set and their values.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    bools: BTreeSet<String>,
    /// `--help` / `-h` was given.
    pub help: bool,
}

impl Args {
    /// The value of a value-flag, when given.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, flag: &str) -> bool {
        self.bools.contains(flag)
    }

    /// The value of a flag parsed into `T`, when given.
    ///
    /// # Errors
    /// A message naming the flag when the value does not parse.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.value(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("{flag} got an unusable value `{raw}`")),
        }
    }
}

impl ArgSpec {
    /// Parses an argument iterator (binary name already stripped).
    /// Later occurrences of a value flag override earlier ones.
    ///
    /// # Errors
    /// Unknown flags, positional arguments and value flags missing
    /// their value.
    pub fn parse_from<I>(&self, raw: I) -> Result<Args, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                args.help = true;
            } else if self.value_flags.contains(&arg.as_str()) {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                args.values.insert(arg, value);
            } else if self.bool_flags.contains(&arg.as_str()) {
                args.bools.insert(arg);
            } else if arg.starts_with('-') {
                return Err(format!("unknown flag `{arg}`"));
            } else {
                return Err(format!("unexpected argument `{arg}`"));
            }
        }
        Ok(args)
    }

    /// Parses the process arguments; `--help` prints the usage and
    /// exits 0, anything unrecognised prints the error plus usage and
    /// exits 2.
    pub fn parse_or_exit(&self) -> Args {
        match self.parse_from(std::env::args().skip(1)) {
            Ok(args) if args.help => {
                print!("{}", self.usage);
                std::process::exit(0);
            }
            Ok(args) => args,
            Err(message) => self.fail(&message),
        }
    }

    /// Prints `message` plus the usage text and exits 2 — for flag
    /// values that parse as strings but fail domain validation.
    pub fn fail(&self, message: &str) -> ! {
        eprintln!("{}: {message}\n\n{}", self.bench, self.usage);
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        bench: "test-bench",
        usage: "usage: test-bench [flags]\n",
        value_flags: &["--metrics", "--max-faults"],
        bool_flags: &["--json"],
    };

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_declared_flags() {
        let args = SPEC
            .parse_from(strings(&[
                "--json",
                "--max-faults",
                "8",
                "--metrics",
                "out.json",
            ]))
            .unwrap();
        assert!(args.flag("--json"));
        assert_eq!(args.value("--max-faults"), Some("8"));
        assert_eq!(args.parsed::<usize>("--max-faults").unwrap(), Some(8));
        assert_eq!(args.value("--metrics"), Some("out.json"));
        assert!(!args.help);
    }

    #[test]
    fn rejects_unknown_flags_and_positionals() {
        // The typo that used to silently run the full campaign.
        let err = SPEC.parse_from(strings(&["--max-fault", "8"])).unwrap_err();
        assert!(err.contains("--max-fault"), "{err}");
        let err = SPEC.parse_from(strings(&["stray"])).unwrap_err();
        assert!(err.contains("stray"), "{err}");
    }

    #[test]
    fn rejects_missing_and_bad_values() {
        let err = SPEC.parse_from(strings(&["--max-faults"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let args = SPEC
            .parse_from(strings(&["--max-faults", "eight"]))
            .unwrap();
        assert!(args.parsed::<usize>("--max-faults").is_err());
    }

    #[test]
    fn help_and_overrides() {
        let args = SPEC.parse_from(strings(&["-h"])).unwrap();
        assert!(args.help);
        let args = SPEC
            .parse_from(strings(&["--max-faults", "8", "--max-faults", "4"]))
            .unwrap();
        assert_eq!(args.parsed::<usize>("--max-faults").unwrap(), Some(4));
    }
}
