//! End-to-end exercise of the campaign daemon over real sockets: submit
//! a spec, tail the chunked NDJSON stream, and check the final document
//! against an in-process `CampaignSession` run of the same spec.

use anafault::coverage::DetectionSpec;
use anafault::inject::HardFaultModel;
use anafault::protocol::{self, CampaignSpec, StreamEvent};
use anafault::{Fault, FaultEffect, FaultOutcome};
use serve::http;
use serve::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn ladder_spec() -> CampaignSpec {
    CampaignSpec {
        netlist: "rc ladder testbench\n\
                  V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
                  R1 in n1 1k\n\
                  C1 n1 0 1n ic=0\n\
                  R2 n1 out 2k\n\
                  C2 out 0 2n ic=0\n\
                  .end\n"
            .to_string(),
        tstep: 0.5e-6,
        tstop: 50e-6,
        uic: true,
        observe: vec!["out".to_string()],
        detection: DetectionSpec {
            v_tol: 1.0,
            t_tol: 1e-6,
        },
        model: HardFaultModel::paper_resistor(),
        early_stop: false,
        record_signatures: false,
        max_faults: None,
        client: Some("e2e".to_string()),
        faults: vec![
            Fault::new(
                1,
                "BRI in->n1",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "n1".into(),
                },
            ),
            Fault::new(
                2,
                "BRI n1->out",
                FaultEffect::Short {
                    a: "n1".into(),
                    b: "out".into(),
                },
            ),
            Fault::new(
                3,
                "BRI out->gnd",
                FaultEffect::Short {
                    a: "out".into(),
                    b: "0".into(),
                },
            ),
            Fault::new(
                4,
                "SOFT R1 x10",
                FaultEffect::ParamDeviation {
                    element: "R1".into(),
                    factor: 10.0,
                },
            ),
            Fault::new(
                5,
                "SOFT C2 x0.1",
                FaultEffect::ParamDeviation {
                    element: "C2".into(),
                    factor: 0.1,
                },
            ),
            Fault::new(
                6,
                "BRI in->out",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "out".into(),
                },
            ),
        ],
    }
}

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anafault-serve-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(tag: &str, max_campaigns: usize, fault_budget: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: temp_state_dir(tag),
        sim_workers: 2,
        http_workers: 4,
        max_campaigns,
        client_fault_budget: fault_budget,
        retain: None,
    })
    .expect("server starts")
}

fn outcomes(records: &[anafault::FaultRecord]) -> BTreeMap<usize, &FaultOutcome> {
    records.iter().map(|r| (r.fault.id, &r.outcome)).collect()
}

/// Submits a spec, retrying while an earlier campaign of the same
/// client still holds the fault budget (released at finalization, which
/// races with the next request).
fn submit_when_budget_frees(addr: &str, body: &str) -> (u16, String) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let (status, text) = http::request(addr, "POST", "/campaigns", Some(body)).expect("submit");
        if status != 429 || std::time::Instant::now() >= deadline {
            return (status, text);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn stream_matches_direct_session_run() {
    cat_telemetry::set_enabled(true);
    let server = start("stream", 4, 100_000);
    let addr = server.addr().to_string();
    let spec = ladder_spec();

    let reference = spec
        .build_campaign()
        .expect("spec builds")
        .session(&spec.faults)
        .run()
        .expect("direct run succeeds");

    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&spec.to_json())).expect("submit");
    assert_eq!(status, 201, "submit failed: {body}");
    assert!(
        body.contains("\"id\": \"c1\""),
        "unexpected admission: {body}"
    );

    // Tail the event stream until the result line closes it.
    let mut progress = Vec::new();
    let mut result = None;
    let status = http::stream_request(&addr, "GET", "/campaigns/c1/events", None, |line| {
        match protocol::event_from_json(line).expect("stream line parses") {
            StreamEvent::Progress(p) => progress.push(p),
            StreamEvent::Result(r) => result = Some(r),
        }
        Ok(())
    })
    .expect("event stream");
    assert_eq!(status, 200);

    // One progress line per fault, counting monotonically to the total.
    assert_eq!(progress.len(), spec.faults.len());
    for (k, event) in progress.iter().enumerate() {
        assert_eq!(event.completed, k + 1);
        assert_eq!(event.total, spec.faults.len());
    }

    let served = result.expect("stream ended with the result document");
    assert_eq!(served.observed, reference.observed);
    assert_eq!(served.nominals, reference.nominals);
    assert_eq!(outcomes(&served.records), outcomes(&reference.records));
    assert_eq!(served.final_coverage(), reference.final_coverage());
    assert_eq!(served.telemetry.replayed_faults, 0);

    // The result endpoint serves the identical verdicts.
    let (status, text) = http::request(&addr, "GET", "/campaigns/c1/result", None).expect("result");
    assert_eq!(status, 200);
    let fetched = protocol::from_json(&text).expect("result document parses");
    assert_eq!(outcomes(&fetched.records), outcomes(&reference.records));

    // Status and listing agree the campaign is done.
    let (status, body) = http::request(&addr, "GET", "/campaigns/c1", None).expect("status");
    assert_eq!(status, 200);
    assert!(body.contains("\"phase\": \"done\""), "status: {body}");
    let (status, body) = http::request(&addr, "GET", "/campaigns", None).expect("list");
    assert_eq!(status, 200);
    assert!(body.contains("\"id\": \"c1\""), "list: {body}");

    // Serve counters are live on /metrics.
    let (status, body) = http::request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    for counter in [
        "anafault.serve.requests",
        "anafault.serve.campaigns_started",
        "anafault.serve.stream_bytes",
    ] {
        assert!(body.contains(counter), "missing {counter} in {body}");
    }
}

#[test]
fn admission_enforces_quotas_and_validates_specs() {
    cat_telemetry::set_enabled(true);
    let spec = ladder_spec();

    // Campaign quota: zero concurrent campaigns allowed.
    let server = start("quota-campaigns", 0, 100_000);
    let addr = server.addr().to_string();
    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&spec.to_json())).expect("submit");
    assert_eq!(status, 429, "expected campaign-quota rejection: {body}");
    assert!(body.contains("campaign quota"), "reason: {body}");

    // Per-client fault budget smaller than the fault list.
    let server = start("quota-faults", 4, 2);
    let addr = server.addr().to_string();
    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&spec.to_json())).expect("submit");
    assert_eq!(status, 429, "expected fault-budget rejection: {body}");
    assert!(body.contains("fault budget"), "reason: {body}");

    // A rejected admission must not leak quota: a budget-sized spec
    // still goes through afterwards.
    let mut small = spec.clone();
    small.max_faults = Some(2);
    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&small.to_json())).expect("submit");
    assert_eq!(status, 201, "budgeted spec should admit: {body}");

    // Malformed documents and unknown endpoints.
    let (status, _) =
        http::request(&addr, "POST", "/campaigns", Some("{\"spec_version\": 1")).expect("submit");
    assert_eq!(status, 400);
    let (status, _) = http::request(&addr, "GET", "/campaigns/c999", None).expect("status");
    assert_eq!(status, 404);
    let (status, _) = http::request(&addr, "DELETE", "/campaigns/c1", None).expect("delete");
    assert_eq!(status, 405);
    let (status, _) = http::request(&addr, "GET", "/nope", None).expect("get");
    assert_eq!(status, 404);
    let (status, body) = http::request(&addr, "GET", "/healthz", None).expect("health");
    assert_eq!(status, 200);
    assert!(body.contains("true"));

    // A spec that parses but cannot build a campaign is 422. The
    // admitted budget-sized campaign above may still hold the client's
    // fault budget for a moment, so wait out transient 429s.
    let mut broken = spec.clone();
    broken.max_faults = Some(2);
    broken.observe = vec!["no-such-node".to_string()];
    let (status, body) = submit_when_budget_frees(&addr, &broken.to_json());
    assert_eq!(status, 422, "expected build rejection: {body}");

    // Client tags must be short printable ASCII; a missing tag is fine.
    for bad_tag in ["", "säge", "tab\there", &"x".repeat(65)] {
        let mut tagged = spec.clone();
        tagged.max_faults = Some(2);
        tagged.client = Some(bad_tag.to_string());
        let (status, body) =
            http::request(&addr, "POST", "/campaigns", Some(&tagged.to_json())).expect("submit");
        assert_eq!(status, 422, "tag {bad_tag:?} should be rejected: {body}");
        assert!(body.contains("client tag"), "reason: {body}");
    }
    let mut untagged = spec.clone();
    untagged.max_faults = Some(2);
    untagged.client = None;
    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&untagged.to_json())).expect("submit");
    assert_eq!(status, 201, "untagged spec should admit: {body}");
}

#[test]
fn duplicate_fault_effects_are_deduplicated_at_admission() {
    cat_telemetry::set_enabled(true);
    let server = start("dedupe", 4, 100_000);
    let addr = server.addr().to_string();
    let mut spec = ladder_spec();
    // Two repeats of fault 1's effect under fresh ids and labels.
    for id in [7, 8] {
        spec.faults.push(Fault::new(
            id,
            format!("BRI in->n1 repeat {id}"),
            FaultEffect::Short {
                a: "in".into(),
                b: "n1".into(),
            },
        ));
    }

    let (status, body) =
        http::request(&addr, "POST", "/campaigns", Some(&spec.to_json())).expect("submit");
    assert_eq!(status, 201, "submit failed: {body}");
    assert!(
        body.contains("\"total\": 6"),
        "duplicates should not be simulated: {body}"
    );

    // The persisted spec is the deduplicated one, so a resume replays
    // exactly the admitted fault list.
    let stored = std::fs::read_to_string(server.state_dir().join("c1.spec.json")).expect("spec");
    let stored = CampaignSpec::from_json(&stored).expect("stored spec parses");
    assert_eq!(
        stored.faults.iter().map(|f| f.id).collect::<Vec<_>>(),
        [1, 2, 3, 4, 5, 6]
    );

    // The trimmed count lands in the result's telemetry.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let text = loop {
        let (status, text) =
            http::request(&addr, "GET", "/campaigns/c1/result", None).expect("result");
        if status == 200 {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "campaign did not finish"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let result = protocol::from_json(&text).expect("result parses");
    assert_eq!(result.telemetry.deduped_faults, 2);
    assert_eq!(result.records.len(), 6);
}
