//! Checkpoint/resume property test, in its own process so the global
//! telemetry registry gives clean `anafault.serve.*` counter deltas.
//!
//! For a range of split points `k` the test forges the state directory
//! a SIGKILLed daemon would leave behind — the spec document plus a
//! checkpoint holding the first `k` progress lines and a torn tail —
//! then starts a fresh server over it and demands:
//!
//! * the finished `CampaignResult` carries verdicts identical to an
//!   uninterrupted `CampaignSession` run of the same spec;
//! * the `k` checkpointed faults were replayed, not re-simulated —
//!   their records (including the donor's `sim_seconds`) come through
//!   bitwise, `telemetry.replayed_faults == k`, and the
//!   `anafault.serve.faults_replayed` counter moves by exactly `k`.

use anafault::campaign::CampaignProgress;
use anafault::coverage::DetectionSpec;
use anafault::inject::HardFaultModel;
use anafault::protocol::{self, CampaignSpec};
use anafault::{Fault, FaultEffect, FaultRecord};
use serve::http;
use serve::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn ladder_spec() -> CampaignSpec {
    CampaignSpec {
        netlist: "rc ladder testbench\n\
                  V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
                  R1 in n1 1k\n\
                  C1 n1 0 1n ic=0\n\
                  R2 n1 out 2k\n\
                  C2 out 0 2n ic=0\n\
                  .end\n"
            .to_string(),
        tstep: 0.5e-6,
        tstop: 50e-6,
        uic: true,
        observe: vec!["out".to_string()],
        detection: DetectionSpec {
            v_tol: 1.0,
            t_tol: 1e-6,
        },
        model: HardFaultModel::paper_resistor(),
        early_stop: false,
        record_signatures: false,
        max_faults: None,
        client: Some("resume-prop".to_string()),
        faults: vec![
            Fault::new(
                1,
                "BRI in->n1",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "n1".into(),
                },
            ),
            Fault::new(
                2,
                "BRI n1->out",
                FaultEffect::Short {
                    a: "n1".into(),
                    b: "out".into(),
                },
            ),
            Fault::new(
                3,
                "BRI out->gnd",
                FaultEffect::Short {
                    a: "out".into(),
                    b: "0".into(),
                },
            ),
            Fault::new(
                4,
                "SOFT R1 x10",
                FaultEffect::ParamDeviation {
                    element: "R1".into(),
                    factor: 10.0,
                },
            ),
            Fault::new(
                5,
                "SOFT C2 x0.1",
                FaultEffect::ParamDeviation {
                    element: "C2".into(),
                    factor: 0.1,
                },
            ),
            Fault::new(
                6,
                "BRI in->out",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "out".into(),
                },
            ),
        ],
    }
}

fn state_dir(k: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("anafault-serve-resume-{}-k{k}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

fn counter(name: &str) -> u64 {
    cat_telemetry::global()
        .counter_values()
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn progress_line(i: usize, total: usize, record: &FaultRecord) -> String {
    protocol::progress_to_json(&CampaignProgress {
        index: i,
        completed: i + 1,
        total,
        record: record.clone(),
    })
}

fn wait_for_result(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http::request(addr, "GET", &format!("/campaigns/{id}/result"), None)
            .expect("result request");
        if status == 200 {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} did not finish (last status {status}: {body})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn resumed_campaigns_replay_checkpoints_bitwise() {
    cat_telemetry::set_enabled(true);
    let spec = ladder_spec();
    let total = spec.faults.len();

    // The uninterrupted reference, and a donor record per fault (what
    // the dead daemon had checkpointed before the kill).
    let reference = spec
        .build_campaign()
        .expect("spec builds")
        .session(&spec.faults)
        .run()
        .expect("direct run");
    let donor = spec.build_campaign().unwrap().prepare().expect("prepare");
    let donor_records: Vec<FaultRecord> = spec
        .faults
        .iter()
        .map(|f| donor.simulate_fault(f))
        .collect();
    let reference_outcomes: BTreeMap<usize, _> = reference
        .records
        .iter()
        .map(|r| (r.fault.id, &r.outcome))
        .collect();

    // Split points: both edges plus a pseudo-random interior sample
    // (tests must stay deterministic, so a fixed LCG, not a clock seed).
    let mut splits = vec![0, 1, total - 1, total];
    let mut x = 0x2545f491u64;
    x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    splits.push(1 + (x >> 33) as usize % (total - 1));
    splits.dedup();

    for k in splits {
        let dir = state_dir(k);
        std::fs::write(dir.join("c1.spec.json"), spec.to_json()).expect("spec file");
        let mut checkpoint = String::new();
        let mut written_lines = Vec::new();
        for (i, record) in donor_records.iter().take(k).enumerate() {
            let line = progress_line(i, total, record);
            checkpoint.push_str(&line);
            checkpoint.push('\n');
            written_lines.push(line);
        }
        if k < total {
            // The torn tail a mid-write SIGKILL leaves behind.
            let torn = progress_line(k, total, &donor_records[k]);
            checkpoint.push_str(&torn[..torn.len() / 2]);
        }
        std::fs::write(dir.join("c1.ndjson"), &checkpoint).expect("checkpoint file");

        let resumed_before = counter("anafault.serve.campaigns_resumed");
        let replayed_before = counter("anafault.serve.faults_replayed");

        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: dir.clone(),
            sim_workers: 2,
            http_workers: 2,
            max_campaigns: 4,
            client_fault_budget: 100_000,
            retain: None,
        })
        .expect("server resumes");
        let addr = server.addr().to_string();

        assert_eq!(
            counter("anafault.serve.campaigns_resumed") - resumed_before,
            1,
            "k={k}: exactly one campaign resumed"
        );
        assert_eq!(
            counter("anafault.serve.faults_replayed") - replayed_before,
            k as u64,
            "k={k}: replay counter must move by the checkpointed count"
        );

        let result = protocol::from_json(&wait_for_result(&addr, "c1")).expect("result parses");

        // Verdicts identical to the uninterrupted run.
        assert_eq!(result.records.len(), total, "k={k}");
        let served: BTreeMap<usize, _> = result
            .records
            .iter()
            .map(|r| (r.fault.id, &r.outcome))
            .collect();
        assert_eq!(served, reference_outcomes, "k={k}: verdicts must match");
        assert_eq!(result.observed, reference.observed, "k={k}");
        assert_eq!(result.nominals, reference.nominals, "k={k}");
        assert_eq!(result.final_coverage(), reference.final_coverage(), "k={k}");

        // The first k records were replayed bitwise — donor timings and
        // all — not re-simulated.
        assert_eq!(result.telemetry.replayed_faults, k as u64, "k={k}");
        for (i, line) in written_lines.iter().enumerate() {
            assert_eq!(
                &progress_line(i, total, &result.records[i]),
                line,
                "k={k}: record {i} must come back bitwise from the checkpoint"
            );
        }

        // The rewritten checkpoint repaired the tear: the replayed
        // prefix is byte-identical and every fault has its line.
        let final_checkpoint =
            std::fs::read_to_string(dir.join("c1.ndjson")).expect("final checkpoint");
        let lines: Vec<&str> = final_checkpoint.lines().collect();
        assert_eq!(lines.len(), total, "k={k}: one line per fault");
        for (i, line) in written_lines.iter().enumerate() {
            assert_eq!(
                lines[i], line,
                "k={k}: replayed line {i} rewritten verbatim"
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
