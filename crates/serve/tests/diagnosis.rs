//! Dictionary build, diagnosis round-trip and state-dir retention over
//! real sockets: run a signature-recording campaign, build its fault
//! dictionary through `POST /campaigns/<id>/dictionary`, feed each
//! detected fault's own synthesized probe back through `POST /diagnose`
//! and demand rank 1, then restart the daemon with `--retain`-style
//! config and check the GC sweep.

use anafault::coverage::DetectionSpec;
use anafault::inject::HardFaultModel;
use anafault::protocol::{self, CampaignSpec, DiagnoseRequest};
use anafault::{Fault, FaultEffect, FaultOutcome};
use serve::http;
use serve::{Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn ladder_spec() -> CampaignSpec {
    CampaignSpec {
        netlist: "rc ladder testbench\n\
                  V1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n\
                  R1 in n1 1k\n\
                  C1 n1 0 1n ic=0\n\
                  R2 n1 out 2k\n\
                  C2 out 0 2n ic=0\n\
                  .end\n"
            .to_string(),
        tstep: 0.5e-6,
        tstop: 50e-6,
        uic: true,
        observe: vec!["out".to_string()],
        detection: DetectionSpec {
            v_tol: 1.0,
            t_tol: 1e-6,
        },
        model: HardFaultModel::paper_resistor(),
        early_stop: false,
        record_signatures: true,
        max_faults: None,
        client: Some("diagnosis".to_string()),
        faults: vec![
            Fault::new(
                1,
                "BRI in->out",
                FaultEffect::Short {
                    a: "in".into(),
                    b: "out".into(),
                },
            ),
            Fault::new(
                2,
                "BRI out->gnd",
                FaultEffect::Short {
                    a: "out".into(),
                    b: "0".into(),
                },
            ),
            Fault::new(
                3,
                "SOFT R1 x10",
                FaultEffect::ParamDeviation {
                    element: "R1".into(),
                    factor: 10.0,
                },
            ),
        ],
    }
}

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("anafault-serve-diag-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(dir: &Path, retain: Option<usize>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: dir.to_path_buf(),
        sim_workers: 2,
        http_workers: 4,
        max_campaigns: 8,
        client_fault_budget: 100_000,
        retain,
    }
}

/// Submits `spec` and blocks until its result document is served.
fn run_campaign(addr: &str, spec: &CampaignSpec) -> (String, String) {
    let (status, body) =
        http::request(addr, "POST", "/campaigns", Some(&spec.to_json())).expect("submit");
    assert_eq!(status, 201, "submit failed: {body}");
    let id = body
        .split('"')
        .nth(3)
        .expect("admission body names the id")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(60);
    let text = loop {
        let (status, text) =
            http::request(addr, "GET", &format!("/campaigns/{id}/result"), None).expect("result");
        if status == 200 {
            break text;
        }
        assert!(Instant::now() < deadline, "campaign {id} did not finish");
        std::thread::sleep(Duration::from_millis(50));
    };
    (id, text)
}

#[test]
fn dictionary_build_and_self_diagnosis_round_trip() {
    cat_telemetry::set_enabled(true);
    let dir = temp_state_dir("roundtrip");
    let server = Server::start(config(&dir, None)).expect("server starts");
    let addr = server.addr().to_string();
    let spec = ladder_spec();

    // Building a dictionary for an unknown campaign is 404; a malformed
    // diagnosis request is 400; diagnosing without a dictionary is 404.
    let (status, _) =
        http::request(&addr, "POST", "/campaigns/c99/dictionary", None).expect("dict");
    assert_eq!(status, 404);
    let (status, _) = http::request(&addr, "POST", "/diagnose", Some("{")).expect("diagnose");
    assert_eq!(status, 400);
    let probe_less = DiagnoseRequest {
        campaign: "c99".to_string(),
        waves: vec![(
            "out".to_string(),
            spice::Wave::new(vec![0.0, 1e-6], vec![0.0, 0.0]),
        )],
    };
    let (status, body) =
        http::request(&addr, "POST", "/diagnose", Some(&probe_less.to_json())).expect("diagnose");
    assert_eq!(status, 404, "no dictionary yet: {body}");

    let (id, result_text) = run_campaign(&addr, &spec);
    let result = protocol::from_json(&result_text).expect("result parses");

    // Build and persist the dictionary.
    let (status, dict_text) =
        http::request(&addr, "POST", &format!("/campaigns/{id}/dictionary"), None)
            .expect("dictionary");
    assert_eq!(status, 201, "dictionary build failed: {dict_text}");
    let dict = protocol::dictionary_from_json(&dict_text).expect("dictionary parses");
    let on_disk =
        std::fs::read_to_string(dir.join(format!("{id}.dict.json"))).expect("dict persisted");
    assert_eq!(protocol::dictionary_from_json(&on_disk).unwrap(), dict);

    // Every detected fault's own probe must come back rank 1.
    let detected: Vec<usize> = result
        .records
        .iter()
        .filter(|r| matches!(r.outcome, FaultOutcome::Detected { .. }))
        .map(|r| r.fault.id)
        .collect();
    assert!(!detected.is_empty(), "ladder campaign detects faults");
    for fault_id in detected {
        let probe = dict
            .probe_waves(fault_id)
            .expect("detected faults are in the dictionary");
        let request = DiagnoseRequest {
            campaign: id.clone(),
            waves: probe,
        };
        let mut lines = Vec::new();
        let status = http::stream_request(
            &addr,
            "POST",
            "/diagnose",
            Some(&request.to_json()),
            |line| {
                lines.push(line.to_string());
                Ok(())
            },
        )
        .expect("diagnose stream");
        assert_eq!(status, 200);
        assert_eq!(lines.len(), dict.classes.len(), "one line per class");
        let (rank, top) = protocol::candidate_from_json(&lines[0]).expect("candidate parses");
        assert_eq!(rank, 1);
        assert!(
            top.fault_ids.contains(&fault_id),
            "fault {fault_id} not top-1: {:?}",
            top
        );
    }

    // A wave naming an unobserved node is 422.
    let bad = DiagnoseRequest {
        campaign: id.clone(),
        waves: vec![(
            "n1".to_string(),
            spice::Wave::new(vec![0.0, 1e-6], vec![0.0, 0.0]),
        )],
    };
    let (status, body) =
        http::request(&addr, "POST", "/diagnose", Some(&bad.to_json())).expect("diagnose");
    assert_eq!(status, 422, "unknown node should be rejected: {body}");

    // A campaign without signatures cannot seed a dictionary: 422.
    let mut unsigned = spec.clone();
    unsigned.record_signatures = false;
    let (plain_id, _) = run_campaign(&addr, &unsigned);
    let (status, body) = http::request(
        &addr,
        "POST",
        &format!("/campaigns/{plain_id}/dictionary"),
        None,
    )
    .expect("dictionary");
    assert_eq!(status, 422, "unsigned campaign: {body}");
    assert!(body.contains("record_signatures"), "reason: {body}");
}

#[test]
fn retention_keeps_only_the_most_recent_completed_campaigns() {
    cat_telemetry::set_enabled(true);
    let dir = temp_state_dir("retain");
    let mut spec = ladder_spec();
    spec.max_faults = Some(1);

    // Three completed campaigns under retain=2: the GC that runs on
    // each completion deletes the oldest one's files.
    let server = Server::start(config(&dir, Some(2))).expect("server starts");
    let addr = server.addr().to_string();
    let (id1, _) = run_campaign(&addr, &spec);
    let (_, dict1) = http::request(&addr, "POST", &format!("/campaigns/{id1}/dictionary"), None)
        .expect("dictionary");
    assert!(dict1.contains("dict_version"));
    let (id2, _) = run_campaign(&addr, &spec);
    let (id3, _) = run_campaign(&addr, &spec);
    assert_eq!(
        (id1.as_str(), id2.as_str(), id3.as_str()),
        ("c1", "c2", "c3")
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    while dir.join("c1.result.json").exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    for suffix in ["spec.json", "ndjson", "result.json", "dict.json"] {
        assert!(
            !dir.join(format!("c1.{suffix}")).exists(),
            "c1.{suffix} should be collected"
        );
    }
    for id in ["c2", "c3"] {
        assert!(
            dir.join(format!("{id}.result.json")).exists(),
            "{id} should survive"
        );
    }
    // The collected campaign is gone from the API too.
    let (status, _) = http::request(&addr, "GET", "/campaigns/c1/result", None).expect("result");
    assert_eq!(status, 404);

    // A fresh daemon over the same directory applies the policy at
    // startup: with retain=1 only the newest campaign survives.
    drop(server);
    let server = Server::start(config(&dir, Some(1))).expect("server restarts");
    let _ = server;
    assert!(
        !dir.join("c2.result.json").exists(),
        "c2 collected at startup"
    );
    assert!(dir.join("c3.result.json").exists(), "c3 survives");
}
