//! In-memory campaign event logs: the bridge between simulation
//! workers (producers) and event-stream handlers (consumers). Each
//! campaign owns one append-only [`EventLog`]; any number of HTTP
//! handlers can replay it from the start and then block for new lines,
//! so a client that connects mid-campaign still sees every event.

use std::sync::{Arc, Condvar, Mutex};

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Faults are queued or simulating.
    Running,
    /// Every fault completed; the result document exists.
    Done,
}

impl CampaignPhase {
    /// The wire name used in status documents.
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignPhase::Running => "running",
            CampaignPhase::Done => "done",
        }
    }
}

#[derive(Default)]
struct LogInner {
    lines: Vec<Arc<str>>,
    closed: bool,
}

/// An append-only, multi-consumer line log with blocking tail reads.
#[derive(Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends one line and wakes every waiting tail.
    pub fn push(&self, line: String) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.lines.push(Arc::from(line));
        self.grew.notify_all();
    }

    /// Marks the log complete: tails drain what is left and stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.closed = true;
        self.grew.notify_all();
    }

    /// Lines appended so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").lines.len()
    }

    /// Whether the log is still empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there are lines beyond `from` or the log closes,
    /// then returns the new lines and whether the log is closed with
    /// nothing further to read.
    pub fn wait_from(&self, from: usize) -> (Vec<Arc<str>>, bool) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        while inner.lines.len() <= from && !inner.closed {
            inner = self.grew.wait(inner).expect("event log poisoned");
        }
        let fresh: Vec<Arc<str>> = inner.lines.get(from..).unwrap_or(&[]).to_vec();
        let drained = inner.closed && from + fresh.len() == inner.lines.len();
        (fresh, drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_blocks_then_drains() {
        let log = Arc::new(EventLog::new());
        let tail = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut cursor = 0usize;
                loop {
                    let (lines, drained) = log.wait_from(cursor);
                    cursor += lines.len();
                    seen.extend(lines.iter().map(|l| l.to_string()));
                    if drained {
                        return seen;
                    }
                }
            })
        };
        for i in 0..5 {
            log.push(format!("line {i}"));
        }
        log.close();
        let seen = tail.join().unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], "line 0");
        assert_eq!(seen[4], "line 4");
    }

    #[test]
    fn late_tail_replays_from_start() {
        let log = EventLog::new();
        log.push("a".into());
        log.push("b".into());
        log.close();
        let (lines, drained) = log.wait_from(0);
        assert_eq!(lines.len(), 2);
        assert!(drained);
        let (lines, drained) = log.wait_from(2);
        assert!(lines.is_empty());
        assert!(drained);
    }
}
