//! `anafault-cli` — client for the `anafault-serve` campaign daemon.
//!
//! ```text
//! anafault-cli submit  --addr HOST:PORT --spec spec.json
//! anafault-cli tail    --addr HOST:PORT --id c1
//! anafault-cli run     --addr HOST:PORT --spec spec.json [--out result.json]
//! anafault-cli result  --addr HOST:PORT --id c1 [--wait SECS] [--out result.json]
//! anafault-cli direct  --spec spec.json [--out result.json]
//! anafault-cli diff    a.json b.json
//! anafault-cli dict    --addr HOST:PORT --id c1 [--out dict.json]
//! anafault-cli probe   dict.json <fault-id|first> --out probe.json
//! anafault-cli diagnose --addr HOST:PORT --id c1 --wave probe.json [--expect N]
//! anafault-cli metrics --addr HOST:PORT
//! anafault-cli health  --addr HOST:PORT
//! ```
//!
//! `direct` runs the spec in-process through `CampaignSession` — the
//! reference a served result must match bit-for-bit on verdicts; `diff`
//! performs that comparison (ignoring wall-clock fields) and exits 1 on
//! any mismatch. Together they are the acceptance check CI uses for the
//! kill-and-resume flow. `dict`/`probe`/`diagnose` drive the fault
//! dictionary: build it from a finished campaign, synthesize a probe
//! waveform from a recorded signature, and rank it — `--expect` turns
//! the last step into a self-diagnosis acceptance check (exit 1 when
//! the expected fault is not in the top-ranked ambiguity class).

use anafault::protocol::{self, CampaignSpec, DiagnoseRequest, StreamEvent};
use anafault::CampaignResult;
use serve::http;
use std::process::ExitCode;

const USAGE: &str = "\
usage: anafault-cli <command> [flags]

commands:
  submit   POST a campaign spec; prints the campaign id
  tail     stream a campaign's NDJSON events to stdout
  run      submit + tail; optionally write the final result with --out
  result   fetch a finished campaign's result (--wait SECS polls)
  direct   run the spec in-process (no daemon); the reference result
  diff     compare two result documents, ignoring timings; exit 1 on mismatch
  dict     build + persist a finished campaign's fault dictionary
  probe    synthesize a probe waveform file from a dictionary entry;
           prints the fault id (use `first` to pick the first entry)
  diagnose rank a waveform file against a campaign's dictionary;
           --expect N exits 1 unless fault N tops the ranking
  metrics  print the daemon's counter snapshot
  health   check the daemon is up

flags:
  --addr HOST:PORT   daemon address (submit/tail/run/result/dict/diagnose/metrics/health)
  --spec FILE        campaign spec document (submit/run/direct)
  --id ID            campaign id (tail/result/dict/diagnose)
  --out FILE         write the output document here (run/result/direct/dict/probe)
  --wait SECS        poll for up to SECS until the result is ready (result)
  --wave FILE        waveform document to diagnose (diagnose)
  --expect N         fault id that must top the ranking (diagnose)
";

struct Args {
    addr: Option<String>,
    spec: Option<String>,
    id: Option<String>,
    out: Option<String>,
    wait: Option<u64>,
    wave: Option<String>,
    expect: Option<usize>,
    positional: Vec<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spec: None,
        id: None,
        out: None,
        wait: None,
        wave: None,
        expect: None,
        positional: Vec::new(),
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--spec" => args.spec = Some(value("--spec")?),
            "--id" => args.id = Some(value("--id")?),
            "--out" => args.out = Some(value("--out")?),
            "--wait" => {
                args.wait = Some(
                    value("--wait")?
                        .parse()
                        .map_err(|_| "--wait needs an integer".to_string())?,
                );
            }
            "--wave" => args.wave = Some(value("--wave")?),
            "--expect" => {
                args.expect = Some(
                    value("--expect")?
                        .parse()
                        .map_err(|_| "--expect needs a fault id".to_string())?,
                );
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn need<'a>(value: &'a Option<String>, name: &str) -> Result<&'a str, String> {
    value
        .as_deref()
        .ok_or_else(|| format!("{name} is required"))
}

fn load_spec(path: &str) -> Result<CampaignSpec, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    CampaignSpec::from_json(&text).map_err(|e| format!("bad spec {path}: {e}"))
}

fn write_out(out: &Option<String>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn field(body: &str, key: &str) -> Option<String> {
    // Responses are flat single-level objects; a quoted-string scan is
    // enough to pull one field without a full parser here.
    let marker = format!("\"{key}\": \"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_string())
}

fn submit(addr: &str, spec_path: &str) -> Result<String, String> {
    let spec = load_spec(spec_path)?;
    let (status, body) = http::request(addr, "POST", "/campaigns", Some(&spec.to_json()))
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if status != 201 {
        return Err(format!("submit rejected ({status}): {}", body.trim()));
    }
    field(&body, "id").ok_or_else(|| format!("no campaign id in response: {}", body.trim()))
}

/// Streams events, echoing each line, and returns the final result if
/// the stream reached it (a killed daemon cuts the stream short).
fn tail(addr: &str, id: &str) -> Result<Option<CampaignResult>, String> {
    let mut result = None;
    let status = http::stream_request(
        addr,
        "GET",
        &format!("/campaigns/{id}/events"),
        None,
        |line| {
            println!("{line}");
            if let Ok(StreamEvent::Result(r)) = protocol::event_from_json(line) {
                result = Some(r);
            }
            Ok(())
        },
    )
    .map_err(|e| format!("stream from {addr} failed: {e}"))?;
    if status != 200 {
        return Err(format!("event stream rejected ({status})"));
    }
    Ok(result)
}

fn fetch_result(addr: &str, id: &str, wait: u64) -> Result<String, String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(wait);
    loop {
        let (status, body) = http::request(addr, "GET", &format!("/campaigns/{id}/result"), None)
            .map_err(|e| format!("cannot reach {addr}: {e}"))?;
        match status {
            200 => return Ok(body),
            409 if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            _ => return Err(format!("result not available ({status}): {}", body.trim())),
        }
    }
}

/// Verdict-level comparison of two result documents, ignoring the
/// wall-clock fields (`sim_seconds`, iteration counts, telemetry) that
/// legitimately differ between runs of the same campaign.
fn diff_results(a: &CampaignResult, b: &CampaignResult) -> Vec<String> {
    let mut problems = Vec::new();
    if a.observed != b.observed {
        problems.push(format!(
            "observed nodes differ: {:?} vs {:?}",
            a.observed, b.observed
        ));
    }
    if a.nominals != b.nominals {
        problems.push("nominal waveforms differ".to_string());
    }
    if a.records.len() != b.records.len() {
        problems.push(format!(
            "record counts differ: {} vs {}",
            a.records.len(),
            b.records.len()
        ));
        return problems;
    }
    for (ra, rb) in a.records.iter().zip(&b.records) {
        if ra.fault.id != rb.fault.id {
            problems.push(format!(
                "fault order differs: id {} vs id {}",
                ra.fault.id, rb.fault.id
            ));
        } else if ra.outcome != rb.outcome {
            problems.push(format!(
                "fault {} ({}): outcome {:?} vs {:?}",
                ra.fault.id, ra.fault.label, ra.outcome, rb.outcome
            ));
        }
    }
    if a.final_coverage() != b.final_coverage() {
        problems.push(format!(
            "coverage differs: {:?} vs {:?}",
            a.final_coverage(),
            b.final_coverage()
        ));
    }
    problems
}

fn run_command(command: &str, args: &Args) -> Result<ExitCode, String> {
    match command {
        "submit" => {
            let id = submit(need(&args.addr, "--addr")?, need(&args.spec, "--spec")?)?;
            println!("{id}");
            Ok(ExitCode::SUCCESS)
        }
        "tail" => {
            tail(need(&args.addr, "--addr")?, need(&args.id, "--id")?)?;
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let addr = need(&args.addr, "--addr")?;
            let id = submit(addr, need(&args.spec, "--spec")?)?;
            eprintln!("campaign {id}");
            let result = tail(addr, &id)?
                .ok_or_else(|| "event stream ended before the result".to_string())?;
            if args.out.is_some() {
                write_out(&args.out, &protocol::to_json(&result))?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "result" => {
            let text = fetch_result(
                need(&args.addr, "--addr")?,
                need(&args.id, "--id")?,
                args.wait.unwrap_or(0),
            )?;
            write_out(&args.out, &text)?;
            Ok(ExitCode::SUCCESS)
        }
        "direct" => {
            let mut spec = load_spec(need(&args.spec, "--spec")?)?;
            // Same admission-time dedup the daemon applies, so direct
            // and served runs of one spec stay verdict-comparable.
            let deduped = spec.dedup_faults();
            if deduped > 0 {
                eprintln!("dropped {deduped} duplicate fault(s)");
            }
            let campaign = spec
                .build_campaign()
                .map_err(|e| format!("bad campaign: {e}"))?;
            let mut result = campaign
                .session(&spec.faults)
                .run()
                .map_err(|e| format!("campaign failed: {e}"))?;
            result.telemetry.deduped_faults = deduped;
            write_out(&args.out, &protocol::to_json(&result))?;
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [pa, pb] = args.positional.as_slice() else {
                return Err("diff needs two result files".to_string());
            };
            let read = |p: &str| -> Result<CampaignResult, String> {
                let text =
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                protocol::from_json(&text).map_err(|e| format!("bad result {p}: {e}"))
            };
            let problems = diff_results(&read(pa)?, &read(pb)?);
            if problems.is_empty() {
                println!("results match: verdicts, nominals and coverage identical");
                Ok(ExitCode::SUCCESS)
            } else {
                for p in &problems {
                    eprintln!("mismatch: {p}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        "dict" => {
            let addr = need(&args.addr, "--addr")?;
            let id = need(&args.id, "--id")?;
            let (status, body) =
                http::request(addr, "POST", &format!("/campaigns/{id}/dictionary"), None)
                    .map_err(|e| format!("cannot reach {addr}: {e}"))?;
            if status != 201 {
                return Err(format!(
                    "dictionary build rejected ({status}): {}",
                    body.trim()
                ));
            }
            write_out(&args.out, &body)?;
            Ok(ExitCode::SUCCESS)
        }
        "probe" => {
            let [dict_path, which] = args.positional.as_slice() else {
                return Err("probe needs a dictionary file and a fault id (or `first`)".to_string());
            };
            let text = std::fs::read_to_string(dict_path)
                .map_err(|e| format!("cannot read dictionary {dict_path}: {e}"))?;
            let dict = protocol::dictionary_from_json(&text)
                .map_err(|e| format!("bad dictionary {dict_path}: {e}"))?;
            let fault_id = if which == "first" {
                dict.entries
                    .first()
                    .ok_or_else(|| "dictionary has no entries".to_string())?
                    .fault_id
            } else {
                which
                    .parse()
                    .map_err(|_| format!("`{which}` is not a fault id (or `first`)"))?
            };
            let waves = dict
                .probe_waves(fault_id)
                .ok_or_else(|| format!("fault {fault_id} is not in the dictionary"))?;
            // The campaign tag is filled in by `diagnose --id`.
            let request = DiagnoseRequest {
                campaign: String::new(),
                waves,
            };
            let out = need(&args.out, "--out")?;
            std::fs::write(out, request.to_json())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("{fault_id}");
            Ok(ExitCode::SUCCESS)
        }
        "diagnose" => {
            let addr = need(&args.addr, "--addr")?;
            let id = need(&args.id, "--id")?;
            let wave_path = need(&args.wave, "--wave")?;
            let text = std::fs::read_to_string(wave_path)
                .map_err(|e| format!("cannot read waves {wave_path}: {e}"))?;
            let mut request = DiagnoseRequest::from_json(&text)
                .map_err(|e| format!("bad wave document {wave_path}: {e}"))?;
            request.campaign = id.to_string();
            let mut first = None;
            let status = http::stream_request(
                addr,
                "POST",
                "/diagnose",
                Some(&request.to_json()),
                |line| {
                    println!("{line}");
                    if first.is_none() {
                        first = Some(line.to_string());
                    }
                    Ok(())
                },
            )
            .map_err(|e| format!("cannot reach {addr}: {e}"))?;
            if status != 200 {
                return Err(format!("diagnosis rejected ({status})"));
            }
            let first = first.ok_or_else(|| "daemon returned no candidates".to_string())?;
            let (_, top) = protocol::candidate_from_json(&first)
                .map_err(|e| format!("bad candidate line: {e}"))?;
            if let Some(expected) = args.expect {
                if !top.fault_ids.contains(&expected) {
                    eprintln!(
                        "fault {expected} is not in the top-ranked ambiguity class {:?}",
                        top.fault_ids
                    );
                    return Ok(ExitCode::FAILURE);
                }
                eprintln!("top-1 ambiguity class contains fault {expected}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let (status, body) =
                http::request(need(&args.addr, "--addr")?, "GET", "/metrics", None)
                    .map_err(|e| format!("cannot reach daemon: {e}"))?;
            if status != 200 {
                return Err(format!("metrics rejected ({status})"));
            }
            println!("{body}");
            Ok(ExitCode::SUCCESS)
        }
        "health" => {
            let (status, body) =
                http::request(need(&args.addr, "--addr")?, "GET", "/healthz", None)
                    .map_err(|e| format!("cannot reach daemon: {e}"))?;
            if status != 200 {
                return Err(format!("unhealthy ({status}): {}", body.trim()));
            }
            println!("{}", body.trim());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("anafault-cli: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run_command(command, &args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("anafault-cli: {message}");
            ExitCode::FAILURE
        }
    }
}
