//! `anafault-serve` — the campaign daemon.
//!
//! ```text
//! anafault-serve --addr 127.0.0.1:4817 --state-dir ./state
//! ```
//!
//! Runs until killed. On restart with the same `--state-dir` it resumes
//! any campaign that was interrupted, replaying checkpointed faults and
//! simulating only the remainder.

use serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: anafault-serve [flags]

  --addr HOST:PORT      listen address (default 127.0.0.1:4817; port 0 picks one)
  --state-dir DIR       spec/checkpoint/result directory (default ./anafault-state)
  --workers N           simulation worker threads (default: one per core)
  --http-workers N      HTTP handler threads (default 8)
  --max-campaigns N     concurrent running campaigns before 429 (default 8)
  --fault-budget N      per-client in-flight fault cap before 429 (default 100000)
  --retain N            keep only the N most recent completed campaigns'
                        state files (default: keep everything)
  --help                print this help
";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4817".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")?),
            "--workers" => {
                config.sim_workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--http-workers" => {
                config.http_workers = value("--http-workers")?
                    .parse()
                    .map_err(|_| "--http-workers needs an integer".to_string())?;
            }
            "--max-campaigns" => {
                config.max_campaigns = value("--max-campaigns")?
                    .parse()
                    .map_err(|_| "--max-campaigns needs an integer".to_string())?;
            }
            "--fault-budget" => {
                config.client_fault_budget = value("--fault-budget")?
                    .parse()
                    .map_err(|_| "--fault-budget needs an integer".to_string())?;
            }
            "--retain" => {
                config.retain = Some(
                    value("--retain")?
                        .parse()
                        .map_err(|_| "--retain needs an integer".to_string())?,
                );
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("anafault-serve: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    cat_telemetry::set_enabled(true);
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("anafault-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "anafault-serve listening on {} (state dir {})",
        server.addr(),
        server.state_dir().display()
    );
    loop {
        std::thread::park();
    }
}
