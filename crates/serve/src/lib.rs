//! # serve — campaign-as-a-service
//!
//! The paper's fault-simulation flow is a batch job; this crate is the
//! deployment story on top of it: `anafault-serve`, a long-running
//! daemon that accepts campaign specifications over HTTP, shards the
//! fault list across a fixed pool of simulation workers, streams one
//! progress line per completed fault as chunked NDJSON, and checkpoints
//! every completed fault to disk so a killed daemon resumes in-flight
//! campaigns on restart — replaying finished faults instead of
//! re-simulating them.
//!
//! Everything is dependency-free, in the repo's style: a blocking
//! HTTP/1.1 server over [`std::net::TcpListener`] (no tokio), the
//! hand-rolled `anafault::protocol` JSON, and `cat_telemetry` counters
//! (`anafault.serve.*`). The `anafault-cli` binary is the matching
//! client: it submits a spec, tails the event stream and writes the
//! final result — and doubles as the end-to-end acceptance test in CI.
//!
//! See `docs/serving.md` for the wire formats, checkpoint layout and
//! resume semantics.

pub mod checkpoint;
pub mod http;
pub mod server;
pub mod state;

pub use server::{Server, ServerConfig};

use cat_telemetry::StaticCounter;

/// HTTP requests handled (any method, any path).
pub(crate) static SERVE_REQUESTS: StaticCounter = StaticCounter::new("anafault.serve.requests");
/// Campaigns admitted through `POST /campaigns`.
pub(crate) static SERVE_CAMPAIGNS_STARTED: StaticCounter =
    StaticCounter::new("anafault.serve.campaigns_started");
/// In-flight campaigns picked back up from the state directory at
/// daemon startup.
pub(crate) static SERVE_CAMPAIGNS_RESUMED: StaticCounter =
    StaticCounter::new("anafault.serve.campaigns_resumed");
/// Completed faults replayed from checkpoints instead of re-simulated.
pub(crate) static SERVE_FAULTS_REPLAYED: StaticCounter =
    StaticCounter::new("anafault.serve.faults_replayed");
/// Bytes written to `GET /campaigns/<id>/events` streams (chunk framing
/// included).
pub(crate) static SERVE_STREAM_BYTES: StaticCounter =
    StaticCounter::new("anafault.serve.stream_bytes");
