//! The campaign server: admission, sharded execution, NDJSON event
//! streams and checkpoint/resume.
//!
//! One [`Server`] owns three thread families, all fixed-size and
//! spawned at startup (no per-request threads):
//!
//! * an **acceptor** pushing connections onto a bounded hand-off queue;
//! * **HTTP workers** popping connections and serving one request each
//!   (an event-stream tail occupies its worker until the campaign
//!   finishes — size the pool for the expected number of tails);
//! * **simulation workers** popping `(campaign, fault index)` jobs from
//!   a shared work queue — faults from every admitted campaign shard
//!   across the same pool, so one giant campaign cannot starve the
//!   daemon and small ones finish early.
//!
//! Durability: the spec document is persisted before the campaign is
//! admitted, every completed fault is appended to the campaign's
//! NDJSON checkpoint, and the final result document is written with a
//! tmp-file + rename. On startup the server scans the state directory
//! and resumes every campaign that has a spec but no result, replaying
//! the checkpoint (completed faults are **not** re-simulated) and
//! queueing only the remainder.

use crate::checkpoint;
use crate::http::{self, ChunkedStream, Request};
use crate::state::{CampaignPhase, EventLog};
use anafault::campaign::CampaignProgress;
use anafault::protocol::{self, CampaignSpec};
use anafault::{Fault, FaultRecord, PreparedCampaign};
use cat_telemetry::json::quote;
use diagnose::Diagnoser;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration. `Default` gives a loopback ephemeral port and
/// conservative quotas; binaries override from flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4817`; port 0 picks one.
    pub addr: String,
    /// Directory for specs, checkpoints and results.
    pub state_dir: PathBuf,
    /// Simulation worker threads; 0 = one per core.
    pub sim_workers: usize,
    /// HTTP handler threads (each event-stream tail holds one).
    pub http_workers: usize,
    /// Maximum concurrently *running* campaigns; admission above this
    /// answers 429.
    pub max_campaigns: usize,
    /// Maximum faults a single client may have in running campaigns;
    /// admission above this answers 429. Campaigns without a `client`
    /// share the anonymous bucket.
    pub client_fault_budget: usize,
    /// State-dir retention: keep the checkpoints, results and
    /// dictionaries of the `n` most recent *completed* campaigns and
    /// delete the rest — applied at startup and whenever a campaign
    /// completes. `None` keeps everything.
    pub retain: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("anafault-state"),
            sim_workers: 0,
            http_workers: 8,
            max_campaigns: 8,
            client_fault_budget: 100_000,
            retain: None,
        }
    }
}

/// Mutable per-campaign completion state, under one lock so checkpoint
/// lines, slots and the completed counter can never disagree.
struct RunProgress {
    slots: Vec<Option<FaultRecord>>,
    completed: usize,
    checkpoint: File,
}

/// One admitted campaign.
struct CampaignRun {
    id: String,
    client: String,
    faults: Vec<Fault>,
    prepared: PreparedCampaign,
    progress: Mutex<RunProgress>,
    /// Records replayed from the checkpoint at admission.
    replayed: u64,
    /// Duplicate fault entries trimmed from the spec at admission,
    /// patched into the final result's telemetry.
    deduped: u64,
    resumed: bool,
    started: Instant,
    log: EventLog,
    phase: Mutex<CampaignPhase>,
}

impl CampaignRun {
    fn phase(&self) -> CampaignPhase {
        *self.phase.lock().expect("phase poisoned")
    }

    fn completed(&self) -> usize {
        self.progress.lock().expect("progress poisoned").completed
    }

    /// One-line status document for listings and `GET /campaigns/<id>`.
    fn status_json(&self) -> String {
        format!(
            "{{\"id\": {}, \"phase\": {}, \"completed\": {}, \"total\": {}, \
             \"replayed_faults\": {}, \"resumed\": {}, \"client\": {}}}",
            quote(&self.id),
            quote(self.phase().as_str()),
            self.completed(),
            self.faults.len(),
            self.replayed,
            self.resumed,
            quote(&self.client)
        )
    }
}

/// Quotas reserved at admission, released when a campaign finishes.
#[derive(Default)]
struct Quota {
    running_campaigns: usize,
    client_faults: BTreeMap<String, usize>,
}

struct Inner {
    config: ServerConfig,
    campaigns: Mutex<BTreeMap<String, Arc<CampaignRun>>>,
    queue: Mutex<VecDeque<(Arc<CampaignRun>, usize)>>,
    queue_grew: Condvar,
    connections: Mutex<VecDeque<TcpStream>>,
    connections_grew: Condvar,
    quota: Mutex<Quota>,
    next_id: AtomicUsize,
}

/// A running campaign server. Worker threads live for the process —
/// dropping the handle does not stop them (the daemon's lifetime *is*
/// the process; tests rely on process exit).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
}

impl Server {
    /// Binds, resumes any interrupted campaigns from the state
    /// directory, and spawns the worker pools.
    ///
    /// # Errors
    /// Bind/listen failures and an unreadable state directory.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        fs::create_dir_all(&config.state_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let sim_workers = if config.sim_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.sim_workers
        };
        let http_workers = config.http_workers.max(1);
        let inner = Arc::new(Inner {
            config,
            campaigns: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_grew: Condvar::new(),
            connections: Mutex::new(VecDeque::new()),
            connections_grew: Condvar::new(),
            quota: Mutex::new(Quota::default()),
            next_id: AtomicUsize::new(1),
        });
        inner.resume_state_dir()?;
        inner.gc_state_dir();
        for _ in 0..sim_workers {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.sim_worker_loop());
        }
        for _ in 0..http_workers {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.http_worker_loop());
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let mut q = inner.connections.lock().expect("connections poisoned");
                    q.push_back(stream);
                    inner.connections_grew.notify_one();
                }
            });
        }
        Ok(Server { inner, addr })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The state directory in use.
    pub fn state_dir(&self) -> &Path {
        &self.inner.config.state_dir
    }
}

impl Inner {
    fn spec_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.spec.json"))
    }

    fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.ndjson"))
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.result.json"))
    }

    fn dict_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join(format!("{id}.dict.json"))
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    fn sim_worker_loop(self: Arc<Self>) {
        loop {
            let (run, index) = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    q = self.queue_grew.wait(q).expect("queue poisoned");
                }
            };
            let record = run.prepared.simulate_fault(&run.faults[index]);
            self.complete_fault(&run, index, record);
        }
    }

    fn complete_fault(&self, run: &Arc<CampaignRun>, index: usize, record: FaultRecord) {
        let finished = {
            let mut p = run.progress.lock().expect("progress poisoned");
            p.completed += 1;
            let event = CampaignProgress {
                index,
                completed: p.completed,
                total: run.faults.len(),
                record,
            };
            let line = protocol::progress_to_json(&event);
            if let Err(e) = checkpoint::append_line(&mut p.checkpoint, &line) {
                eprintln!(
                    "anafault-serve: checkpoint write failed for {}: {e}",
                    run.id
                );
            }
            p.slots[index] = Some(event.record);
            run.log.push(line);
            p.completed == run.faults.len()
        };
        if finished {
            self.finalize(run);
        }
    }

    fn finalize(&self, run: &Arc<CampaignRun>) {
        let records: Vec<FaultRecord> = {
            let mut p = run.progress.lock().expect("progress poisoned");
            p.slots
                .iter_mut()
                .map(|s| s.take().expect("every fault completed"))
                .collect()
        };
        // Wall-clock here spans this process's share of the campaign
        // only; a resumed campaign's pre-kill time is not recoverable.
        let mut result =
            run.prepared
                .finish(records, run.replayed, run.started.elapsed().as_secs_f64());
        result.telemetry.deduped_faults = run.deduped;
        let text = protocol::to_json(&result);
        let path = self.result_path(&run.id);
        let tmp = self.config.state_dir.join(format!("{}.result.tmp", run.id));
        let written = fs::write(&tmp, &text).and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = written {
            eprintln!("anafault-serve: result write failed for {}: {e}", run.id);
        }
        // Flip the phase before closing the stream: a client that sees
        // the stream end must never read "still running" (409) from the
        // result endpoint afterwards.
        *run.phase.lock().expect("phase poisoned") = CampaignPhase::Done;
        run.log.push(protocol::result_event_json(&result));
        run.log.close();
        {
            let mut quota = self.quota.lock().expect("quota poisoned");
            quota.running_campaigns = quota.running_campaigns.saturating_sub(1);
            if let Some(n) = quota.client_faults.get_mut(&run.client) {
                *n = n.saturating_sub(run.faults.len());
                if *n == 0 {
                    quota.client_faults.remove(&run.client);
                }
            }
        }
        self.gc_state_dir();
    }

    /// Applies the retention policy: the `retain` most recent completed
    /// campaigns (by numeric id) keep their state files; older completed
    /// ones lose spec, checkpoint, result and dictionary, and leave the
    /// in-memory table. Running campaigns and ids outside the daemon's
    /// `cN` scheme are never touched.
    fn gc_state_dir(&self) {
        let Some(retain) = self.config.retain else {
            return;
        };
        let Ok(dir) = fs::read_dir(&self.config.state_dir) else {
            return;
        };
        let mut done: Vec<(usize, String)> = Vec::new();
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(".result.json") else {
                continue;
            };
            if let Some(n) = id.strip_prefix('c').and_then(|n| n.parse::<usize>().ok()) {
                done.push((n, id.to_string()));
            }
        }
        done.sort_unstable_by_key(|d| std::cmp::Reverse(d.0));
        let mut campaigns = self.campaigns.lock().expect("campaigns poisoned");
        for (_, id) in done.into_iter().skip(retain) {
            for path in [
                self.spec_path(&id),
                self.checkpoint_path(&id),
                self.result_path(&id),
                self.dict_path(&id),
            ] {
                fs::remove_file(path).ok();
            }
            if campaigns
                .get(&id)
                .is_some_and(|run| run.phase() == CampaignPhase::Done)
            {
                campaigns.remove(&id);
            }
        }
    }

    /// Registers a prepared campaign, replays checkpointed records,
    /// rewrites the checkpoint to a clean prefix and queues the
    /// remaining faults. Quota must already be reserved.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        self: &Arc<Self>,
        id: String,
        client: String,
        faults: Vec<Fault>,
        prepared: PreparedCampaign,
        replayed_records: &[FaultRecord],
        deduped: u64,
        resumed: bool,
    ) -> io::Result<Arc<CampaignRun>> {
        let total = faults.len();
        let mut done: BTreeMap<usize, &FaultRecord> = BTreeMap::new();
        for record in replayed_records {
            done.entry(record.fault.id).or_insert(record);
        }
        // Rewrite the checkpoint from scratch: this renumbers the
        // replayed lines 1..k, drops any torn tail, and leaves the file
        // open for the live appends that follow.
        let mut checkpoint_file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.checkpoint_path(&id))?;
        let log = EventLog::new();
        let mut slots: Vec<Option<FaultRecord>> = vec![None; total];
        let mut completed = 0usize;
        for (i, fault) in faults.iter().enumerate() {
            if let Some(&record) = done.get(&fault.id) {
                completed += 1;
                let line = protocol::progress_to_json(&CampaignProgress {
                    index: i,
                    completed,
                    total,
                    record: record.clone(),
                });
                checkpoint::append_line(&mut checkpoint_file, &line)?;
                log.push(line);
                slots[i] = Some(record.clone());
            }
        }
        let replayed = completed as u64;
        if resumed {
            crate::SERVE_CAMPAIGNS_RESUMED.inc();
            crate::SERVE_FAULTS_REPLAYED.add(replayed);
        } else {
            crate::SERVE_CAMPAIGNS_STARTED.inc();
        }
        let run = Arc::new(CampaignRun {
            id: id.clone(),
            client,
            faults,
            prepared,
            progress: Mutex::new(RunProgress {
                slots,
                completed,
                checkpoint: checkpoint_file,
            }),
            replayed,
            deduped,
            resumed,
            started: Instant::now(),
            log,
            phase: Mutex::new(CampaignPhase::Running),
        });
        self.campaigns
            .lock()
            .expect("campaigns poisoned")
            .insert(id, Arc::clone(&run));
        let remaining: Vec<usize> = (0..total)
            .filter(|&i| run.progress.lock().expect("progress poisoned").slots[i].is_none())
            .collect();
        if remaining.is_empty() {
            self.finalize(&run);
        } else {
            let mut q = self.queue.lock().expect("queue poisoned");
            for i in remaining {
                q.push_back((Arc::clone(&run), i));
            }
            self.queue_grew.notify_all();
        }
        Ok(run)
    }

    /// Scans the state directory at startup and resumes every campaign
    /// that has a spec but no result document.
    fn resume_state_dir(self: &Arc<Self>) -> io::Result<()> {
        let mut max_id = 0usize;
        let mut pending: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.config.state_dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(".spec.json") else {
                continue;
            };
            if let Some(n) = id.strip_prefix('c').and_then(|n| n.parse::<usize>().ok()) {
                max_id = max_id.max(n);
            }
            if !self.result_path(id).exists() {
                pending.push(id.to_string());
            }
        }
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        for id in pending {
            if let Err(e) = self.resume_one(&id) {
                eprintln!("anafault-serve: cannot resume campaign {id}: {e}");
            }
        }
        Ok(())
    }

    fn resume_one(self: &Arc<Self>, id: &str) -> io::Result<()> {
        let text = fs::read_to_string(self.spec_path(id))?;
        let mut spec = CampaignSpec::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Specs are persisted post-dedup, so this is a no-op for the
        // daemon's own files — it matters only for hand-placed specs.
        let deduped = spec.dedup_faults();
        let campaign = spec
            .build_campaign()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let prepared = campaign
            .prepare()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let faults = prepared.budgeted(&spec.faults).to_vec();
        let client = spec.client.clone().unwrap_or_default();
        let replay = checkpoint::load(&self.checkpoint_path(id))?;
        if replay.torn {
            eprintln!(
                "anafault-serve: checkpoint for {id} had a torn tail; {} clean records kept",
                replay.records.len()
            );
        }
        self.reserve_quota_unchecked(&client, faults.len());
        self.launch(
            id.to_string(),
            client,
            faults,
            prepared,
            &replay.records,
            deduped,
            true,
        )?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Quotas
    // -----------------------------------------------------------------

    /// Admission-time reservation; answers `Err` with the reason when a
    /// quota would be exceeded.
    fn try_reserve_quota(&self, client: &str, faults: usize) -> Result<(), String> {
        let mut quota = self.quota.lock().expect("quota poisoned");
        if quota.running_campaigns >= self.config.max_campaigns {
            return Err(format!(
                "campaign quota exhausted: {} running, limit {}",
                quota.running_campaigns, self.config.max_campaigns
            ));
        }
        let in_flight = quota.client_faults.get(client).copied().unwrap_or(0);
        if in_flight + faults > self.config.client_fault_budget {
            return Err(format!(
                "fault budget exhausted for client `{client}`: {in_flight} in flight + {faults} \
                 requested > {}",
                self.config.client_fault_budget
            ));
        }
        quota.running_campaigns += 1;
        *quota.client_faults.entry(client.to_string()).or_insert(0) += faults;
        Ok(())
    }

    /// Resume-time reservation: restarting the daemon never rejects its
    /// own interrupted campaigns, even if quotas were lowered.
    fn reserve_quota_unchecked(&self, client: &str, faults: usize) {
        let mut quota = self.quota.lock().expect("quota poisoned");
        quota.running_campaigns += 1;
        *quota.client_faults.entry(client.to_string()).or_insert(0) += faults;
    }

    fn release_quota(&self, client: &str, faults: usize) {
        let mut quota = self.quota.lock().expect("quota poisoned");
        quota.running_campaigns = quota.running_campaigns.saturating_sub(1);
        if let Some(n) = quota.client_faults.get_mut(client) {
            *n = n.saturating_sub(faults);
            if *n == 0 {
                quota.client_faults.remove(client);
            }
        }
    }

    // -----------------------------------------------------------------
    // HTTP
    // -----------------------------------------------------------------

    fn http_worker_loop(self: Arc<Self>) {
        loop {
            let stream = {
                let mut q = self.connections.lock().expect("connections poisoned");
                loop {
                    if let Some(s) = q.pop_front() {
                        break s;
                    }
                    q = self.connections_grew.wait(q).expect("connections poisoned");
                }
            };
            // Client-side failures (disconnected tails, malformed
            // requests) are per-connection events, not daemon errors.
            let _ = self.handle_connection(stream);
        }
    }

    fn handle_connection(self: &Arc<Self>, stream: TcpStream) -> io::Result<()> {
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) => {
                let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
                return http::respond_json(&mut writer, 400, &body);
            }
        };
        crate::SERVE_REQUESTS.inc();
        self.route(&request, &mut writer)
    }

    fn route(self: &Arc<Self>, request: &Request, out: &mut TcpStream) -> io::Result<()> {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => http::respond_json(out, 200, "{\"ok\": true}\n"),
            ("GET", ["metrics"]) => self.metrics(out),
            ("POST", ["campaigns"]) => self.submit(&request.body, out),
            ("GET", ["campaigns"]) => self.list(out),
            ("GET", ["campaigns", id]) => self.status(id, out),
            ("GET", ["campaigns", id, "events"]) => self.events(id, out),
            ("GET", ["campaigns", id, "result"]) => self.result(id, out),
            ("POST", ["campaigns", id, "dictionary"]) => self.build_dict(id, out),
            ("POST", ["diagnose"]) => self.diagnose(&request.body, out),
            (_, ["healthz" | "metrics" | "campaigns" | "diagnose", ..]) => {
                http::respond_json(out, 405, "{\"error\": \"method not allowed\"}\n")
            }
            _ => http::respond_json(out, 404, "{\"error\": \"no such endpoint\"}\n"),
        }
    }

    fn metrics(&self, out: &mut TcpStream) -> io::Result<()> {
        let values = cat_telemetry::global().counter_values();
        let mut body = String::from("{\n");
        let n = values.len();
        for (i, (name, value)) in values.into_iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            body.push_str(&format!("  {}: {value}{comma}\n", quote(&name)));
        }
        body.push_str("}\n");
        http::respond_json(out, 200, &body)
    }

    fn submit(self: &Arc<Self>, body: &str, out: &mut TcpStream) -> io::Result<()> {
        let mut spec = match CampaignSpec::from_json(body) {
            Ok(spec) => spec,
            Err(e) => {
                let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
                return http::respond_json(out, 400, &body);
            }
        };
        if let Some(tag) = &spec.client {
            if !valid_client_tag(tag) {
                return http::respond_json(
                    out,
                    422,
                    "{\"error\": \"client tag must be 1-64 printable ASCII bytes\"}\n",
                );
            }
        }
        // Dedup before the spec is persisted, so a resume of this
        // campaign replays exactly the admitted fault list.
        let deduped = spec.dedup_faults();
        let client = spec.client.clone().unwrap_or_default();
        let budgeted = spec
            .max_faults
            .unwrap_or(spec.faults.len())
            .min(spec.faults.len());
        if let Err(reason) = self.try_reserve_quota(&client, budgeted) {
            let body = format!("{{\"error\": {}}}\n", quote(&reason));
            return http::respond_json(out, 429, &body);
        }
        let id = format!("c{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let admitted = (|| -> Result<Arc<CampaignRun>, String> {
            fs::write(self.spec_path(&id), spec.to_json()).map_err(|e| e.to_string())?;
            let campaign = spec.build_campaign().map_err(|e| e.to_string())?;
            let prepared = campaign
                .prepare()
                .map_err(|e| format!("nominal simulation failed: {e}"))?;
            let faults = prepared.budgeted(&spec.faults).to_vec();
            self.launch(
                id.clone(),
                client.clone(),
                faults,
                prepared,
                &[],
                deduped,
                false,
            )
            .map_err(|e| e.to_string())
        })();
        match admitted {
            Ok(run) => {
                let body = format!(
                    "{{\"id\": {}, \"total\": {}}}\n",
                    quote(&run.id),
                    run.faults.len()
                );
                http::respond_json(out, 201, &body)
            }
            Err(reason) => {
                self.release_quota(&client, budgeted);
                fs::remove_file(self.spec_path(&id)).ok();
                fs::remove_file(self.checkpoint_path(&id)).ok();
                let body = format!("{{\"error\": {}}}\n", quote(&reason));
                http::respond_json(out, 422, &body)
            }
        }
    }

    fn list(&self, out: &mut TcpStream) -> io::Result<()> {
        let campaigns = self.campaigns.lock().expect("campaigns poisoned");
        let mut entries: Vec<String> = campaigns.values().map(|run| run.status_json()).collect();
        // Campaigns finished in an earlier daemon life exist only on
        // disk; list them as done.
        if let Ok(dir) = fs::read_dir(&self.config.state_dir) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(id) = name.strip_suffix(".result.json") else {
                    continue;
                };
                if !campaigns.contains_key(id) {
                    entries.push(format!("{{\"id\": {}, \"phase\": \"done\"}}", quote(id)));
                }
            }
        }
        drop(campaigns);
        let body = format!("{{\"campaigns\": [{}]}}\n", entries.join(", "));
        http::respond_json(out, 200, &body)
    }

    fn find(&self, id: &str) -> Option<Arc<CampaignRun>> {
        self.campaigns
            .lock()
            .expect("campaigns poisoned")
            .get(id)
            .cloned()
    }

    fn status(&self, id: &str, out: &mut TcpStream) -> io::Result<()> {
        if let Some(run) = self.find(id) {
            let body = format!("{}\n", run.status_json());
            return http::respond_json(out, 200, &body);
        }
        if self.result_path(id).exists() {
            let body = format!("{{\"id\": {}, \"phase\": \"done\"}}\n", quote(id));
            return http::respond_json(out, 200, &body);
        }
        http::respond_json(out, 404, "{\"error\": \"no such campaign\"}\n")
    }

    fn events(&self, id: &str, out: &mut TcpStream) -> io::Result<()> {
        if let Some(run) = self.find(id) {
            let mut stream = ChunkedStream::start(out)?;
            let mut cursor = 0usize;
            loop {
                let (lines, drained) = run.log.wait_from(cursor);
                cursor += lines.len();
                for line in &lines {
                    crate::SERVE_STREAM_BYTES.add(stream.send_line(line)?);
                }
                if drained {
                    crate::SERVE_STREAM_BYTES.add(stream.finish()?);
                    return Ok(());
                }
            }
        }
        // Finished in an earlier daemon life: replay the files.
        let result_text = match fs::read_to_string(self.result_path(id)) {
            Ok(text) => text,
            Err(_) => {
                return http::respond_json(out, 404, "{\"error\": \"no such campaign\"}\n");
            }
        };
        let result = protocol::from_json(&result_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut stream = ChunkedStream::start(out)?;
        if let Ok(replay) = checkpoint::load(&self.checkpoint_path(id)) {
            let total = result.records.len();
            for (k, record) in replay.records.iter().enumerate() {
                let line = protocol::progress_to_json(&CampaignProgress {
                    index: k,
                    completed: k + 1,
                    total,
                    record: record.clone(),
                });
                crate::SERVE_STREAM_BYTES.add(stream.send_line(&line)?);
            }
        }
        crate::SERVE_STREAM_BYTES.add(stream.send_line(&protocol::result_event_json(&result))?);
        crate::SERVE_STREAM_BYTES.add(stream.finish()?);
        Ok(())
    }

    fn result(&self, id: &str, out: &mut TcpStream) -> io::Result<()> {
        if let Some(run) = self.find(id) {
            if run.phase() != CampaignPhase::Done {
                let body = format!(
                    "{{\"error\": \"campaign still running\", \"completed\": {}, \"total\": {}}}\n",
                    run.completed(),
                    run.faults.len()
                );
                return http::respond_json(out, 409, &body);
            }
        }
        match fs::read_to_string(self.result_path(id)) {
            Ok(text) => http::respond_json(out, 200, &text),
            Err(_) => http::respond_json(out, 404, "{\"error\": \"no such campaign\"}\n"),
        }
    }

    /// `POST /campaigns/<id>/dictionary`: builds the fault dictionary
    /// from the campaign's result document, persists it next to the
    /// result (tmp + rename, like the result itself) and returns it.
    fn build_dict(&self, id: &str, out: &mut TcpStream) -> io::Result<()> {
        if let Some(run) = self.find(id) {
            if run.phase() != CampaignPhase::Done {
                let body = format!(
                    "{{\"error\": \"campaign still running\", \"completed\": {}, \"total\": {}}}\n",
                    run.completed(),
                    run.faults.len()
                );
                return http::respond_json(out, 409, &body);
            }
        }
        let text = match fs::read_to_string(self.result_path(id)) {
            Ok(text) => text,
            Err(_) => {
                return http::respond_json(out, 404, "{\"error\": \"no such campaign\"}\n");
            }
        };
        let result = protocol::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let dict = match anafault::build_dictionary(&result) {
            Ok(dict) => dict,
            Err(e) => {
                let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
                return http::respond_json(out, 422, &body);
            }
        };
        let doc = protocol::dictionary_to_json(&dict);
        let tmp = self.config.state_dir.join(format!("{id}.dict.tmp"));
        let written = fs::write(&tmp, &doc).and_then(|()| fs::rename(&tmp, self.dict_path(id)));
        if let Err(e) = written {
            eprintln!("anafault-serve: dictionary write failed for {id}: {e}");
            let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
            return http::respond_json(out, 500, &body);
        }
        http::respond_json(out, 201, &doc)
    }

    /// `POST /diagnose`: ranks the request's waveforms against a
    /// previously built (and persisted) dictionary, streaming one
    /// NDJSON candidate line per ambiguity class, best match first.
    fn diagnose(&self, body: &str, out: &mut TcpStream) -> io::Result<()> {
        let request = match protocol::DiagnoseRequest::from_json(body) {
            Ok(request) => request,
            Err(e) => {
                let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
                return http::respond_json(out, 400, &body);
            }
        };
        let text = match fs::read_to_string(self.dict_path(&request.campaign)) {
            Ok(text) => text,
            Err(_) => {
                return http::respond_json(
                    out,
                    404,
                    "{\"error\": \"no dictionary for campaign; POST /campaigns/<id>/dictionary first\"}\n",
                );
            }
        };
        let dict = protocol::dictionary_from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let ranked = match Diagnoser::new(&dict).rank(&request.waves) {
            Ok(ranked) => ranked,
            Err(e) => {
                let body = format!("{{\"error\": {}}}\n", quote(&e.to_string()));
                return http::respond_json(out, 422, &body);
            }
        };
        let mut stream = ChunkedStream::start(out)?;
        for (k, candidate) in ranked.iter().enumerate() {
            let line = protocol::candidate_json(k + 1, candidate);
            crate::SERVE_STREAM_BYTES.add(stream.send_line(&line)?);
        }
        crate::SERVE_STREAM_BYTES.add(stream.finish()?);
        Ok(())
    }
}

/// Client tags land in quota tables, log lines and state-dir metadata;
/// keep them short and plainly printable.
fn valid_client_tag(tag: &str) -> bool {
    !tag.is_empty() && tag.len() <= 64 && tag.bytes().all(|b| (0x20..=0x7e).contains(&b))
}
