//! NDJSON checkpoint files: one progress line per completed fault,
//! appended (and flushed) the moment the fault finishes. A daemon that
//! is SIGKILLed mid-campaign replays the file on restart and only
//! simulates the faults that are missing.
//!
//! The reader is deliberately tolerant of the one corruption a kill can
//! produce: a torn final line (the process died mid-`write`). Parsing
//! stops at the first line that does not parse as a progress event, and
//! the byte length of the valid prefix is reported so the writer can
//! truncate the tear away before appending again.

use anafault::protocol::{self, StreamEvent};
use anafault::FaultRecord;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// What a checkpoint file replays to.
#[derive(Debug, Default)]
pub struct Replay {
    /// The completed-fault records, in the order they were appended.
    pub records: Vec<FaultRecord>,
    /// Byte length of the valid line prefix; anything beyond is torn.
    pub valid_bytes: u64,
    /// Whether trailing bytes had to be discarded.
    pub torn: bool,
}

/// Reads a checkpoint file. A missing file replays to nothing — a
/// campaign that never completed a fault has no checkpoint lines yet.
///
/// # Errors
/// Only real I/O failures; torn or foreign trailing data is reported
/// through [`Replay::torn`], not as an error.
pub fn load(path: &Path) -> io::Result<Replay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    }
    // A tear can cut a multi-byte character; only the valid UTF-8
    // prefix is even considered.
    let text = match std::str::from_utf8(&bytes) {
        Ok(t) => t,
        Err(e) => std::str::from_utf8(&bytes[..e.valid_up_to()]).expect("prefix is valid"),
    };
    let mut replay = Replay {
        torn: text.len() < bytes.len(),
        ..Replay::default()
    };
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        match protocol::event_from_json(line.trim_end()) {
            Ok(StreamEvent::Progress(progress)) => {
                replay.records.push(progress.record);
                offset += line.len();
                // A final line without its newline parsed completely —
                // it is durable, but the writer must restore the
                // terminator before appending more.
                if !line.ends_with('\n') {
                    replay.torn = true;
                }
            }
            _ => {
                replay.torn = true;
                break;
            }
        }
    }
    replay.valid_bytes = offset as u64;
    Ok(replay)
}

/// Appends one progress line and flushes it to the OS, so the line
/// survives a SIGKILL of the daemon (though not a power loss — the
/// trade keeps per-fault overhead at one small write).
///
/// # Errors
/// Propagates the underlying write failures.
pub fn append_line(file: &mut File, line: &str) -> io::Result<()> {
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anafault::campaign::CampaignProgress;
    use anafault::{Fault, FaultEffect, FaultOutcome, FaultTelemetry};

    fn record(id: usize) -> FaultRecord {
        FaultRecord {
            fault: Fault::new(
                id,
                format!("BRI {id}"),
                FaultEffect::Short {
                    a: "a".into(),
                    b: "b".into(),
                },
            ),
            outcome: FaultOutcome::NotDetected,
            sim_seconds: 0.25 * id as f64,
            newton_iterations: 10 * id as u64,
            telemetry: FaultTelemetry::default(),
            signature: None,
        }
    }

    fn line(id: usize) -> String {
        protocol::progress_to_json(&CampaignProgress {
            index: id,
            completed: id + 1,
            total: 4,
            record: record(id),
        })
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("anafault-ckpt-{}-{tag}.ndjson", std::process::id()))
    }

    #[test]
    fn round_trips_and_tolerates_torn_tail() {
        let path = temp_path("torn");
        let mut text = format!("{}\n{}\n", line(0), line(1));
        let clean_len = text.len() as u64;
        let torn = line(2);
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, &text).unwrap();

        let replay = load(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].fault.id, 0);
        assert_eq!(replay.records[1].fault.id, 1);
        assert_eq!(replay.records[1].sim_seconds, 0.25);
        assert!(replay.torn);
        assert_eq!(replay.valid_bytes, clean_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_file_and_missing_file() {
        let path = temp_path("clean");
        std::fs::write(&path, format!("{}\n", line(0))).unwrap();
        let replay = load(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(!replay.torn);
        std::fs::remove_file(&path).ok();

        let replay = load(&temp_path("never-written")).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.torn);
        assert_eq!(replay.valid_bytes, 0);
    }

    #[test]
    fn tear_inside_multibyte_character() {
        let path = temp_path("utf8");
        let mut bytes = format!("{}\n", line(0)).into_bytes();
        // The µ in a torn label, cut after its first UTF-8 byte.
        bytes.extend_from_slice(b"{\"event\": \"progress\", \"record\": {\"label\": \"\xc2");
        std::fs::write(&path, &bytes).unwrap();
        let replay = load(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn);
        std::fs::remove_file(&path).ok();
    }
}
