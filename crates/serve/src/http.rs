//! Minimal blocking HTTP/1.1 — exactly the subset the campaign API
//! needs: request-line + headers + `Content-Length` bodies on the way
//! in; fixed responses and chunked transfer-encoding (for NDJSON event
//! streams) on the way out, plus the matching client side used by
//! `anafault-cli` and the integration tests. No keep-alive: every
//! exchange is one connection, which keeps the server loop trivial and
//! is fine at campaign granularity.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on a request body (campaign specs embed netlists and
/// fault lists; 8 MiB is orders of magnitude above the real thing).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ….
    pub method: String,
    /// Path only (no query parsing — the API does not use queries).
    pub path: String,
    /// The body, empty when none was sent.
    pub body: String,
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Reads one request, or `None` when the peer closed the connection
/// before sending one.
///
/// # Errors
/// I/O failures, oversized heads/bodies and malformed framing.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut head = 0usize;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    head += line.len();
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line lacks a path"))?;
    let request = (method.to_string(), path.to_string());

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        head += header.len();
        if head > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Ok(Some(Request {
        method: request.0,
        path: request.1,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes a complete (non-chunked) response.
///
/// # Errors
/// Propagates the underlying write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    )?;
    stream.flush()
}

/// Writes a JSON response.
///
/// # Errors
/// See [`respond`].
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, "application/json", body)
}

/// A chunked NDJSON response in progress: one chunk per line, so a
/// tailing client sees each completed fault the moment it lands.
pub struct ChunkedStream<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedStream<'a> {
    /// Sends the response head and returns the line writer.
    ///
    /// # Errors
    /// Propagates the underlying write failures.
    pub fn start(stream: &'a mut TcpStream) -> io::Result<ChunkedStream<'a>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(ChunkedStream { stream })
    }

    /// Sends one NDJSON line (the newline is appended here) as one
    /// chunk and returns the bytes put on the wire, framing included.
    ///
    /// # Errors
    /// Propagates the underlying write failures — a disconnected tail
    /// client surfaces here.
    pub fn send_line(&mut self, line: &str) -> io::Result<u64> {
        let payload = line.len() + 1;
        let head = format!("{payload:x}\r\n");
        write!(self.stream, "{head}{line}\n\r\n")?;
        self.stream.flush()?;
        Ok((head.len() + payload + 2) as u64)
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    /// Propagates the underlying write failures.
    pub fn finish(self) -> io::Result<u64> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()?;
        Ok(5)
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// One client exchange: connect, send, read the whole response.
/// Handles both `Content-Length` and chunked bodies.
///
/// # Errors
/// Connection and framing failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut collected = String::new();
    let status = stream_request(addr, method, path, body, |line| {
        collected.push_str(line);
        collected.push('\n');
        Ok(())
    })?;
    // Non-NDJSON bodies come back through the same path; the trailing
    // newline added per line is harmless for JSON parsing but not for
    // byte-exact use, so strip the one we know we added.
    if !collected.is_empty() {
        collected.pop();
    }
    Ok((status, collected))
}

/// One client exchange with a streaming body: `on_line` runs once per
/// received line, as lines arrive (chunk boundaries are transparent).
/// Returns the response status.
///
/// # Errors
/// Connection and framing failures, and anything `on_line` raises.
pub fn stream_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    mut on_line: impl FnMut(&str) -> io::Result<()>,
) -> io::Result<u16> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?,
                );
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let mut text = String::new();
    if chunked {
        let mut pending = String::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                // The daemon died mid-stream; surface what arrived so
                // far, then report the cut.
                break;
            }
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            pending.push_str(&String::from_utf8(chunk).map_err(|_| bad("chunk is not UTF-8"))?);
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                on_line(line.trim_end_matches(['\n', '\r']))?;
            }
        }
        if !pending.is_empty() {
            on_line(&pending)?;
        }
        return Ok(status);
    }
    if let Some(n) = content_length {
        let mut body = vec![0u8; n];
        reader.read_exact(&mut body)?;
        text = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    } else {
        reader.read_to_string(&mut text)?;
    }
    for line in text.lines() {
        on_line(line)?;
    }
    Ok(status)
}
