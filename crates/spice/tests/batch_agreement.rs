//! Property tests for the batched lockstep transient engine: for random
//! RC ladders and random fault-style variants, batched execution at
//! every lane width must agree with the per-variant scalar path —
//! bitwise-identical sample times and `|Δx| < 1e-9` voltages — or eject
//! the lane (never silently diverge).

use proptest::prelude::*;
use spice::parser::parse_netlist;
use spice::tran::{tran_with_cached, TranSpec};
use spice::{run_group, BatchGroup, Circuit, LaneJob, PatternCache};

/// Sample grid shared by all runs: 20 full steps.
fn spec() -> TranSpec {
    TranSpec::new(1e-6, 2e-5).with_uic()
}

/// An RC ladder netlist with one section per resistance in `rs`
/// (`rs.len() + 2` unknowns — enough to clear the sparse cutoff).
fn ladder_netlist(rs: &[i64]) -> String {
    let mut s = String::from("ladder\nv1 in 0 pulse(0 5 0 1u 1u 40u 100u)\n");
    let mut prev = "in".to_string();
    for (i, r) in rs.iter().enumerate() {
        s.push_str(&format!("r{i} {prev} n{i} {r}\nc{i} n{i} 0 1n ic=0\n"));
        prev = format!("n{i}");
    }
    s.push_str(".end\n");
    s
}

/// Maps a raw random pair onto two *distinct* ladder node indices.
fn node_pair(p: usize, q: usize, n: usize) -> (usize, usize) {
    let a = p % n;
    let b = (a + 1 + q % (n - 1)) % n;
    (a, b)
}

/// The scalar reference: every accepted sample of one circuit.
fn scalar_samples(ckt: &Circuit, cache: &PatternCache) -> Vec<(f64, Vec<f64>)> {
    let mut samples = Vec::new();
    tran_with_cached(ckt, &spec(), Some(cache), |t, x| {
        samples.push((t, x.to_vec()));
        true
    })
    .expect("scalar reference simulates");
    samples
}

/// Runs `variants` through one batch group at `width` and checks every
/// completed lane against its scalar reference.
fn check_group(variants: &[Circuit], border: bool, width: usize) {
    let cache = PatternCache::new();
    let refs: Vec<&Circuit> = variants.iter().collect();
    let Some(group) = BatchGroup::build(&refs, border) else {
        // Refusing to build is a legal outcome (scalar fallback), not
        // a correctness failure.
        return;
    };
    let jobs: Vec<LaneJob<'_>> = refs
        .iter()
        .enumerate()
        .map(|(id, c)| LaneJob { id, circuit: c })
        .collect();
    let mut batched: Vec<Vec<(f64, Vec<f64>)>> = vec![Vec::new(); jobs.len()];
    let (reports, _) = run_group(&group, width, &spec(), &jobs, Some(&cache), |id, t, x| {
        batched[id].push((t, x.to_vec()));
        true
    });
    for report in &reports {
        if !report.completed {
            continue; // ejected lanes re-run scalar by contract
        }
        let reference = scalar_samples(&variants[report.id], &cache);
        let got = &batched[report.id];
        assert_eq!(
            got.len(),
            reference.len(),
            "lane {} sample count (width {width})",
            report.id
        );
        for ((tb, xb), (ts, xs)) in got.iter().zip(&reference) {
            assert_eq!(tb, ts, "lane {} sample time (width {width})", report.id);
            for (vb, vs) in xb.iter().zip(xs) {
                assert!(
                    (vb - vs).abs() < 1e-9,
                    "lane {} width {width}: |Δx| = {}",
                    report.id,
                    (vb - vs).abs()
                );
            }
        }
    }
}

fn arb_ladder() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(500i64..5000, 12..16)
}

fn arb_shorts() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..1000, 0usize..1000), 2..6)
}

proptest! {
    /// Plain groups: each variant bridges a random node pair with a
    /// 10 Ω resistor (the paper's resistor short model).
    #[test]
    fn resistor_variants_agree_at_every_width(
        rs in arb_ladder(),
        shorts in arb_shorts(),
    ) {
        let n = rs.len();
        let base = ladder_netlist(&rs);
        let variants: Vec<Circuit> = shorts
            .iter()
            .map(|&(p, q)| {
                let (a, b) = node_pair(p, q, n);
                let faulted = base.replace(".end", &format!("rf n{a} n{b} 10\n.end"));
                parse_netlist(&faulted).expect("variant parses")
            })
            .collect();
        for width in [1usize, 2, 4, 8, 16] {
            check_group(&variants, false, width);
        }
    }

    /// Bordered groups: each variant shorts a random node pair with an
    /// ideal 0 V source (the paper's source short model) appended as
    /// the final element, exercising the rank-1 border solve.
    #[test]
    fn source_variants_agree_at_every_width(
        rs in arb_ladder(),
        shorts in arb_shorts(),
    ) {
        let n = rs.len();
        let base = ladder_netlist(&rs);
        let variants: Vec<Circuit> = shorts
            .iter()
            .map(|&(p, q)| {
                let (a, b) = node_pair(p, q, n);
                let faulted = base.replace(".end", &format!("vf n{a} n{b} dc 0\n.end"));
                parse_netlist(&faulted).expect("variant parses")
            })
            .collect();
        for width in [1usize, 2, 4, 8, 16] {
            check_group(&variants, true, width);
        }
    }
}
