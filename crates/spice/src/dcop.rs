//! Newton–Raphson nonlinear solve and the DC operating point.
//!
//! The operating point tries plain Newton first, then gmin stepping
//! (sweeping a node-shunt conductance down in decades), then source
//! stepping (ramping all independent sources from zero) — the classic
//! SPICE fallback ladder.

use crate::devices::{
    stamp_all_planned, stamp_linear, stamp_nonlinear, StampParams, StampPlan, UnknownMap,
};
use crate::mna::Stamper;
use crate::netlist::Circuit;
use crate::sparse::{MnaSolver, PatternCache, SolverBackend, SolverKind};
use crate::SpiceError;

/// Newton iteration controls.
#[derive(Debug, Clone)]
pub struct NewtonOpts {
    /// Maximum iterations per solve.
    pub max_iter: usize,
    /// Absolute voltage tolerance (V).
    pub vabstol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Maximum voltage change applied per iteration (damping clamp).
    pub max_step: f64,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        NewtonOpts {
            max_iter: 200,
            vabstol: 1e-6,
            reltol: 1e-3,
            max_step: 1.0,
        }
    }
}

/// Runs damped Newton–Raphson from the initial guess `x0`. Returns the
/// solution together with the number of iterations spent (the kernel
/// work measure the runtime experiments report).
///
/// Convenience wrapper constructing a fresh solver and stamp plan per
/// call; the hot paths build both once and call [`solve_newton_in`].
///
/// # Errors
/// [`SpiceError::NoConvergence`] after `max_iter` iterations,
/// [`SpiceError::Singular`] when the Jacobian factorisation fails.
pub fn solve_newton(
    ckt: &Circuit,
    map: &UnknownMap,
    x0: &[f64],
    params: &StampParams<'_>,
    opts: &NewtonOpts,
    analysis: &str,
) -> Result<(Vec<f64>, usize), SpiceError> {
    let plan = StampPlan::new(ckt)?;
    let mut solver = MnaSolver::for_circuit(ckt, map, SolverKind::Auto, None);
    solve_newton_in(&mut solver, ckt, map, &plan, x0, params, opts, analysis)
}

/// Runs damped Newton–Raphson inside a caller-owned solver: the
/// symbolic factorisation (sparse path) and the resolved stamp plan
/// are reused across every iteration — and, when the caller loops over
/// timesteps or gmin/source steps, across all of those solves too.
///
/// On the sparse path the step-constant (linear) stamps are assembled
/// once up front and restored by memcpy each iteration; only the
/// MOSFET linearisations are re-stamped per iterate.
///
/// # Errors
/// [`SpiceError::NoConvergence`] after `max_iter` iterations,
/// [`SpiceError::Singular`] when the Jacobian factorisation fails.
#[allow(clippy::too_many_arguments)]
pub fn solve_newton_in(
    solver: &mut MnaSolver,
    ckt: &Circuit,
    map: &UnknownMap,
    plan: &StampPlan<'_>,
    x0: &[f64],
    params: &StampParams<'_>,
    opts: &NewtonOpts,
    analysis: &str,
) -> Result<(Vec<f64>, usize), SpiceError> {
    let mut x = x0.to_vec();
    if let Some(sys) = solver.sparse_mut() {
        sys.clear();
        stamp_linear(ckt, map, sys, params);
        sys.snapshot_baseline();
    }
    for iter in 0..opts.max_iter {
        match solver.backend_mut() {
            SolverBackend::Sparse(sys) => {
                sys.restore_baseline();
                stamp_nonlinear(ckt, map, plan, &x, sys, params);
            }
            SolverBackend::Dense(sys) => {
                stamp_all_planned(ckt, map, plan, &x, sys, params);
            }
        }
        let x_new = solver.solve(analysis)?;
        // A non-finite iterate means the solve overflowed (e.g.
        // inf − inf in back-substitution). NaN comparisons would
        // otherwise read as "converged" and hand a poisoned solution
        // to the caller — fail the analysis instead.
        if x_new.iter().any(|v| !v.is_finite()) {
            NONFINITE_ABORTS.inc();
            return Err(SpiceError::NoConvergence {
                analysis: analysis.to_string(),
                detail: format!("non-finite solution at iteration {}", iter + 1),
            });
        }
        if newton_update(&mut x, &x_new, opts) {
            return Ok((x, iter + 1));
        }
    }
    CONVERGENCE_FAILURES.inc();
    Err(SpiceError::NoConvergence {
        analysis: analysis.to_string(),
        detail: format!("no convergence in {} iterations", opts.max_iter),
    })
}

/// One damped Newton update: moves `x` towards `x_new` with each
/// component's step clamped to `opts.max_step`, and reports whether the
/// *unclamped* update already satisfied the mixed relative/absolute
/// tolerance. Shared with the batched engine ([`crate::batch`]) so a
/// lane's convergence decision is bit-identical to the scalar path.
pub(crate) fn newton_update(x: &mut [f64], x_new: &[f64], opts: &NewtonOpts) -> bool {
    let mut converged = true;
    for i in 0..x.len() {
        let dx = x_new[i] - x[i];
        let limited = dx.clamp(-opts.max_step, opts.max_step);
        if dx.abs() > opts.reltol * x_new[i].abs() + opts.vabstol {
            converged = false;
        }
        x[i] += limited;
    }
    converged
}

/// Newton runs that exhausted `max_iter` (includes rungs of the dcop
/// ladder that are *expected* to fail before a later rung succeeds).
static CONVERGENCE_FAILURES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.newton.convergence_failures");
/// Newton runs aborted on a non-finite iterate.
static NONFINITE_ABORTS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.newton.nonfinite_aborts");
static DCOP_RUNS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.dcop.runs");

/// Computes the DC operating point (capacitors open, sources at their
/// DC values).
///
/// # Errors
/// Propagates the last failure when plain Newton, gmin stepping and
/// source stepping all fail.
pub fn dc_operating_point(ckt: &Circuit) -> Result<Vec<f64>, SpiceError> {
    dc_operating_point_with(ckt, SolverKind::Auto, None)
}

/// [`dc_operating_point`] with an explicit solver choice and an
/// optional campaign-wide [`PatternCache`]. One solver (one symbolic
/// factorisation) serves the whole fallback ladder — plain Newton, all
/// gmin decades and all source steps share the matrix structure.
///
/// # Errors
/// Propagates the last failure when plain Newton, gmin stepping and
/// source stepping all fail.
pub fn dc_operating_point_with(
    ckt: &Circuit,
    kind: SolverKind,
    cache: Option<&PatternCache>,
) -> Result<Vec<f64>, SpiceError> {
    let _span = cat_telemetry::span!("spice.dcop");
    DCOP_RUNS.inc();
    let map = UnknownMap::new(ckt);
    let plan = StampPlan::new(ckt)?;
    let mut solver = MnaSolver::for_circuit(ckt, &map, kind, cache);
    let out = dcop_ladder(ckt, &map, &plan, &mut solver);
    solver.stats().flush_to_telemetry();
    out
}

/// The fallback ladder itself, over a caller-owned solver.
fn dcop_ladder(
    ckt: &Circuit,
    map: &UnknownMap,
    plan: &StampPlan<'_>,
    solver: &mut MnaSolver,
) -> Result<Vec<f64>, SpiceError> {
    let opts = NewtonOpts::default();
    let zeros = vec![0.0; map.dim()];

    // 1. Plain Newton from zero.
    let base = StampParams::default();
    if let Ok((x, _)) = solve_newton_in(solver, ckt, map, plan, &zeros, &base, &opts, "dc op") {
        return Ok(x);
    }

    // 2. gmin stepping: strong shunts make the circuit nearly linear;
    //    relax them decade by decade, carrying the solution.
    let mut x = zeros.clone();
    let mut ok = true;
    let mut gshunt = 1e-2;
    while gshunt >= 1e-12 {
        let params = StampParams {
            gshunt,
            ..StampParams::default()
        };
        match solve_newton_in(
            solver,
            ckt,
            map,
            plan,
            &x,
            &params,
            &opts,
            "dc op (gmin stepping)",
        ) {
            Ok((next, _)) => x = next,
            Err(_) => {
                ok = false;
                break;
            }
        }
        gshunt /= 10.0;
    }
    if ok {
        let params = StampParams::default();
        if let Ok((final_x, _)) = solve_newton_in(
            solver,
            ckt,
            map,
            plan,
            &x,
            &params,
            &opts,
            "dc op (gmin final)",
        ) {
            return Ok(final_x);
        }
    }

    // 3. Source stepping: ramp the supplies from 10 % to 100 %.
    let mut x = zeros;
    for pct in 1..=10 {
        let params = StampParams {
            source_scale: pct as f64 / 10.0,
            ..StampParams::default()
        };
        x = solve_newton_in(
            solver,
            ckt,
            map,
            plan,
            &x,
            &params,
            &opts,
            "dc op (source stepping)",
        )?
        .0;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{ElementKind, MosModel, Waveform};

    #[test]
    fn non_finite_iterate_fails_instead_of_converging() {
        // An infinite source drive overflows the solution. NaN/inf
        // comparisons must not read as "converged": the solve has to
        // report NoConvergence, not hand back a poisoned vector.
        let mut c = Circuit::new("inf");
        let a = c.node("a");
        c.add(
            "I1",
            vec![Circuit::GROUND, a],
            ElementKind::Isource {
                wave: Waveform::Dc(f64::INFINITY),
            },
        );
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        let map = UnknownMap::new(&c);
        let err = solve_newton(
            &c,
            &map,
            &vec![0.0; map.dim()],
            &StampParams::default(),
            &NewtonOpts::default(),
            "inf test",
        )
        .unwrap_err();
        assert!(matches!(err, SpiceError::NoConvergence { .. }), "{err:?}");
    }

    #[test]
    fn linear_divider_op() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(10.0),
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "R2",
            vec![b, Circuit::GROUND],
            ElementKind::Resistor { r: 3e3 },
        );
        let x = dc_operating_point(&c).unwrap();
        let map = UnknownMap::new(&c);
        assert!((map.voltage(&x, b) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // NMOS with resistive pull-up: input low -> out high; input high
        // -> out pulled low.
        let build = |vin: f64| {
            let mut c = Circuit::new("inv");
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_model(MosModel::default_nmos("n1"));
            c.add(
                "Vdd",
                vec![vdd, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(5.0),
                },
            );
            c.add(
                "Vin",
                vec![inp, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(vin),
                },
            );
            c.add("RL", vec![vdd, out], ElementKind::Resistor { r: 10e3 });
            c.add(
                "M1",
                vec![out, inp, Circuit::GROUND, Circuit::GROUND],
                ElementKind::Mosfet {
                    model: "n1".into(),
                    w: 10e-6,
                    l: 1e-6,
                },
            );
            c
        };
        let c_low = build(0.0);
        let x = dc_operating_point(&c_low).unwrap();
        let map = UnknownMap::new(&c_low);
        let out = c_low.find_node("out").unwrap();
        assert!(
            (map.voltage(&x, out) - 5.0).abs() < 1e-3,
            "off transistor leaves out high"
        );

        let c_high = build(5.0);
        let x = dc_operating_point(&c_high).unwrap();
        let v_out = map.voltage(&x, out);
        assert!(v_out < 0.5, "on transistor pulls out low, got {v_out}");
    }

    #[test]
    fn cmos_inverter_rails() {
        let build = |vin: f64| {
            let mut c = Circuit::new("cmosinv");
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_model(MosModel::default_nmos("n1"));
            c.add_model(MosModel::default_pmos("p1"));
            c.add(
                "Vdd",
                vec![vdd, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(5.0),
                },
            );
            c.add(
                "Vin",
                vec![inp, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(vin),
                },
            );
            c.add(
                "Mn",
                vec![out, inp, Circuit::GROUND, Circuit::GROUND],
                ElementKind::Mosfet {
                    model: "n1".into(),
                    w: 10e-6,
                    l: 1e-6,
                },
            );
            c.add(
                "Mp",
                vec![out, inp, vdd, vdd],
                ElementKind::Mosfet {
                    model: "p1".into(),
                    w: 25e-6,
                    l: 1e-6,
                },
            );
            c
        };
        let c0 = build(0.0);
        let map = UnknownMap::new(&c0);
        let out = c0.find_node("out").unwrap();
        let x = dc_operating_point(&c0).unwrap();
        assert!(map.voltage(&x, out) > 4.9, "low in -> high out");
        let c5 = build(5.0);
        let x = dc_operating_point(&c5).unwrap();
        assert!(map.voltage(&x, out) < 0.1, "high in -> low out");
    }

    #[test]
    fn diode_connected_nmos_settles_near_vth() {
        // Current source into a diode-connected NMOS: v ≈ vth + vov.
        let mut c = Circuit::new("diode");
        let d = c.node("d");
        c.add_model(MosModel::default_nmos("n1"));
        c.add(
            "I1",
            vec![Circuit::GROUND, d],
            ElementKind::Isource {
                wave: Waveform::Dc(50e-6),
            },
        );
        c.add(
            "M1",
            vec![d, d, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "n1".into(),
                w: 10e-6,
                l: 1e-6,
            },
        );
        let x = dc_operating_point(&c).unwrap();
        let map = UnknownMap::new(&c);
        let v = map.voltage(&x, d);
        // vov = sqrt(2 I / beta) ≈ sqrt(2*50µ/800µ) ≈ 0.35 V, vth = 0.8.
        assert!(v > 0.9 && v < 1.5, "diode voltage {v}");
    }

    #[test]
    fn floating_node_handled_by_gshunt() {
        // A node connected only through a capacitor would be singular
        // without the gshunt.
        let mut c = Circuit::new("float");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(1.0),
            },
        );
        c.add(
            "C1",
            vec![a, b],
            ElementKind::Capacitor { c: 1e-12, ic: None },
        );
        let x = dc_operating_point(&c).unwrap();
        let map = UnknownMap::new(&c);
        assert!(
            map.voltage(&x, b).abs() < 1.0,
            "floating node pulled to ground"
        );
    }
}
