//! Transient analysis.
//!
//! Fixed-step backward-Euler by default (the paper ran a 400-step
//! transient), with a trapezoidal option and automatic local step
//! halving when Newton fails at a switching event.

use crate::dcop::{dc_operating_point, solve_newton, NewtonOpts};
use crate::devices::{CapCompanion, StampParams, UnknownMap};
use crate::netlist::{Circuit, ElementKind, NodeId};
use crate::waveform::Wave;
use crate::SpiceError;

/// Numerical integration method for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, damps ringing; the default (matches the
    /// robustness-first choice fault simulation needs).
    #[default]
    BackwardEuler,
    /// Trapezoidal: second-order accurate, can ring on hard switching.
    Trapezoidal,
}

/// Transient analysis specification.
#[derive(Debug, Clone)]
pub struct TranSpec {
    /// Output/time step (s).
    pub tstep: f64,
    /// Stop time (s).
    pub tstop: f64,
    /// Skip the DC operating point and start from `.ic`/element `ic=`
    /// values (SPICE `UIC`).
    pub uic: bool,
    /// Integration method.
    pub integrator: Integrator,
    /// Newton controls.
    pub newton: NewtonOpts,
    /// Maximum depth of step halving when a timestep fails to converge
    /// (each level halves dt; 12 levels ≈ 4096× refinement).
    pub max_halvings: u32,
}

impl TranSpec {
    /// A spec with the given step and stop time and default options.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        TranSpec {
            tstep,
            tstop,
            uic: false,
            integrator: Integrator::default(),
            newton: NewtonOpts::default(),
            max_halvings: 12,
        }
    }

    /// Same spec but starting from initial conditions (UIC).
    pub fn with_uic(mut self) -> Self {
        self.uic = true;
        self
    }

    /// Same spec with trapezoidal integration.
    pub fn with_trapezoidal(mut self) -> Self {
        self.integrator = Integrator::Trapezoidal;
        self
    }
}

/// Result of a transient run: one [`Wave`] per non-ground node.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    names: Vec<String>,
    data: Vec<Vec<f64>>, // indexed [node-1][sample]
    /// Newton iterations consumed over the whole run (a work measure —
    /// the paper compares fault-model runtimes via such counters).
    pub newton_iterations: u64,
}

impl TranResult {
    /// Sample time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Names of recorded nodes.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// The waveform of a node by name (`None` when unknown).
    pub fn wave(&self, node: &str) -> Option<Wave> {
        let idx = self
            .names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(node))?;
        Some(Wave::new(self.times.clone(), self.data[idx].clone()))
    }
}

/// One integrable capacitance: an explicit capacitor element or a MOS
/// gate capacitance (Meyer-style constant partition: Cgs = ⅔·Cox·W·L,
/// Cgd = ⅓·Cox·W·L). Gate caps both smooth switching edges physically
/// and give the Newton iteration a continuation path through
/// regenerative transitions (Schmitt triggers, latches).
struct CapInstance {
    a: NodeId,
    b: NodeId,
    c: f64,
    /// Initial condition (UIC), explicit capacitors only.
    ic: Option<f64>,
}

/// Integration state per capacitance instance.
struct CapState {
    v_prev: f64,
    i_prev: f64,
}

/// Collects all capacitance instances of the circuit.
fn cap_instances(ckt: &Circuit) -> Vec<CapInstance> {
    let mut out = Vec::new();
    for e in ckt.elements() {
        match &e.kind {
            ElementKind::Capacitor { c, ic } => out.push(CapInstance {
                a: e.nodes[0],
                b: e.nodes[1],
                c: *c,
                ic: *ic,
            }),
            ElementKind::Mosfet { model, w, l } => {
                let Some(m) = ckt.models.get(&model.to_ascii_lowercase()) else {
                    continue;
                };
                if m.cox <= 0.0 {
                    continue;
                }
                let c_total = m.cox * w * l;
                let (d, g, s) = (e.nodes[0], e.nodes[1], e.nodes[2]);
                out.push(CapInstance {
                    a: g,
                    b: s,
                    c: c_total * 2.0 / 3.0,
                    ic: None,
                });
                out.push(CapInstance {
                    a: g,
                    b: d,
                    c: c_total / 3.0,
                    ic: None,
                });
            }
            _ => {}
        }
    }
    out
}

/// Runs a transient analysis.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran(ckt: &Circuit, spec: &TranSpec) -> Result<TranResult, SpiceError> {
    tran_with(ckt, spec, |_, _| true)
}

/// Runs a transient analysis, streaming every accepted output sample to
/// `on_sample` as `(time, node_voltages)` — `node_voltages[i]` is the
/// voltage of node id `i + 1`, matching [`TranResult`]'s column order.
/// The callback sees the initial point first, then one call per output
/// step; returning `false` stops the run early and yields the samples
/// accepted so far. This is the kernel-side half of fault dropping: a
/// campaign can abandon the remaining simulation time the moment a
/// fault is detected.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran_with<F>(
    ckt: &Circuit,
    spec: &TranSpec,
    mut on_sample: F,
) -> Result<TranResult, SpiceError>
where
    F: FnMut(f64, &[f64]) -> bool,
{
    ckt.validate().map_err(SpiceError::Elaboration)?;
    let map = UnknownMap::new(ckt);
    let dim = map.dim();

    let instances = cap_instances(ckt);

    // Initial solution.
    let mut x = if spec.uic {
        let mut x0 = vec![0.0; dim];
        for &(node, v) in &ckt.initial_conditions {
            if let Some(i) = map.node_var(node) {
                x0[i] = v;
            }
        }
        // Element-level ic= on capacitors: force the first terminal's
        // node voltage difference when one side is grounded.
        for inst in &instances {
            if let Some(v) = inst.ic {
                if inst.b == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.a) {
                        x0[i] = v;
                    }
                } else if inst.a == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.b) {
                        x0[i] = -v;
                    }
                }
            }
        }
        x0
    } else {
        dc_operating_point(ckt)?
    };

    // Capacitance states from the initial solution.
    let mut caps: Vec<CapState> = instances
        .iter()
        .map(|inst| CapState {
            v_prev: map.voltage(&x, inst.a) - map.voltage(&x, inst.b),
            i_prev: 0.0,
        })
        .collect();

    let n_nodes = ckt.node_count() - 1;
    let mut times = vec![0.0];
    let mut data: Vec<Vec<f64>> = (0..n_nodes).map(|i| vec![x[i]]).collect();
    let mut newton_iterations: u64 = 0;

    let steps = (spec.tstop / spec.tstep).round() as usize;
    let mut t = 0.0;
    if on_sample(t, &x[..n_nodes]) {
        for step in 0..steps {
            let t_next = t + spec.tstep;
            // The very first step always integrates with backward Euler:
            // the trapezoidal companion needs a valid previous current,
            // which is unknown at t = 0 (standard SPICE start-up
            // behaviour).
            let integ = if step == 0 {
                Integrator::BackwardEuler
            } else {
                spec.integrator
            };
            advance(
                ckt,
                &map,
                spec,
                integ,
                &instances,
                &mut x,
                &mut caps,
                t,
                t_next,
                0,
                &mut newton_iterations,
            )?;
            t = t_next;
            times.push(t);
            for (i, column) in data.iter_mut().enumerate() {
                column.push(x[i]);
            }
            if !on_sample(t, &x[..n_nodes]) {
                break;
            }
        }
    }

    let names = (1..ckt.node_count())
        .map(|n| ckt.node_name(n).to_string())
        .collect();
    Ok(TranResult {
        times,
        names,
        data,
        newton_iterations,
    })
}

/// Advances the solution from `t0` to `t1`, recursively halving on
/// Newton failure.
#[allow(clippy::too_many_arguments)]
fn advance(
    ckt: &Circuit,
    map: &UnknownMap,
    spec: &TranSpec,
    integrator: Integrator,
    instances: &[CapInstance],
    x: &mut Vec<f64>,
    caps: &mut Vec<CapState>,
    t0: f64,
    t1: f64,
    depth: u32,
    newton_iterations: &mut u64,
) -> Result<(), SpiceError> {
    let dt = t1 - t0;
    // Build companions for this step.
    let companions: Vec<CapCompanion> = instances
        .iter()
        .zip(caps.iter())
        .map(|(inst, st)| {
            let (geq, ieq) = match integrator {
                Integrator::BackwardEuler => {
                    let geq = inst.c / dt;
                    (geq, -geq * st.v_prev)
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * inst.c / dt;
                    (geq, -geq * st.v_prev - st.i_prev)
                }
            };
            CapCompanion {
                a: inst.a,
                b: inst.b,
                geq,
                ieq,
            }
        })
        .collect();
    let params = StampParams {
        time: t1,
        cap_companions: Some(&companions),
        ..StampParams::default()
    };
    // Newton ladder: the configured options first, then a heavily
    // damped retry (regenerative switching points), then step halving.
    let solved = solve_newton(ckt, map, x, &params, &spec.newton, "tran").or_else(|_| {
        let damped = NewtonOpts {
            max_iter: spec.newton.max_iter * 3,
            max_step: 0.1,
            ..spec.newton.clone()
        };
        solve_newton(ckt, map, x, &params, &damped, "tran (damped)")
    });
    match solved {
        Ok((next, iters)) => {
            *newton_iterations += iters as u64;
            // Commit capacitance states.
            for ((inst, st), cc) in instances.iter().zip(caps.iter_mut()).zip(&companions) {
                let v_new = map.voltage(&next, inst.a) - map.voltage(&next, inst.b);
                st.i_prev = cc.geq * v_new + cc.ieq;
                st.v_prev = v_new;
            }
            *x = next;
            Ok(())
        }
        Err(e) => {
            if depth >= spec.max_halvings {
                return Err(e);
            }
            let tm = 0.5 * (t0 + t1);
            advance(
                ckt,
                map,
                spec,
                integrator,
                instances,
                x,
                caps,
                t0,
                tm,
                depth + 1,
                newton_iterations,
            )?;
            advance(
                ckt,
                map,
                spec,
                integrator,
                instances,
                x,
                caps,
                tm,
                t1,
                depth + 1,
                newton_iterations,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{ElementKind, MosModel, Waveform};

    #[test]
    fn rc_charging_curve() {
        // R=1k, C=1µF, step to 1V: v(t) = 1 - exp(-t/RC), tau = 1 ms.
        let mut c = Circuit::new("rc");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 1.0,
                    td: 0.0,
                    tr: 1e-9,
                    tf: 1e-9,
                    pw: 1.0,
                    period: f64::INFINITY,
                },
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "C1",
            vec![b, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(0.0),
            },
        );
        let spec = TranSpec::new(10e-6, 10e-3).with_uic();
        let res = tran(&c, &spec).unwrap();
        let w = res.wave("b").unwrap();
        // After one tau: 63.2 %.
        let v_tau = w.value_at(1e-3);
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        // Settles to 1.0 after 10 tau.
        assert!((w.last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trapezoidal_is_more_accurate_on_rc() {
        let build = || {
            let mut c = Circuit::new("rc");
            let a = c.node("a");
            let b = c.node("b");
            c.add(
                "V1",
                vec![a, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(1.0),
                },
            );
            c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
            c.add(
                "C1",
                vec![b, Circuit::GROUND],
                ElementKind::Capacitor {
                    c: 1e-6,
                    ic: Some(0.0),
                },
            );
            c
        };
        let exact = 1.0 - (-1.0f64).exp(); // at t = tau
        let coarse = 2e-4; // 5 steps per tau — a deliberately coarse grid
        let be = tran(&build(), &TranSpec::new(coarse, 1e-3).with_uic()).unwrap();
        let tr = tran(
            &build(),
            &TranSpec::new(coarse, 1e-3).with_uic().with_trapezoidal(),
        )
        .unwrap();
        let be_err = (be.wave("b").unwrap().last_value() - exact).abs();
        let tr_err = (tr.wave("b").unwrap().last_value() - exact).abs();
        assert!(tr_err < be_err, "trap {tr_err} vs BE {be_err}");
    }

    #[test]
    fn capacitor_conserves_dc_blocking() {
        // Series capacitor blocks DC: steady-state current is zero, the
        // output node returns to 0 through the resistor.
        let mut c = Circuit::new("hp");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        c.add(
            "C1",
            vec![a, b],
            ElementKind::Capacitor { c: 1e-9, ic: None },
        );
        c.add(
            "R1",
            vec![b, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        let res = tran(&c, &TranSpec::new(1e-8, 2e-5)).unwrap();
        let w = res.wave("b").unwrap();
        assert!(w.last_value().abs() < 1e-3);
    }

    #[test]
    fn cmos_ring_oscillator_oscillates() {
        // Three CMOS inverters in a loop with load caps: the canonical
        // transient smoke test for the MOS model + integrator.
        let mut c = Circuit::new("ring3");
        c.add_model(MosModel::default_nmos("n1"));
        c.add_model(MosModel::default_pmos("p1"));
        let vdd = c.node("vdd");
        c.add(
            "Vdd",
            vec![vdd, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 0.0,
                    tr: 1e-9,
                    tf: 1e-9,
                    pw: 1.0,
                    period: f64::INFINITY,
                },
            },
        );
        let n: Vec<_> = (0..3).map(|i| c.node(&format!("s{i}"))).collect();
        for i in 0..3 {
            let inp = n[i];
            let out = n[(i + 1) % 3];
            c.add(
                format!("Mn{i}"),
                vec![out, inp, Circuit::GROUND, Circuit::GROUND],
                ElementKind::Mosfet {
                    model: "n1".into(),
                    w: 10e-6,
                    l: 1e-6,
                },
            );
            c.add(
                format!("Mp{i}"),
                vec![out, inp, vdd, vdd],
                ElementKind::Mosfet {
                    model: "p1".into(),
                    w: 25e-6,
                    l: 1e-6,
                },
            );
            c.add(
                format!("Cl{i}"),
                vec![out, Circuit::GROUND],
                // Load large enough that the ring period spans many
                // timesteps (stage delay ≈ C·V/I ≈ 4 ns at 10 pF).
                ElementKind::Capacitor {
                    c: 10e-12,
                    ic: None,
                },
            );
        }
        // Break symmetry via an initial condition.
        let s0 = c.find_node("s0").unwrap();
        c.initial_conditions.push((s0, 5.0));
        let res = tran(&c, &TranSpec::new(1e-9, 400e-9).with_uic()).unwrap();
        let w = res.wave("s1").unwrap();
        assert!(w.amplitude() > 4.0, "ring amplitude {}", w.amplitude());
        let f = w.frequency().expect("ring oscillates");
        assert!(f > 1e6, "ring frequency {f}");
    }

    #[test]
    fn uic_respects_initial_conditions() {
        let mut c = Circuit::new("ic");
        let a = c.node("a");
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        c.add(
            "C1",
            vec![a, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(3.0),
            },
        );
        let res = tran(&c, &TranSpec::new(1e-5, 1e-4).with_uic()).unwrap();
        let w = res.wave("a").unwrap();
        assert!((w.values()[0] - 3.0).abs() < 1e-9);
        // Discharging exponential.
        assert!(w.last_value() < 3.0 * 0.95);
    }

    #[test]
    fn tran_with_streams_and_stops_early() {
        let mut c = Circuit::new("rc");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(1.0),
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "C1",
            vec![b, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(0.0),
            },
        );
        let spec = TranSpec::new(1e-4, 1e-2).with_uic();

        // Streaming with an always-true callback reproduces `tran`.
        let mut seen = Vec::new();
        let full = tran_with(&c, &spec, |t, x| {
            seen.push((t, x.to_vec()));
            true
        })
        .unwrap();
        let reference = tran(&c, &spec).unwrap();
        assert_eq!(full.times(), reference.times());
        assert_eq!(seen.len(), reference.times().len());
        assert_eq!(seen[0].0, 0.0, "initial point streams first");
        // Column order matches TranResult: x[node-1].
        let wave_b = reference.wave("b").unwrap();
        let col_b = c.find_node("b").unwrap() - 1;
        for ((t, x), (&rt, &rv)) in seen
            .iter()
            .zip(reference.times().iter().zip(wave_b.values()))
        {
            assert_eq!(*t, rt);
            assert_eq!(x[col_b], rv);
        }

        // Returning false stops the run at that sample.
        let res = tran_with(&c, &spec, |t, _| t < 2e-3).unwrap();
        let last = *res.times().last().unwrap();
        assert!((2e-3..2.2e-3).contains(&last), "stopped at {last}");
        assert!(res.newton_iterations < reference.newton_iterations);
    }

    #[test]
    fn result_exposes_node_names() {
        let mut c = Circuit::new("t");
        let a = c.node("alpha");
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1.0 },
        );
        let res = tran(&c, &TranSpec::new(1e-6, 1e-5)).unwrap();
        assert_eq!(res.node_names(), &["alpha".to_string()]);
        assert!(res.wave("ALPHA").is_some(), "lookup is case-insensitive");
        assert!(res.wave("nope").is_none());
    }
}
