//! Transient analysis.
//!
//! Fixed-step backward-Euler by default (the paper ran a 400-step
//! transient), with a trapezoidal option and automatic local step
//! halving when Newton fails at a switching event.

use crate::dcop::{dc_operating_point_with, solve_newton_in, NewtonOpts};
use crate::devices::{CapCompanion, StampParams, StampPlan, UnknownMap};
use crate::netlist::{Circuit, ElementKind, NodeId};
use crate::sparse::{MnaSolver, PatternCache, SolverKind, SolverStats};
use crate::waveform::Wave;
use crate::SpiceError;

/// Numerical integration method for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, damps ringing; the default (matches the
    /// robustness-first choice fault simulation needs).
    #[default]
    BackwardEuler,
    /// Trapezoidal: second-order accurate, can ring on hard switching.
    Trapezoidal,
}

/// Transient analysis specification.
#[derive(Debug, Clone)]
pub struct TranSpec {
    /// Output/time step (s).
    pub tstep: f64,
    /// Stop time (s).
    pub tstop: f64,
    /// Skip the DC operating point and start from `.ic`/element `ic=`
    /// values (SPICE `UIC`).
    pub uic: bool,
    /// Integration method.
    pub integrator: Integrator,
    /// Newton controls.
    pub newton: NewtonOpts,
    /// Maximum depth of step halving when a timestep fails to converge
    /// (each level halves dt; 12 levels ≈ 4096× refinement).
    pub max_halvings: u32,
    /// Linear-solver backend (dense, sparse, or size-based auto).
    pub solver: SolverKind,
}

impl TranSpec {
    /// A spec with the given step and stop time and default options.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        TranSpec {
            tstep,
            tstop,
            uic: false,
            integrator: Integrator::default(),
            newton: NewtonOpts::default(),
            max_halvings: 12,
            solver: SolverKind::default(),
        }
    }

    /// Same spec but starting from initial conditions (UIC).
    pub fn with_uic(mut self) -> Self {
        self.uic = true;
        self
    }

    /// Same spec with trapezoidal integration.
    pub fn with_trapezoidal(mut self) -> Self {
        self.integrator = Integrator::Trapezoidal;
        self
    }

    /// Same spec with an explicit linear-solver backend.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// The output time grid implied by `tstep`/`tstop`: the number of
    /// full steps and, when `tstop` is not an integer multiple of
    /// `tstep`, the final partial-step stop time. Each grid point is
    /// derived from the integer step index — never by accumulating
    /// `t += tstep`, which drifts by an ULP per step and desynchronises
    /// detection times over long runs.
    pub(crate) fn grid(&self) -> (usize, Option<f64>) {
        let ratio = self.tstop / self.tstep;
        let nearest = ratio.round();
        if nearest >= 1.0 && (ratio - nearest).abs() <= 1e-9 * nearest {
            // tstop is an integer multiple of tstep up to float noise.
            (nearest as usize, None)
        } else {
            let full = ratio.floor() as usize;
            let rem = self.tstop - full as f64 * self.tstep;
            if rem > 1e-12 * self.tstep {
                (full, Some(self.tstop))
            } else {
                (full, None)
            }
        }
    }
}

/// Work counters for one transient run, accumulated as plain integers
/// on the hot path and flushed into the global telemetry registry
/// (`spice.tran.*`, `spice.sparse.*`) once at the end of the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranStats {
    /// Accepted integration steps, *including* the sub-steps produced
    /// by halving (so a rescued grid step contributes ≥ 2).
    pub steps: u64,
    /// Step-halving events: a Newton failure that split the step in
    /// two (each recursion level counts once).
    pub halvings: u64,
    /// Newton iterations consumed over the whole run.
    pub newton_iterations: u64,
    /// Linear-solver work counters (sparse refactorisations, re-pivots,
    /// dense fallbacks, demotions), surviving any demotion to dense.
    pub solver: SolverStats,
}

/// Result of a transient run: one [`Wave`] per non-ground node.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    names: Vec<String>,
    data: Vec<Vec<f64>>, // indexed [node-1][sample]
    /// Newton iterations consumed over the whole run (a work measure —
    /// the paper compares fault-model runtimes via such counters).
    /// Equal to `stats.newton_iterations`; kept as a field because it
    /// predates [`TranStats`].
    pub newton_iterations: u64,
    /// Full work counters for the run.
    pub stats: TranStats,
}

impl TranResult {
    /// Sample time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Names of recorded nodes.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// The waveform of a node by name (`None` when unknown).
    pub fn wave(&self, node: &str) -> Option<Wave> {
        let idx = self
            .names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(node))?;
        Some(Wave::new(self.times.clone(), self.data[idx].clone()))
    }
}

/// One integrable capacitance: an explicit capacitor element or a MOS
/// gate capacitance (Meyer-style constant partition: Cgs = ⅔·Cox·W·L,
/// Cgd = ⅓·Cox·W·L). Gate caps both smooth switching edges physically
/// and give the Newton iteration a continuation path through
/// regenerative transitions (Schmitt triggers, latches).
pub(crate) struct CapInstance {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) c: f64,
    /// Initial condition (UIC), explicit capacitors only.
    pub(crate) ic: Option<f64>,
}

/// Integration state per capacitance instance.
pub(crate) struct CapState {
    pub(crate) v_prev: f64,
    pub(crate) i_prev: f64,
}

/// Collects all capacitance instances of the circuit.
pub(crate) fn cap_instances(ckt: &Circuit) -> Vec<CapInstance> {
    let mut out = Vec::new();
    for e in ckt.elements() {
        match &e.kind {
            ElementKind::Capacitor { c, ic } => out.push(CapInstance {
                a: e.nodes[0],
                b: e.nodes[1],
                c: *c,
                ic: *ic,
            }),
            ElementKind::Mosfet { model, w, l } => {
                let Some(m) = ckt.models.get(&model.to_ascii_lowercase()) else {
                    continue;
                };
                if m.cox <= 0.0 {
                    continue;
                }
                let c_total = m.cox * w * l;
                let (d, g, s) = (e.nodes[0], e.nodes[1], e.nodes[2]);
                out.push(CapInstance {
                    a: g,
                    b: s,
                    c: c_total * 2.0 / 3.0,
                    ic: None,
                });
                out.push(CapInstance {
                    a: g,
                    b: d,
                    c: c_total / 3.0,
                    ic: None,
                });
            }
            _ => {}
        }
    }
    out
}

/// Runs a transient analysis.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran(ckt: &Circuit, spec: &TranSpec) -> Result<TranResult, SpiceError> {
    tran_with_cached(ckt, spec, None, |_, _| true)
}

/// Runs a transient analysis reusing symbolic factorisations from a
/// campaign-wide [`PatternCache`] (see [`crate::sparse`]). Results are
/// identical to [`tran`]; only the symbolic setup work is shared.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran_cached(
    ckt: &Circuit,
    spec: &TranSpec,
    cache: &PatternCache,
) -> Result<TranResult, SpiceError> {
    tran_with_cached(ckt, spec, Some(cache), |_, _| true)
}

/// Runs a transient analysis, streaming every accepted output sample to
/// `on_sample` as `(time, node_voltages)` — `node_voltages[i]` is the
/// voltage of node id `i + 1`, matching [`TranResult`]'s column order.
/// The callback sees the initial point first, then one call per output
/// step; returning `false` stops the run early and yields the samples
/// accepted so far. This is the kernel-side half of fault dropping: a
/// campaign can abandon the remaining simulation time the moment a
/// fault is detected.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran_with<F>(ckt: &Circuit, spec: &TranSpec, on_sample: F) -> Result<TranResult, SpiceError>
where
    F: FnMut(f64, &[f64]) -> bool,
{
    tran_with_cached(ckt, spec, None, on_sample)
}

/// The most general transient entry point: streaming callback plus an
/// optional shared [`PatternCache`]. [`tran`], [`tran_cached`] and
/// [`tran_with`] all delegate here.
///
/// # Errors
/// Returns the underlying Newton/matrix failure when the circuit cannot
/// be solved even after step halving.
pub fn tran_with_cached<F>(
    ckt: &Circuit,
    spec: &TranSpec,
    cache: Option<&PatternCache>,
    mut on_sample: F,
) -> Result<TranResult, SpiceError>
where
    F: FnMut(f64, &[f64]) -> bool,
{
    let _span = cat_telemetry::span!("spice.tran");
    TRAN_RUNS.inc();
    ckt.validate().map_err(SpiceError::Elaboration)?;
    let map = UnknownMap::new(ckt);
    let dim = map.dim();

    let instances = cap_instances(ckt);

    // One solver + stamp plan for the whole run: the symbolic
    // factorisation is computed once (or fetched from the campaign
    // cache) and every Newton iteration of every timestep refactors
    // numerics only.
    let plan = StampPlan::new(ckt)?;
    let mut solver = MnaSolver::for_circuit(ckt, &map, spec.solver, cache);

    // Initial solution.
    let mut x = if spec.uic {
        let mut x0 = vec![0.0; dim];
        for &(node, v) in &ckt.initial_conditions {
            if let Some(i) = map.node_var(node) {
                x0[i] = v;
            }
        }
        // Element-level ic= on capacitors: force the first terminal's
        // node voltage difference when one side is grounded.
        for inst in &instances {
            if let Some(v) = inst.ic {
                if inst.b == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.a) {
                        x0[i] = v;
                    }
                } else if inst.a == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.b) {
                        x0[i] = -v;
                    }
                }
            }
        }
        x0
    } else {
        dc_operating_point_with(ckt, spec.solver, cache)?
    };

    // Capacitance states from the initial solution.
    let mut caps: Vec<CapState> = instances
        .iter()
        .map(|inst| CapState {
            v_prev: map.voltage(&x, inst.a) - map.voltage(&x, inst.b),
            i_prev: 0.0,
        })
        .collect();

    let n_nodes = ckt.node_count() - 1;
    let mut times = vec![0.0];
    let mut data: Vec<Vec<f64>> = (0..n_nodes).map(|i| vec![x[i]]).collect();
    let mut stats = TranStats::default();

    // The output grid is derived from the integer step index: step k
    // ends at exactly `k · tstep`, so a 10⁵-step run lands on the same
    // absolute times as a 10²-step one (accumulating `t += tstep`
    // instead drifts by an ULP per step — enough to shift detection
    // times and misalign waveform comparisons over long transients).
    // When tstop is not a multiple of tstep, a final partial step lands
    // exactly on tstop instead of silently over- or under-shooting.
    let (full_steps, partial) = spec.grid();
    let mut t = 0.0;
    if on_sample(t, &x[..n_nodes]) {
        let mut record =
            |t: f64, x: &[f64], times: &mut Vec<f64>, data: &mut Vec<Vec<f64>>| -> bool {
                times.push(t);
                for (i, column) in data.iter_mut().enumerate() {
                    column.push(x[i]);
                }
                on_sample(t, &x[..n_nodes])
            };
        let mut keep_going = true;
        for step in 0..full_steps {
            let t_next = (step + 1) as f64 * spec.tstep;
            // The very first step always integrates with backward Euler:
            // the trapezoidal companion needs a valid previous current,
            // which is unknown at t = 0 (standard SPICE start-up
            // behaviour).
            let integ = if step == 0 {
                Integrator::BackwardEuler
            } else {
                spec.integrator
            };
            advance(
                ckt,
                &map,
                &plan,
                &mut solver,
                spec,
                integ,
                &instances,
                &mut x,
                &mut caps,
                t,
                t_next,
                0,
                &mut stats,
            )?;
            t = t_next;
            if !record(t, &x, &mut times, &mut data) {
                keep_going = false;
                break;
            }
        }
        if keep_going {
            if let Some(t_stop) = partial {
                let integ = if full_steps == 0 {
                    Integrator::BackwardEuler
                } else {
                    spec.integrator
                };
                advance(
                    ckt,
                    &map,
                    &plan,
                    &mut solver,
                    spec,
                    integ,
                    &instances,
                    &mut x,
                    &mut caps,
                    t,
                    t_stop,
                    0,
                    &mut stats,
                )?;
                record(t_stop, &x, &mut times, &mut data);
            }
        }
    }

    let names = (1..ckt.node_count())
        .map(|n| ckt.node_name(n).to_string())
        .collect();
    stats.solver = solver.stats();
    flush_tran_stats(&stats);
    Ok(TranResult {
        times,
        names,
        data,
        newton_iterations: stats.newton_iterations,
        stats,
    })
}

static TRAN_RUNS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.tran.runs");
pub(crate) static TRAN_STEPS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.tran.steps");
static TRAN_HALVINGS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.tran.halvings");
pub(crate) static NEWTON_ITERATIONS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.newton.iterations");

/// Adds a finished run's counters to the global registry. Each `add`
/// is a no-op while telemetry is disabled, so the cost off the record
/// path is a handful of relaxed loads per *run*.
fn flush_tran_stats(stats: &TranStats) {
    TRAN_STEPS.add(stats.steps);
    TRAN_HALVINGS.add(stats.halvings);
    NEWTON_ITERATIONS.add(stats.newton_iterations);
    stats.solver.flush_to_telemetry();
}

/// Advances the solution from `t0` to `t1`, recursively halving on
/// Newton failure.
#[allow(clippy::too_many_arguments)]
fn advance(
    ckt: &Circuit,
    map: &UnknownMap,
    plan: &StampPlan<'_>,
    solver: &mut MnaSolver,
    spec: &TranSpec,
    integrator: Integrator,
    instances: &[CapInstance],
    x: &mut Vec<f64>,
    caps: &mut Vec<CapState>,
    t0: f64,
    t1: f64,
    depth: u32,
    stats: &mut TranStats,
) -> Result<(), SpiceError> {
    let dt = t1 - t0;
    // Build companions for this step.
    let companions: Vec<CapCompanion> = instances
        .iter()
        .zip(caps.iter())
        .map(|(inst, st)| {
            let (geq, ieq) = match integrator {
                Integrator::BackwardEuler => {
                    let geq = inst.c / dt;
                    (geq, -geq * st.v_prev)
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * inst.c / dt;
                    (geq, -geq * st.v_prev - st.i_prev)
                }
            };
            CapCompanion {
                a: inst.a,
                b: inst.b,
                geq,
                ieq,
            }
        })
        .collect();
    let params = StampParams {
        time: t1,
        cap_companions: Some(&companions),
        ..StampParams::default()
    };
    // Newton ladder: the configured options first, then a heavily
    // damped retry (regenerative switching points), then step halving.
    let solved =
        solve_newton_in(solver, ckt, map, plan, x, &params, &spec.newton, "tran").or_else(|_| {
            let damped = NewtonOpts {
                max_iter: spec.newton.max_iter * 3,
                max_step: 0.1,
                ..spec.newton.clone()
            };
            solve_newton_in(solver, ckt, map, plan, x, &params, &damped, "tran (damped)")
        });
    match solved {
        Ok((next, iters)) => {
            stats.steps += 1;
            stats.newton_iterations += iters as u64;
            // Commit capacitance states.
            for ((inst, st), cc) in instances.iter().zip(caps.iter_mut()).zip(&companions) {
                let v_new = map.voltage(&next, inst.a) - map.voltage(&next, inst.b);
                st.i_prev = cc.geq * v_new + cc.ieq;
                st.v_prev = v_new;
            }
            *x = next;
            Ok(())
        }
        Err(e) => {
            if depth >= spec.max_halvings {
                return Err(e);
            }
            stats.halvings += 1;
            let tm = 0.5 * (t0 + t1);
            advance(
                ckt,
                map,
                plan,
                solver,
                spec,
                integrator,
                instances,
                x,
                caps,
                t0,
                tm,
                depth + 1,
                stats,
            )?;
            advance(
                ckt,
                map,
                plan,
                solver,
                spec,
                integrator,
                instances,
                x,
                caps,
                tm,
                t1,
                depth + 1,
                stats,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{ElementKind, MosModel, Waveform};

    #[test]
    fn rc_charging_curve() {
        // R=1k, C=1µF, step to 1V: v(t) = 1 - exp(-t/RC), tau = 1 ms.
        let mut c = Circuit::new("rc");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 1.0,
                    td: 0.0,
                    tr: 1e-9,
                    tf: 1e-9,
                    pw: 1.0,
                    period: f64::INFINITY,
                },
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "C1",
            vec![b, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(0.0),
            },
        );
        let spec = TranSpec::new(10e-6, 10e-3).with_uic();
        let res = tran(&c, &spec).unwrap();
        let w = res.wave("b").unwrap();
        // After one tau: 63.2 %.
        let v_tau = w.value_at(1e-3);
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        // Settles to 1.0 after 10 tau.
        assert!((w.last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trapezoidal_is_more_accurate_on_rc() {
        let build = || {
            let mut c = Circuit::new("rc");
            let a = c.node("a");
            let b = c.node("b");
            c.add(
                "V1",
                vec![a, Circuit::GROUND],
                ElementKind::Vsource {
                    wave: Waveform::Dc(1.0),
                },
            );
            c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
            c.add(
                "C1",
                vec![b, Circuit::GROUND],
                ElementKind::Capacitor {
                    c: 1e-6,
                    ic: Some(0.0),
                },
            );
            c
        };
        let exact = 1.0 - (-1.0f64).exp(); // at t = tau
        let coarse = 2e-4; // 5 steps per tau — a deliberately coarse grid
        let be = tran(&build(), &TranSpec::new(coarse, 1e-3).with_uic()).unwrap();
        let tr = tran(
            &build(),
            &TranSpec::new(coarse, 1e-3).with_uic().with_trapezoidal(),
        )
        .unwrap();
        let be_err = (be.wave("b").unwrap().last_value() - exact).abs();
        let tr_err = (tr.wave("b").unwrap().last_value() - exact).abs();
        assert!(tr_err < be_err, "trap {tr_err} vs BE {be_err}");
    }

    #[test]
    fn capacitor_conserves_dc_blocking() {
        // Series capacitor blocks DC: steady-state current is zero, the
        // output node returns to 0 through the resistor.
        let mut c = Circuit::new("hp");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        c.add(
            "C1",
            vec![a, b],
            ElementKind::Capacitor { c: 1e-9, ic: None },
        );
        c.add(
            "R1",
            vec![b, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        let res = tran(&c, &TranSpec::new(1e-8, 2e-5)).unwrap();
        let w = res.wave("b").unwrap();
        assert!(w.last_value().abs() < 1e-3);
    }

    #[test]
    fn cmos_ring_oscillator_oscillates() {
        // Three CMOS inverters in a loop with load caps: the canonical
        // transient smoke test for the MOS model + integrator.
        let mut c = Circuit::new("ring3");
        c.add_model(MosModel::default_nmos("n1"));
        c.add_model(MosModel::default_pmos("p1"));
        let vdd = c.node("vdd");
        c.add(
            "Vdd",
            vec![vdd, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 0.0,
                    tr: 1e-9,
                    tf: 1e-9,
                    pw: 1.0,
                    period: f64::INFINITY,
                },
            },
        );
        let n: Vec<_> = (0..3).map(|i| c.node(&format!("s{i}"))).collect();
        for i in 0..3 {
            let inp = n[i];
            let out = n[(i + 1) % 3];
            c.add(
                format!("Mn{i}"),
                vec![out, inp, Circuit::GROUND, Circuit::GROUND],
                ElementKind::Mosfet {
                    model: "n1".into(),
                    w: 10e-6,
                    l: 1e-6,
                },
            );
            c.add(
                format!("Mp{i}"),
                vec![out, inp, vdd, vdd],
                ElementKind::Mosfet {
                    model: "p1".into(),
                    w: 25e-6,
                    l: 1e-6,
                },
            );
            c.add(
                format!("Cl{i}"),
                vec![out, Circuit::GROUND],
                // Load large enough that the ring period spans many
                // timesteps (stage delay ≈ C·V/I ≈ 4 ns at 10 pF).
                ElementKind::Capacitor {
                    c: 10e-12,
                    ic: None,
                },
            );
        }
        // Break symmetry via an initial condition.
        let s0 = c.find_node("s0").unwrap();
        c.initial_conditions.push((s0, 5.0));
        let res = tran(&c, &TranSpec::new(1e-9, 400e-9).with_uic()).unwrap();
        let w = res.wave("s1").unwrap();
        assert!(w.amplitude() > 4.0, "ring amplitude {}", w.amplitude());
        let f = w.frequency().expect("ring oscillates");
        assert!(f > 1e6, "ring frequency {f}");
    }

    #[test]
    fn uic_respects_initial_conditions() {
        let mut c = Circuit::new("ic");
        let a = c.node("a");
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        c.add(
            "C1",
            vec![a, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(3.0),
            },
        );
        let res = tran(&c, &TranSpec::new(1e-5, 1e-4).with_uic()).unwrap();
        let w = res.wave("a").unwrap();
        assert!((w.values()[0] - 3.0).abs() < 1e-9);
        // Discharging exponential.
        assert!(w.last_value() < 3.0 * 0.95);
    }

    #[test]
    fn tran_with_streams_and_stops_early() {
        let mut c = Circuit::new("rc");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(1.0),
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "C1",
            vec![b, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 1e-6,
                ic: Some(0.0),
            },
        );
        let spec = TranSpec::new(1e-4, 1e-2).with_uic();

        // Streaming with an always-true callback reproduces `tran`.
        let mut seen = Vec::new();
        let full = tran_with(&c, &spec, |t, x| {
            seen.push((t, x.to_vec()));
            true
        })
        .unwrap();
        let reference = tran(&c, &spec).unwrap();
        assert_eq!(full.times(), reference.times());
        assert_eq!(seen.len(), reference.times().len());
        assert_eq!(seen[0].0, 0.0, "initial point streams first");
        // Column order matches TranResult: x[node-1].
        let wave_b = reference.wave("b").unwrap();
        let col_b = c.find_node("b").unwrap() - 1;
        for ((t, x), (&rt, &rv)) in seen
            .iter()
            .zip(reference.times().iter().zip(wave_b.values()))
        {
            assert_eq!(*t, rt);
            assert_eq!(x[col_b], rv);
        }

        // Returning false stops the run at that sample.
        let res = tran_with(&c, &spec, |t, _| t < 2e-3).unwrap();
        let last = *res.times().last().unwrap();
        assert!((2e-3..2.2e-3).contains(&last), "stopped at {last}");
        assert!(res.newton_iterations < reference.newton_iterations);
    }

    /// A plain resistive divider driven by a DC source: converges in
    /// two Newton iterations per step, so very long grids stay cheap.
    fn divider() -> Circuit {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(1.0),
            },
        );
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1e3 });
        c.add(
            "R2",
            vec![b, Circuit::GROUND],
            ElementKind::Resistor { r: 1e3 },
        );
        c
    }

    #[test]
    fn time_grid_does_not_drift_over_1e5_steps() {
        // Regression: accumulating `t += tstep` drifts by an ULP per
        // step; after 10⁵ steps the final time disagreed with
        // `steps · tstep` and waveform alignment shifted. Every grid
        // point must be bit-exact `k · tstep`.
        let c = divider();
        let tstep = 1e-9;
        let res = tran(&c, &TranSpec::new(tstep, 1e-4)).unwrap();
        assert_eq!(res.times().len(), 100_001);
        for (k, &t) in res.times().iter().enumerate() {
            assert_eq!(
                t,
                k as f64 * tstep,
                "grid point {k} must be derived from the step index"
            );
        }
        assert_eq!(*res.times().last().unwrap(), 1e-4);
    }

    #[test]
    fn non_multiple_tstop_emits_final_partial_step() {
        // tstop = 1 µs with tstep = 0.3 µs: 3 full steps plus a final
        // 0.1 µs partial step landing exactly on tstop. The old
        // `round()` grid silently stopped at 0.9 µs.
        let c = divider();
        let res = tran(&c, &TranSpec::new(0.3e-6, 1e-6)).unwrap();
        let times = res.times();
        assert_eq!(times.len(), 5, "0, 0.3, 0.6, 0.9, 1.0 µs: {times:?}");
        assert_eq!(*times.last().unwrap(), 1e-6);
        assert!((times[3] - 0.9e-6).abs() < 1e-18);
    }

    #[test]
    fn near_multiple_tstop_does_not_invent_a_step() {
        // tstop = 1 µs with tstep = 0.6 µs: the old grid rounded
        // 1.67 → 2 steps and simulated past tstop (1.2 µs). Now: one
        // full step plus the 0.4 µs partial step.
        let c = divider();
        let res = tran(&c, &TranSpec::new(0.6e-6, 1e-6)).unwrap();
        assert_eq!(res.times(), &[0.0, 0.6e-6, 1e-6]);

        // And a tstop that is a multiple up to float noise snaps to the
        // exact grid without a sliver step.
        let res = tran(&c, &TranSpec::new(0.1e-6, 0.3e-6)).unwrap();
        assert_eq!(res.times().len(), 4);
        assert_eq!(*res.times().last().unwrap(), 3.0 * 0.1e-6);

        // tstop below one step still produces a single partial step.
        let res = tran(&c, &TranSpec::new(1e-6, 0.4e-6)).unwrap();
        assert_eq!(res.times(), &[0.0, 0.4e-6]);
    }

    /// A hard-switching circuit whose Newton iteration cannot absorb a
    /// full-step input jump under a tight iteration budget: a stiff RC
    /// divider into a MOS whose gate swings rail to rail in one step.
    fn halving_testbench() -> (Circuit, TranSpec) {
        let mut c = Circuit::new("halving");
        c.add_model(MosModel::default_nmos("n1"));
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add(
            "Vdd",
            vec![vdd, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        c.add(
            "Vin",
            vec![inp, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 1e-6,
                    tr: 100e-9,
                    tf: 100e-9,
                    pw: 1.0,
                    period: f64::INFINITY,
                },
            },
        );
        c.add("RL", vec![vdd, out], ElementKind::Resistor { r: 10e3 });
        c.add(
            "M1",
            vec![out, inp, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "n1".into(),
                w: 10e-6,
                l: 1e-6,
            },
        );
        c.add(
            "CL",
            vec![out, Circuit::GROUND],
            ElementKind::Capacitor {
                c: 100e-12,
                ic: None,
            },
        );
        // A 2 µs step straddles the 100 ns input edge; with a two-
        // iteration budget the full step cannot converge, so the
        // integrator must halve its way through the transition.
        let mut spec = TranSpec::new(2e-6, 4e-6);
        spec.newton.max_iter = 2;
        (c, spec)
    }

    #[test]
    fn step_halving_rescues_a_failing_step() {
        let (c, spec) = halving_testbench();
        let res = tran(&c, &spec).expect("halving absorbs the edge");
        // The output ends pulled low through the switched-on NMOS.
        assert!(res.wave("out").unwrap().last_value() < 1.0);
        // The output grid is unchanged by the internal halving.
        assert_eq!(res.times(), &[0.0, 2e-6, 4e-6]);
    }

    #[test]
    fn max_halvings_zero_propagates_the_failure() {
        let (c, mut spec) = halving_testbench();
        spec.max_halvings = 0;
        let err = tran(&c, &spec).unwrap_err();
        assert!(
            matches!(err, SpiceError::NoConvergence { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn dense_and_sparse_transients_agree() {
        use crate::sparse::SolverKind;
        // Force both backends on the same MOS circuit and compare the
        // full waveforms.
        let (c, _) = halving_testbench();
        let spec = TranSpec::new(20e-9, 4e-6);
        let dense = tran(&c, &spec.clone().with_solver(SolverKind::Dense)).unwrap();
        let sparse = tran(&c, &spec.with_solver(SolverKind::Sparse)).unwrap();
        assert_eq!(dense.times(), sparse.times());
        for node in dense.node_names() {
            let dw = dense.wave(node).unwrap();
            let sw = sparse.wave(node).unwrap();
            let delta = dw.max_abs_diff(&sw);
            assert!(delta < 1e-9, "node {node} diverges by {delta}");
        }
    }

    #[test]
    fn cached_tran_matches_uncached() {
        use crate::sparse::PatternCache;
        let (c, _) = halving_testbench();
        let spec = TranSpec::new(20e-9, 4e-6).with_solver(crate::sparse::SolverKind::Sparse);
        let cache = PatternCache::new();
        let a = tran_cached(&c, &spec, &cache).unwrap();
        let b = tran(&c, &spec).unwrap();
        assert_eq!(a.times(), b.times());
        assert_eq!(
            a.wave("out").unwrap().values(),
            b.wave("out").unwrap().values()
        );
        // Second cached run reuses the symbolic factorisations (one
        // pattern serves both the DC op and the transient).
        let _ = tran_cached(&c, &spec, &cache).unwrap();
        assert!(cache.hits() > 0, "second run must hit the pattern cache");
    }

    #[test]
    fn result_exposes_node_names() {
        let mut c = Circuit::new("t");
        let a = c.node("alpha");
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1.0 },
        );
        let res = tran(&c, &TranSpec::new(1e-6, 1e-5)).unwrap();
        assert_eq!(res.node_names(), &["alpha".to_string()]);
        assert!(res.wave("ALPHA").is_some(), "lookup is case-insensitive");
        assert!(res.wave("nope").is_none());
    }
}
