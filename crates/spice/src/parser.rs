//! SPICE netlist text parser.
//!
//! Accepts the classic card format: title line, `R`/`C`/`V`/`I`/`M`
//! elements, `.model`, `.ic`, `.tran`, `.end`, `*` comments and `+`
//! continuations. Engineering suffixes (`f p n u m k meg g t`) are
//! understood. This is the same dialect [`crate::netlist::Circuit::to_netlist`]
//! emits, so circuits round-trip.

use crate::netlist::{Circuit, ElementKind, MosModel, MosPolarity, Waveform};
use crate::tran::TranSpec;
use crate::SpiceError;

/// A parsed deck: the circuit plus any `.tran` card found.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The circuit.
    pub circuit: Circuit,
    /// `.tran tstep tstop [uic]` when present.
    pub tran: Option<TranSpec>,
}

/// Parses netlist text into a [`Circuit`], ignoring analysis cards.
///
/// # Errors
/// [`SpiceError::Parse`] with the offending line number.
pub fn parse_netlist(text: &str) -> Result<Circuit, SpiceError> {
    parse_deck(text).map(|d| d.circuit)
}

/// Parses netlist text into a [`Deck`] (circuit + analysis cards).
///
/// # Errors
/// [`SpiceError::Parse`] with the offending line number.
pub fn parse_deck(text: &str) -> Result<Deck, SpiceError> {
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest.trim());
                }
                None => {
                    return Err(SpiceError::Parse {
                        line: i + 1,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((i + 1, trimmed.to_string()));
        }
    }

    if logical.is_empty() {
        return Err(SpiceError::Parse {
            line: 1,
            message: "empty netlist".into(),
        });
    }

    // First logical line is the title.
    let (_, title) = logical.remove(0);
    let mut ckt = Circuit::new(title);
    let mut tran = None;

    for (line_no, line) in logical {
        let lower = line.to_ascii_lowercase();
        let tokens: Vec<&str> = lower.split_whitespace().collect();
        let first = tokens[0];
        let result = if let Some(card) = first.strip_prefix('.') {
            match card {
                "end" => break,
                "model" => parse_model(&tokens, &mut ckt),
                "ic" => parse_ic(&line, &mut ckt),
                "tran" => {
                    tran = Some(parse_tran(&tokens)?);
                    Ok(())
                }
                "op" | "options" | "print" | "plot" | "probe" => Ok(()), // tolerated
                other => Err(format!("unsupported card `.{other}`")),
            }
        } else {
            match first.chars().next().unwrap() {
                'r' => parse_resistor(&tokens, &mut ckt),
                'c' => parse_capacitor(&tokens, &mut ckt),
                'v' => parse_source(&tokens, &mut ckt, true),
                'i' => parse_source(&tokens, &mut ckt, false),
                'm' => parse_mosfet(&tokens, &mut ckt),
                other => Err(format!("unsupported element letter `{other}`")),
            }
        };
        result.map_err(|message| SpiceError::Parse {
            line: line_no,
            message,
        })?;
    }

    Ok(Deck { circuit: ckt, tran })
}

fn strip_comment(line: &str) -> &str {
    let line = if line.trim_start().starts_with('*') {
        ""
    } else {
        line
    };
    match line.find([';', '$']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parses a SPICE number with engineering suffix, e.g. `4.7k`, `0.1u`,
/// `2meg`, `100e-9`, `10n`.
pub fn parse_value(tok: &str) -> Result<f64, String> {
    let t = tok.trim().to_ascii_lowercase();
    // `to_netlist` prints infinite values (e.g. a single pulse's
    // period) as `inf`; accept them back so netlists round-trip.
    if let Some(mag) = t.strip_prefix('-').or(Some(&t)) {
        if mag == "inf" || mag == "infinity" {
            return Ok(if t.starts_with('-') {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            });
        }
    }
    // Split numeric prefix from alphabetic suffix.
    let split = t.find(|c: char| c.is_ascii_alphabetic() && c != 'e').or({
        // handle cases like '1e3k'? take first alpha that isn't part
        // of the exponent
        None
    });
    let (num_str, suffix) = match split {
        Some(i) => {
            // Guard against splitting inside an exponent like `1e-3`.
            t.split_at(i)
        }
        None => (t.as_str(), ""),
    };
    let base: f64 = num_str
        .parse()
        .map_err(|_| format!("bad numeric value `{tok}`"))?;
    let mult = match suffix {
        "" => 1.0,
        "t" => 1e12,
        "g" => 1e9,
        "meg" => 1e6,
        "k" => 1e3,
        "m" => 1e-3,
        "u" => 1e-6,
        "n" => 1e-9,
        "p" => 1e-12,
        "f" => 1e-15,
        s => {
            // Tolerate unit tails like `5v`, `2k2`? Only plain unit
            // letters after a known multiplier: `kohm`, `uf`, `ns`, …
            let known: [(&str, f64); 9] = [
                ("t", 1e12),
                ("g", 1e9),
                ("meg", 1e6),
                ("k", 1e3),
                ("m", 1e-3),
                ("u", 1e-6),
                ("n", 1e-9),
                ("p", 1e-12),
                ("f", 1e-15),
            ];
            let hit = known.iter().find(|(p, _)| s.starts_with(p));
            match hit {
                Some((_, m)) => *m,
                None if s.chars().all(|c| c.is_ascii_alphabetic()) => 1.0, // `5v`, `3a`
                _ => return Err(format!("bad value suffix `{s}` in `{tok}`")),
            }
        }
    };
    Ok(base * mult)
}

fn parse_resistor(tokens: &[&str], ckt: &mut Circuit) -> Result<(), String> {
    if tokens.len() < 4 {
        return Err("resistor needs: Rxxx n1 n2 value".into());
    }
    let a = ckt.node(tokens[1]);
    let b = ckt.node(tokens[2]);
    let r = parse_value(tokens[3])?;
    if r == 0.0 {
        return Err("resistance must be non-zero".into());
    }
    ckt.add(
        tokens[0].to_uppercase(),
        vec![a, b],
        ElementKind::Resistor { r },
    );
    Ok(())
}

fn parse_capacitor(tokens: &[&str], ckt: &mut Circuit) -> Result<(), String> {
    if tokens.len() < 4 {
        return Err("capacitor needs: Cxxx n1 n2 value [ic=v]".into());
    }
    let a = ckt.node(tokens[1]);
    let b = ckt.node(tokens[2]);
    let c = parse_value(tokens[3])?;
    let mut ic = None;
    for t in &tokens[4..] {
        if let Some(v) = t.strip_prefix("ic=") {
            ic = Some(parse_value(v)?);
        }
    }
    ckt.add(
        tokens[0].to_uppercase(),
        vec![a, b],
        ElementKind::Capacitor { c, ic },
    );
    Ok(())
}

fn parse_source(tokens: &[&str], ckt: &mut Circuit, voltage: bool) -> Result<(), String> {
    if tokens.len() < 4 {
        return Err("source needs: Xxxx n+ n- spec".into());
    }
    let p = ckt.node(tokens[1]);
    let n = ckt.node(tokens[2]);
    let spec = tokens[3..].join(" ");
    let wave = parse_waveform(&spec)?;
    let kind = if voltage {
        ElementKind::Vsource { wave }
    } else {
        ElementKind::Isource { wave }
    };
    ckt.add(tokens[0].to_uppercase(), vec![p, n], kind);
    Ok(())
}

/// Parses a source specification: `dc 5`, `5`, `pulse(...)`, `sin(...)`,
/// `pwl(...)`.
fn parse_waveform(spec: &str) -> Result<Waveform, String> {
    let s = spec.trim();
    if let Some(rest) = s.strip_prefix("dc") {
        let v = parse_value(rest.trim())?;
        return Ok(Waveform::Dc(v));
    }
    if let Some(args) = extract_call(s, "pulse") {
        let v = parse_args(&args)?;
        if v.len() < 2 {
            return Err("pulse needs at least v1 v2".into());
        }
        let get = |i: usize, d: f64| v.get(i).copied().unwrap_or(d);
        return Ok(Waveform::Pulse {
            v1: v[0],
            v2: v[1],
            td: get(2, 0.0),
            tr: get(3, 1e-9),
            tf: get(4, 1e-9),
            pw: get(5, f64::INFINITY),
            period: get(6, f64::INFINITY),
        });
    }
    if let Some(args) = extract_call(s, "sin") {
        let v = parse_args(&args)?;
        if v.len() < 3 {
            return Err("sin needs vo va freq".into());
        }
        let get = |i: usize, d: f64| v.get(i).copied().unwrap_or(d);
        return Ok(Waveform::Sin {
            vo: v[0],
            va: v[1],
            freq: v[2],
            td: get(3, 0.0),
            theta: get(4, 0.0),
        });
    }
    if let Some(args) = extract_call(s, "pwl") {
        let v = parse_args(&args)?;
        if v.len() % 2 != 0 || v.is_empty() {
            return Err("pwl needs time/value pairs".into());
        }
        let pts = v.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(Waveform::Pwl(pts));
    }
    // Bare value == DC.
    let v = parse_value(s)?;
    Ok(Waveform::Dc(v))
}

/// Extracts `name(...)` argument text, tolerating `name (` spacing.
fn extract_call(s: &str, name: &str) -> Option<String> {
    let rest = s.strip_prefix(name)?;
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    Some(inner[..close].to_string())
}

fn parse_args(s: &str) -> Result<Vec<f64>, String> {
    s.split([' ', ','])
        .filter(|t| !t.is_empty())
        .map(parse_value)
        .collect()
}

fn parse_mosfet(tokens: &[&str], ckt: &mut Circuit) -> Result<(), String> {
    if tokens.len() < 6 {
        return Err("mosfet needs: Mxxx d g s b model [w=..] [l=..]".into());
    }
    let d = ckt.node(tokens[1]);
    let g = ckt.node(tokens[2]);
    let s = ckt.node(tokens[3]);
    let b = ckt.node(tokens[4]);
    let model = tokens[5].to_string();
    let mut w = 10e-6;
    let mut l = 1e-6;
    for t in &tokens[6..] {
        if let Some(v) = t.strip_prefix("w=") {
            w = parse_value(v)?;
        } else if let Some(v) = t.strip_prefix("l=") {
            l = parse_value(v)?;
        }
    }
    ckt.add(
        tokens[0].to_uppercase(),
        vec![d, g, s, b],
        ElementKind::Mosfet { model, w, l },
    );
    Ok(())
}

fn parse_model(tokens: &[&str], ckt: &mut Circuit) -> Result<(), String> {
    if tokens.len() < 3 {
        return Err(".model needs: .model name nmos|pmos [params]".into());
    }
    let name = tokens[1];
    let mut model = match tokens[2] {
        "nmos" => MosModel::default_nmos(name),
        "pmos" => MosModel::default_pmos(name),
        other => return Err(format!("unsupported model type `{other}`")),
    };
    for t in &tokens[3..] {
        let Some((k, v)) = t.split_once('=') else {
            continue;
        };
        let v = parse_value(v)?;
        match k {
            "vto" => model.vto = v,
            "kp" => model.kp = v,
            "lambda" => model.lambda = v,
            "gamma" => model.gamma = v,
            "phi" => model.phi = v,
            "cox" => model.cox = v,
            _ => {} // unknown parameters tolerated
        }
    }
    // Keep polarity consistent with vto sign conventions.
    if model.polarity == MosPolarity::Pmos && model.vto > 0.0 {
        model.vto = -model.vto;
    }
    ckt.add_model(model);
    Ok(())
}

fn parse_ic(line: &str, ckt: &mut Circuit) -> Result<(), String> {
    // .ic v(node)=value [v(node)=value ...]
    let lower = line.to_ascii_lowercase();
    for part in lower.split_whitespace().skip(1) {
        let Some(rest) = part.strip_prefix("v(") else {
            return Err(format!("bad .ic entry `{part}`"));
        };
        let Some((node, val)) = rest.split_once(")=") else {
            return Err(format!("bad .ic entry `{part}`"));
        };
        let id = ckt.node(node);
        let v = parse_value(val)?;
        ckt.initial_conditions.push((id, v));
    }
    Ok(())
}

fn parse_tran(tokens: &[&str]) -> Result<TranSpec, SpiceError> {
    let err = |m: &str| SpiceError::Parse {
        line: 0,
        message: m.to_string(),
    };
    if tokens.len() < 3 {
        return Err(err(".tran needs: .tran tstep tstop [uic]"));
    }
    let tstep = parse_value(tokens[1]).map_err(|m| err(&m))?;
    let tstop = parse_value(tokens[2]).map_err(|m| err(&m))?;
    let mut spec = TranSpec::new(tstep, tstop);
    if tokens.contains(&"uic") {
        spec = spec.with_uic();
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        let close = |tok: &str, expect: f64| {
            let v = parse_value(tok).unwrap();
            assert!(
                (v - expect).abs() <= expect.abs() * 1e-12,
                "{tok}: {v} != {expect}"
            );
        };
        close("1k", 1e3);
        close("2meg", 2e6);
        close("100n", 100e-9);
        close("0.1u", 0.1e-6);
        close("3", 3.0);
        close("1e-9", 1e-9);
        close("5v", 5.0);
        close("4.7kohm", 4.7e3);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn parses_divider() {
        let ckt =
            parse_netlist("divider\nV1 in 0 dc 5\nR1 in out 1k\nR2 out 0 1k\n.end\n").unwrap();
        assert_eq!(ckt.title, "divider");
        assert_eq!(ckt.elements().len(), 3);
        assert_eq!(ckt.node_count(), 3);
    }

    #[test]
    fn parses_mosfet_and_model() {
        let ckt = parse_netlist(
            "inv\nM1 out in 0 0 nch w=10u l=1u\n.model nch nmos vto=0.7 kp=100u\n.end\n",
        )
        .unwrap();
        let e = &ckt.elements()[0];
        assert_eq!(e.name, "M1");
        match &e.kind {
            ElementKind::Mosfet { model, w, l } => {
                assert_eq!(model, "nch");
                assert!((w - 10e-6).abs() < 1e-12);
                assert!((l - 1e-6).abs() < 1e-12);
            }
            _ => panic!("expected mosfet"),
        }
        let m = &ckt.models["nch"];
        assert_eq!(m.vto, 0.7);
        assert!((m.kp - 100e-6).abs() < 1e-15);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn pmos_model_normalises_vto_sign() {
        let ckt = parse_netlist("p\n.model pch pmos vto=0.9\n.end\n").unwrap();
        assert_eq!(ckt.models["pch"].vto, -0.9);
    }

    #[test]
    fn parses_pulse_and_sin_sources() {
        let ckt = parse_netlist(
            "src\nV1 a 0 pulse(0 5 0 1n 1n 2u 4u)\nV2 b 0 sin(2.5 2.5 1meg)\nI1 0 c dc 1m\n.end\n",
        )
        .unwrap();
        match &ckt.elements()[0].kind {
            ElementKind::Vsource {
                wave: Waveform::Pulse { v2, pw, period, .. },
            } => {
                assert_eq!(*v2, 5.0);
                assert_eq!(*pw, 2e-6);
                assert_eq!(*period, 4e-6);
            }
            other => panic!("expected pulse, got {other:?}"),
        }
        match &ckt.elements()[1].kind {
            ElementKind::Vsource {
                wave: Waveform::Sin { freq, .. },
            } => {
                assert_eq!(*freq, 1e6);
            }
            other => panic!("expected sin, got {other:?}"),
        }
    }

    #[test]
    fn continuation_and_comments() {
        let ckt = parse_netlist("t\n* a comment\nR1 a 0\n+ 4.7k ; trailing\n.end\n").unwrap();
        match ckt.elements()[0].kind {
            ElementKind::Resistor { r } => assert!((r - 4700.0).abs() < 1e-9),
            _ => panic!(),
        }
    }

    #[test]
    fn tran_card_parsed() {
        let deck = parse_deck("t\nR1 a 0 1k\n.tran 10n 4u uic\n.end\n").unwrap();
        let tr = deck.tran.unwrap();
        assert_eq!(tr.tstep, 10e-9);
        assert_eq!(tr.tstop, 4e-6);
        assert!(tr.uic);
    }

    #[test]
    fn ic_card_parsed() {
        let ckt = parse_netlist("t\nR1 a 0 1k\n.ic v(a)=2.5\n.end\n").unwrap();
        assert_eq!(ckt.initial_conditions.len(), 1);
        assert_eq!(ckt.initial_conditions[0].1, 2.5);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_netlist("t\nR1 a 0 zzz\n.end\n").unwrap_err();
        match err {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn netlist_round_trip() {
        let src = "rt\nV1 a 0 dc 5\nR1 a b 1k\nC1 b 0 1n ic=0\nM1 b a 0 0 nch w=10u l=1u\n.model nch nmos vto=0.8 kp=80u lambda=0.05 gamma=0.4 phi=0.65\n.end\n";
        let c1 = parse_netlist(src).unwrap();
        let emitted = c1.to_netlist();
        let c2 = parse_netlist(&emitted).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        assert_eq!(c1.node_count(), c2.node_count());
        assert_eq!(c1.models.len(), c2.models.len());
    }
}
