//! Sparse MNA engine with a reusable symbolic factorisation.
//!
//! The fault-simulation hot loop solves the *same-structured* linear
//! system thousands of times: every Newton iteration of every timestep
//! of every fault reassembles a matrix whose nonzero pattern depends
//! only on the circuit topology. This module splits that work the way
//! sparse-SPICE kernels (Kundert's Sparse1.3, KLU) do:
//!
//! * [`Pattern`] — built **once per topology**: the structural nonzero
//!   set, a fill-reducing Markowitz pivot order with a structurally
//!   nonzero diagonal, the symbolic fill-in, and a precomputed
//!   slot→position scatter plan. Building it costs a symbolic
//!   elimination; using it costs nothing.
//! * [`SparseSystem`] — per-solver numeric state. Devices stamp by
//!   *slot* (a precomputed index into the nonzero array, resolved
//!   through an O(1) lookup table instead of `row*n + col`), and each
//!   `solve` runs a numeric-only refactorisation over the frozen
//!   structure: no pivot search, no fill discovery, no allocation.
//! * [`PatternCache`] — a thread-safe map from topology to
//!   `Arc<Pattern>`, shared across a whole fault campaign. Faults that
//!   preserve the stamp structure (soft deviations) hit the cache
//!   outright; bridges and opens add a handful of known slots and get
//!   their variant pattern built exactly once.
//! * [`MnaSolver`] — the dispatcher: a dense [`MnaSystem`] for tiny
//!   systems (below [`DENSE_CUTOFF`] unknowns dense pivoting is both
//!   faster and more robust), sparse otherwise. It also keeps
//!   [`SolverStats`] work counters alive across the sparse → dense
//!   demotion.
//!
//! ## Numeric robustness under a frozen pivot order
//!
//! A purely structural pivot order can die numerically: MNA rows mix
//! gmin-scale diagonals with unit-scale source couplings and
//! milli-siemens transconductances, and eliminating a tiny pivot under
//! large off-diagonals grows the factors until the (row-scale-relative,
//! see [`crate::mna`]) pivot test trips. When that happens the system
//! **re-pivots numerically**: a threshold-Markowitz ordering is
//! recomputed from the *current values* and kept as a solver-local
//! plan, so subsequent refactors stay cheap. Only if the freshly
//! re-pivoted plan also fails does the solve drop to dense partial
//! pivoting — at that point the matrix is singular for any practical
//! purpose, and the dense solver reports it precisely.

use crate::devices::UnknownMap;
use crate::mna::{MnaSystem, Stamper, REL_PIVOT_TOL};
use crate::netlist::{Circuit, ElementKind};
use crate::SpiceError;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Below this many unknowns the dense solver is used under
/// [`SolverKind::Auto`]: dense partial pivoting beats the sparse
/// machinery's bookkeeping on matrices that fit in a couple of cache
/// lines.
pub const DENSE_CUTOFF: usize = 12;

/// Threshold-pivoting acceptance ratio for the numeric re-pivot: a
/// candidate pivot must reach this fraction of the largest magnitude in
/// its active column (Kundert-style partial threshold pivoting).
const PIVOT_THRESHOLD: f64 = 0.01;

/// Consecutive dense rescues after which [`MnaSolver::solve`] demotes
/// a sparse solver to plain dense for the remainder of its analysis.
const DEMOTE_AFTER_FALLBACKS: u32 = 2;

/// Element-growth limit for a frozen-order refactorisation: when a
/// factored row exceeds this multiple of the assembled matrix's
/// largest entry, the elimination has amplified round-off past ~6
/// digits and the row-relative pivot test alone cannot see it (the
/// whole row grew together). Treated like a dead pivot: re-pivot
/// numerically. Kept tight (1e6 ⇒ solution agreement with dense
/// partial pivoting to ~1e-10·‖x‖) because a re-pivot costs tens of
/// microseconds once, while silent precision loss is unbounded.
pub(crate) const GROWTH_LIMIT: f64 = 1e6;

/// Which linear-solver backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick per system size: dense below [`DENSE_CUTOFF`] unknowns,
    /// sparse at or above it.
    #[default]
    Auto,
    /// Always the dense row-major LU.
    Dense,
    /// Always the sparse engine (still falls back to dense on a
    /// structurally singular pattern or a numerically dead pivot).
    Sparse,
}

/// Marker for "not a structural nonzero" in the slot lookup table.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// A frozen factorisation plan: pivot order, filled structure and the
/// stamp scatter map. [`Pattern`] holds the structural (topology-only)
/// plan; a [`SparseSystem`] may additionally carry a numerically
/// re-pivoted local plan. Crate-visible so the batched engine
/// ([`crate::batch`]) can run the same plan across many value lanes.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    /// Elimination step → original row.
    pub(crate) row_perm: Vec<u32>,
    /// Elimination position → original column (unknown index).
    pub(crate) col_perm: Vec<u32>,
    /// CSR over the *filled, permuted* pattern: `row_start[k]..row_start
    /// [k+1]` indexes `cols`/the LU value array for elimination row `k`.
    pub(crate) row_start: Vec<u32>,
    /// Column positions per filled row, ascending.
    pub(crate) cols: Vec<u32>,
    /// Index of the diagonal entry within the LU arrays, per row.
    pub(crate) diag: Vec<u32>,
    /// Scatter plan, parallel to `cols`: the assembled-value slot that
    /// lands on each factor entry, or [`NO_SLOT`] for pure fill — one
    /// linear pass loads a whole row of the workspace.
    pub(crate) slot_at: Vec<u32>,
}

/// Working state for a Markowitz elimination over row/column index
/// sets. Shared by the structural ordering (`Pattern::build`) and the
/// numeric re-pivot, which differ only in how they pick each pivot.
struct Elimination {
    rows: Vec<BTreeSet<u32>>,
    cols_ix: Vec<BTreeSet<u32>>,
    row_active: Vec<bool>,
}

impl Elimination {
    fn new(n: usize, coords: &[(u32, u32)]) -> Self {
        let mut rows: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        let mut cols_ix: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for &(r, c) in coords {
            rows[r as usize].insert(c);
            cols_ix[c as usize].insert(r);
        }
        Elimination {
            rows,
            cols_ix,
            row_active: vec![true; n],
        }
    }

    /// Applies the symbolic Schur update for pivot `(pi, pj)` and
    /// deactivates its row and column.
    fn eliminate(&mut self, pi: u32, pj: u32) {
        let pivot_row: Vec<u32> = self.rows[pi as usize]
            .iter()
            .copied()
            .filter(|&c| c != pj)
            .collect();
        let updating: Vec<u32> = self.cols_ix[pj as usize]
            .iter()
            .copied()
            .filter(|&r| r != pi)
            .collect();
        for &r in &updating {
            for &c in &pivot_row {
                if self.rows[r as usize].insert(c) {
                    self.cols_ix[c as usize].insert(r);
                }
            }
        }
        self.row_active[pi as usize] = false;
        for &c in self.rows[pi as usize].clone().iter() {
            self.cols_ix[c as usize].remove(&pi);
        }
        for &r in self.cols_ix[pj as usize].clone().iter() {
            self.rows[r as usize].remove(&pj);
        }
        self.cols_ix[pj as usize].clear();
    }
}

/// Completes a plan from a chosen pivot order: symbolic up-looking
/// fill over the fixed order, CSR assembly, and the scatter map.
/// Returns `None` when some row lacks its structural diagonal (cannot
/// happen for Markowitz-chosen pivots; checked defensively).
pub(crate) fn finish_plan(
    n: usize,
    coords: &[(u32, u32)],
    row_perm: Vec<u32>,
    col_perm: Vec<u32>,
) -> Option<Plan> {
    let mut rpos = vec![0u32; n];
    let mut cpos = vec![0u32; n];
    for (k, (&r, &c)) in row_perm.iter().zip(&col_perm).enumerate() {
        rpos[r as usize] = k as u32;
        cpos[c as usize] = k as u32;
    }

    // Original pattern per permuted row, in position space.
    let mut orig_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(r, c) in coords {
        orig_rows[rpos[r as usize] as usize].push(cpos[c as usize]);
    }

    // Symbolic up-looking elimination over the fixed order,
    // materialising the filled structure row by row: row k's final
    // structure is its original entries plus, for every already-
    // factored row j < k it reaches, that row's U entries.
    let mut row_start = vec![0u32; n + 1];
    let mut cols: Vec<u32> = Vec::with_capacity(coords.len() * 2);
    let mut diag = vec![0u32; n];
    let mut mark = vec![false; n];
    for k in 0..n {
        for &p in &orig_rows[k] {
            mark[p as usize] = true;
        }
        for j in 0..k {
            if !mark[j] {
                continue;
            }
            let dj = diag[j] as usize;
            let end = row_start[j + 1] as usize;
            for &t in &cols[dj + 1..end] {
                mark[t as usize] = true;
            }
        }
        if !mark[k] {
            return None;
        }
        for (p, m) in mark.iter_mut().enumerate() {
            if *m {
                if p == k {
                    diag[k] = cols.len() as u32;
                }
                cols.push(p as u32);
                *m = false;
            }
        }
        row_start[k + 1] = cols.len() as u32;
    }

    // Scatter plan: which assembled slot feeds each factor entry
    // (NO_SLOT for pure fill), aligned with `cols` so the refactor
    // loads a row in one linear pass.
    let mut slot_pos = vec![NO_SLOT; n * n]; // (row k, position) → slot
    for (slot, &(r, c)) in coords.iter().enumerate() {
        let k = rpos[r as usize] as usize;
        slot_pos[k * n + cpos[c as usize] as usize] = slot as u32;
    }
    let mut slot_at = Vec::with_capacity(cols.len());
    for k in 0..n {
        for idx in row_start[k] as usize..row_start[k + 1] as usize {
            slot_at.push(slot_pos[k * n + cols[idx] as usize]);
        }
    }

    Some(Plan {
        row_perm,
        col_perm,
        row_start,
        cols,
        diag,
        slot_at,
    })
}

/// The reusable symbolic half of a sparse factorisation: structural
/// nonzeros, pivot order, fill-in, and the stamp scatter plan. Immutable
/// once built; shared via `Arc` across Newton iterations, timesteps and
/// campaign workers.
#[derive(Debug)]
pub struct Pattern {
    n: usize,
    /// Sorted, deduplicated structural coordinates — the cache identity.
    coords: Vec<(u32, u32)>,
    /// Dense `n × n` lookup: `(row, col)` → slot index into the value
    /// array (`NO_SLOT` when absent). O(1) stamp resolution.
    pub(crate) slot_of: Vec<u32>,
    /// The topology-only factorisation plan.
    pub(crate) plan: Plan,
}

impl Pattern {
    /// Symbolic analysis: orders the pivots (structural Markowitz with
    /// fill tracking), computes the fill-in, and freezes the
    /// factorisation structure. Returns `None` when the pattern has no
    /// structural transversal (a structurally singular system — the
    /// caller falls back to dense pivoting, which reports the precise
    /// failure).
    pub fn build(n: usize, coords: Vec<(u32, u32)>) -> Option<Pattern> {
        Self::build_inner(n, coords, None)
    }

    /// Like [`Pattern::build`], but restricts pivot *selection* to the
    /// `allowed` coordinate set (the structure itself is unchanged).
    /// The batched engine uses this to factor a union-of-lanes pattern
    /// while only pivoting on entries structurally present in *every*
    /// lane, so one elimination order is numerically valid for all of
    /// them. Returns `None` when the restriction leaves no transversal.
    pub(crate) fn build_restricted(
        n: usize,
        coords: Vec<(u32, u32)>,
        allowed: &HashSet<(u32, u32)>,
    ) -> Option<Pattern> {
        Self::build_inner(n, coords, Some(allowed))
    }

    fn build_inner(
        n: usize,
        mut coords: Vec<(u32, u32)>,
        allowed: Option<&HashSet<(u32, u32)>>,
    ) -> Option<Pattern> {
        if n == 0 {
            return None;
        }
        coords.sort_unstable();
        coords.dedup();

        // Structural Markowitz ordering: at each step pick the
        // structural nonzero minimising (r−1)(c−1); the symbolic Schur
        // update lets later choices see the fill.
        let mut elim = Elimination::new(n, &coords);
        let mut row_perm = Vec::with_capacity(n);
        let mut col_perm = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best: Option<(usize, u32, u32)> = None;
            for (i, row) in elim.rows.iter().enumerate() {
                if !elim.row_active[i] {
                    continue;
                }
                let rc = row.len();
                for &j in row {
                    if let Some(allowed) = allowed {
                        if !allowed.contains(&(i as u32, j)) {
                            continue;
                        }
                    }
                    let cc = elim.cols_ix[j as usize].len();
                    let cost = rc.saturating_sub(1) * cc.saturating_sub(1);
                    if best.is_none_or(|(bc, _, _)| cost < bc) {
                        best = Some((cost, i as u32, j));
                    }
                }
            }
            let (_, pi, pj) = best?; // no structural pivot left: singular
            row_perm.push(pi);
            col_perm.push(pj);
            elim.eliminate(pi, pj);
        }

        let plan = finish_plan(n, &coords, row_perm, col_perm)?;
        let mut slot_of = vec![NO_SLOT; n * n];
        for (slot, &(r, c)) in coords.iter().enumerate() {
            slot_of[r as usize * n + c as usize] = slot as u32;
        }
        PATTERN_BUILDS.inc();
        Some(Pattern {
            n,
            coords,
            slot_of,
            plan,
        })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros (before fill).
    pub fn nnz(&self) -> usize {
        self.coords.len()
    }

    /// Nonzeros of the LU factors (including fill-in) under the
    /// structural plan.
    pub fn nnz_factored(&self) -> usize {
        self.plan.cols.len()
    }
}

/// Re-pivots from the currently assembled values: threshold-Markowitz
/// — among structural nonzeros whose magnitude reaches
/// [`PIVOT_THRESHOLD`] of their active column's largest entry, pick the
/// lowest Markowitz cost (ties: larger magnitude). Values are
/// eliminated densely alongside the structural sets so each step sees
/// the real Schur complement.
fn numeric_plan(n: usize, coords: &[(u32, u32)], vals: &[f64]) -> Option<Plan> {
    let mut a = vec![0.0f64; n * n];
    for (slot, &(r, c)) in coords.iter().enumerate() {
        a[r as usize * n + c as usize] += vals[slot];
    }
    let mut elim = Elimination::new(n, coords);
    let mut row_perm = Vec::with_capacity(n);
    let mut col_perm = Vec::with_capacity(n);
    for _ in 0..n {
        // Active-column magnitudes for the threshold test.
        let mut col_max = vec![0.0f64; n];
        for (i, row) in elim.rows.iter().enumerate() {
            if !elim.row_active[i] {
                continue;
            }
            for &j in row {
                let m = a[i * n + j as usize].abs();
                if m > col_max[j as usize] {
                    col_max[j as usize] = m;
                }
            }
        }
        let mut best: Option<(usize, f64, u32, u32)> = None;
        for (i, row) in elim.rows.iter().enumerate() {
            if !elim.row_active[i] {
                continue;
            }
            let rc = row.len();
            for &j in row {
                let mag = a[i * n + j as usize].abs();
                if mag == 0.0 || mag < PIVOT_THRESHOLD * col_max[j as usize] {
                    continue;
                }
                let cc = elim.cols_ix[j as usize].len();
                let cost = rc.saturating_sub(1) * cc.saturating_sub(1);
                let better = match best {
                    None => true,
                    Some((bc, bm, _, _)) => cost < bc || (cost == bc && mag > bm),
                };
                if better {
                    best = Some((cost, mag, i as u32, j));
                }
            }
        }
        let (_, _, pi, pj) = best?; // every remaining entry is zero
                                    // Dense numeric elimination so later threshold tests see the
                                    // updated values.
        let pivot = a[pi as usize * n + pj as usize];
        let updating: Vec<u32> = elim.cols_ix[pj as usize]
            .iter()
            .copied()
            .filter(|&r| r != pi)
            .collect();
        for &r in &updating {
            let f = a[r as usize * n + pj as usize] / pivot;
            if f != 0.0 {
                for c in 0..n {
                    a[r as usize * n + c] -= f * a[pi as usize * n + c];
                }
            }
        }
        row_perm.push(pi);
        col_perm.push(pj);
        elim.eliminate(pi, pj);
    }
    finish_plan(n, coords, row_perm, col_perm)
}

/// Process-wide count of numeric re-pivots (diagnostic; see
/// [`sparse_repivots`]).
static REPIVOTS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of dense fallbacks after a failed re-pivot
/// (diagnostic; see [`sparse_dense_fallbacks`]).
static DENSE_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many times any sparse solver in this process re-pivoted
/// numerically. Purely diagnostic — lets benches and tests confirm the
/// fast path stays fast.
pub fn sparse_repivots() -> u64 {
    REPIVOTS.load(Ordering::Relaxed)
}

/// How many times any sparse solver in this process dropped to the
/// dense solver after re-pivoting failed. Purely diagnostic.
pub fn sparse_dense_fallbacks() -> u64 {
    DENSE_FALLBACKS.load(Ordering::Relaxed)
}

/// Symbolic pattern builds (cold: once per topology).
static PATTERN_BUILDS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.pattern_builds");
static CACHE_HITS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.pattern_cache.hits");
static CACHE_MISSES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.pattern_cache.misses");
static FLUSH_REFACTORISATIONS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.refactorisations");
static FLUSH_REPIVOTS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.repivots");
static FLUSH_DENSE_FALLBACKS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.dense_fallbacks");
static FLUSH_DEMOTIONS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.sparse.demotions");

/// Per-solver work counters, kept as plain integers on the hot path
/// and flushed into the global [`cat_telemetry`] registry at the end
/// of an analysis (so the per-solve cost of telemetry is a couple of
/// ordinary increments, enabled or not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Numeric refactorisation + solve passes that ran to completion
    /// or failure over a frozen structure (includes the retry after a
    /// re-pivot, excludes dense solves).
    pub refactorisations: u64,
    /// Threshold re-pivots: the frozen order died numerically and a
    /// fresh values-aware ordering was computed.
    pub repivots: u64,
    /// Dense partial-pivoting rescues after even the re-pivoted plan
    /// failed.
    pub dense_fallbacks: u64,
    /// Sparse solvers demoted to dense for the rest of their analysis
    /// after repeated consecutive rescues.
    pub demotions: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self` (used when merging the stats of
    /// a demoted backend, per-fault totals, campaign aggregates …).
    pub fn merge(&mut self, other: &SolverStats) {
        self.refactorisations += other.refactorisations;
        self.repivots += other.repivots;
        self.dense_fallbacks += other.dense_fallbacks;
        self.demotions += other.demotions;
    }

    /// Adds these stats to the global telemetry counters
    /// (`spice.sparse.*`). Cheap no-op while telemetry is disabled.
    pub fn flush_to_telemetry(&self) {
        FLUSH_REFACTORISATIONS.add(self.refactorisations);
        FLUSH_REPIVOTS.add(self.repivots);
        FLUSH_DENSE_FALLBACKS.add(self.dense_fallbacks);
        FLUSH_DEMOTIONS.add(self.demotions);
    }
}

/// Per-solver numeric state over a shared [`Pattern`]: assembled values,
/// right-hand side, and the LU workspace for numeric-only refactoring.
#[derive(Debug, Clone)]
pub struct SparseSystem {
    pattern: Arc<Pattern>,
    vals: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    lu: Vec<f64>,
    inv_diag: Vec<f64>,
    work: Vec<f64>,
    y: Vec<f64>,
    /// Snapshot of the step-constant (linear) assembly, restored at the
    /// top of every Newton iteration instead of re-stamping it.
    base_vals: Vec<f64>,
    base_rhs: Vec<f64>,
    /// Numerically re-pivoted plan, installed when the shared
    /// structural plan hits a dead pivot at some operating point.
    local_plan: Option<Box<Plan>>,
    /// Consecutive solves rescued only by the dense fallback; when it
    /// keeps happening the dispatcher demotes the solver to dense
    /// outright (see [`MnaSolver::solve`]).
    consecutive_fallbacks: u32,
    /// Work counters for this solver's lifetime.
    stats: SolverStats,
}

impl Stamper for SparseSystem {
    fn dim(&self) -> usize {
        self.pattern.n
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, g: f64) {
        let slot = self.pattern.slot_of[row * self.pattern.n + col];
        debug_assert!(slot != NO_SLOT, "stamp outside pattern at ({row},{col})");
        self.vals[slot as usize] += g;
    }

    #[inline]
    fn add_rhs(&mut self, row: usize, v: f64) {
        self.rhs[row] += v;
    }

    fn clear(&mut self) {
        self.vals.fill(0.0);
        self.rhs.fill(0.0);
    }
}

/// Refactors and solves over `plan`. `lu` is resized to the plan's
/// factor count; `work`/`y` are n-sized scratch buffers.
#[allow(clippy::too_many_arguments)]
fn refactor_and_solve(
    plan: &Plan,
    n: usize,
    vals: &[f64],
    rhs: &[f64],
    lu: &mut Vec<f64>,
    inv_diag: &mut [f64],
    work: &mut [f64],
    y: &mut [f64],
    analysis: &str,
) -> Result<Vec<f64>, SpiceError> {
    lu.resize(plan.cols.len(), 0.0);
    // Up-looking row LU: for each elimination row, scatter the
    // assembled values, eliminate against all earlier rows in the
    // (precomputed) structure, gather back into the factor array.
    let mut a_max = 0.0f64; // largest assembled magnitude
    let mut factor_max = 0.0f64; // largest factored magnitude
    for k in 0..n {
        let (start, end) = (plan.row_start[k] as usize, plan.row_start[k + 1] as usize);
        let row = &plan.cols[start..end];
        for (&pos, &slot) in row.iter().zip(&plan.slot_at[start..end]) {
            let v = if slot == NO_SLOT {
                0.0 // pure fill
            } else {
                vals[slot as usize]
            };
            a_max = a_max.max(v.abs());
            work[pos as usize] = v;
        }
        let dk = plan.diag[k] as usize;
        for idx in start..dk {
            let j = plan.cols[idx] as usize;
            let f = work[j] * inv_diag[j];
            work[j] = f;
            if f != 0.0 {
                let dj = plan.diag[j] as usize;
                let jend = plan.row_start[j + 1] as usize;
                for (&t, &u) in plan.cols[dj + 1..jend].iter().zip(&lu[dj + 1..jend]) {
                    work[t as usize] -= f * u;
                }
            }
        }
        let mut row_scale = 0.0f64;
        for (idx, &pos) in row.iter().enumerate() {
            let v = work[pos as usize];
            lu[start + idx] = v;
            row_scale = row_scale.max(v.abs());
        }
        factor_max = factor_max.max(row_scale);
        let pivot = lu[dk];
        if pivot.abs() <= REL_PIVOT_TOL * row_scale || pivot == 0.0 {
            return Err(SpiceError::Singular {
                analysis: analysis.to_string(),
            });
        }
        inv_diag[k] = 1.0 / pivot;
    }
    // Element-growth guard, checked once the assembled scale is fully
    // known: a factor that grew ~8 decades past the matrix has
    // amplified round-off past usefulness even though every row passed
    // its own (row-relative) pivot test.
    if factor_max > GROWTH_LIMIT * a_max {
        return Err(SpiceError::Singular {
            analysis: analysis.to_string(),
        });
    }

    // Forward substitution (L has unit diagonal; factors stored in the
    // sub-diagonal part of each row).
    for k in 0..n {
        let mut sum = rhs[plan.row_perm[k] as usize];
        let start = plan.row_start[k] as usize;
        let dk = plan.diag[k] as usize;
        for idx in start..dk {
            sum -= lu[idx] * y[plan.cols[idx] as usize];
        }
        y[k] = sum;
    }
    // Back substitution.
    for k in (0..n).rev() {
        let mut sum = y[k];
        let dk = plan.diag[k] as usize;
        let end = plan.row_start[k + 1] as usize;
        for idx in dk + 1..end {
            sum -= lu[idx] * y[plan.cols[idx] as usize];
        }
        y[k] = sum * inv_diag[k];
    }
    // Un-permute the unknowns.
    let mut x = vec![0.0; n];
    for k in 0..n {
        x[plan.col_perm[k] as usize] = y[k];
    }
    Ok(x)
}

impl SparseSystem {
    /// A zeroed system over `pattern`.
    pub fn new(pattern: Arc<Pattern>) -> Self {
        let n = pattern.n;
        let nnz = pattern.coords.len();
        let nnz_lu = pattern.plan.cols.len();
        SparseSystem {
            pattern,
            vals: vec![0.0; nnz],
            rhs: vec![0.0; n],
            lu: vec![0.0; nnz_lu],
            inv_diag: vec![0.0; n],
            work: vec![0.0; n],
            y: vec![0.0; n],
            base_vals: vec![0.0; nnz],
            base_rhs: vec![0.0; n],
            local_plan: None,
            consecutive_fallbacks: 0,
            stats: SolverStats::default(),
        }
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// Captures the current assembly as the step-constant baseline
    /// (everything except the iterate-dependent device stamps).
    pub fn snapshot_baseline(&mut self) {
        self.base_vals.copy_from_slice(&self.vals);
        self.base_rhs.copy_from_slice(&self.rhs);
    }

    /// Restores the snapshot taken by
    /// [`SparseSystem::snapshot_baseline`] — a pair of memcpys, the
    /// sparse engine's replacement for re-stamping the linear circuit
    /// every Newton iteration.
    pub fn restore_baseline(&mut self) {
        self.vals.copy_from_slice(&self.base_vals);
        self.rhs.copy_from_slice(&self.base_rhs);
    }

    /// True when this solver installed a numerically re-pivoted plan.
    pub fn repivoted(&self) -> bool {
        self.local_plan.is_some()
    }

    /// Work counters accumulated over this solver's lifetime.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Numeric-only refactorisation + solve over the frozen structure,
    /// re-pivoting from the current values when a pivot dies relative
    /// to its row scale ([`REL_PIVOT_TOL`]). Assembled values and the
    /// right-hand side are left intact, so the dense fallback can
    /// re-solve the identical system.
    ///
    /// # Errors
    /// [`SpiceError::Singular`] when even the freshly re-pivoted plan
    /// hits a dead pivot — the caller is expected to retry with dense
    /// partial pivoting before declaring the system unsolvable.
    pub fn solve(&mut self, analysis: &str) -> Result<Vec<f64>, SpiceError> {
        let n = self.pattern.n;
        self.stats.refactorisations += 1;
        let plan = self.local_plan.as_deref().unwrap_or(&self.pattern.plan);
        match refactor_and_solve(
            plan,
            n,
            &self.vals,
            &self.rhs,
            &mut self.lu,
            &mut self.inv_diag,
            &mut self.work,
            &mut self.y,
            analysis,
        ) {
            Ok(x) => Ok(x),
            Err(_) => {
                // The frozen order died at this operating point:
                // re-pivot from the values actually on hand and retry.
                REPIVOTS.fetch_add(1, Ordering::Relaxed);
                self.stats.repivots += 1;
                let fresh = numeric_plan(n, &self.pattern.coords, &self.vals).ok_or_else(|| {
                    SpiceError::Singular {
                        analysis: analysis.to_string(),
                    }
                })?;
                self.stats.refactorisations += 1;
                let x = refactor_and_solve(
                    &fresh,
                    n,
                    &self.vals,
                    &self.rhs,
                    &mut self.lu,
                    &mut self.inv_diag,
                    &mut self.work,
                    &mut self.y,
                    analysis,
                )?;
                self.local_plan = Some(Box::new(fresh));
                Ok(x)
            }
        }
    }

    /// Rebuilds the assembled system densely and solves it with partial
    /// pivoting — the robustness net under the frozen pivot orders.
    fn solve_dense_fallback(&mut self, analysis: &str) -> Result<Vec<f64>, SpiceError> {
        DENSE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        self.stats.dense_fallbacks += 1;
        let mut dense = MnaSystem::new(self.pattern.n);
        for (slot, &(r, c)) in self.pattern.coords.iter().enumerate() {
            dense.add(r as usize, c as usize, self.vals[slot]);
        }
        dense.set_rhs(&self.rhs);
        dense.solve(analysis)
    }
}

/// Enumerates the structural stamp coordinates of a circuit: the union
/// of every slot any device may write in **any** analysis (DC and
/// transient, both MOS drain/source orientations), so one pattern
/// serves the operating point, every timestep and every Newton
/// iteration. Supersets only cost a few structurally zero slots.
pub fn pattern_coords(ckt: &Circuit, map: &UnknownMap) -> Vec<(u32, u32)> {
    let n = map.dim();
    let mut coords: Vec<(u32, u32)> = Vec::with_capacity(16 * ckt.elements().len());
    let pair = |a: Option<usize>, b: Option<usize>, coords: &mut Vec<(u32, u32)>| {
        if let Some(i) = a {
            coords.push((i as u32, i as u32));
        }
        if let Some(j) = b {
            coords.push((j as u32, j as u32));
        }
        if let (Some(i), Some(j)) = (a, b) {
            coords.push((i as u32, j as u32));
            coords.push((j as u32, i as u32));
        }
    };
    // gshunt diagonal on every node row.
    for node_row in 0..(map.node_count() - 1) {
        coords.push((node_row as u32, node_row as u32));
    }
    for (ei, e) in ckt.elements().iter().enumerate() {
        match &e.kind {
            ElementKind::Resistor { .. } => {
                pair(
                    map.node_var(e.nodes[0]),
                    map.node_var(e.nodes[1]),
                    &mut coords,
                );
            }
            ElementKind::Capacitor { .. } => {
                // Transient companion conductance.
                pair(
                    map.node_var(e.nodes[0]),
                    map.node_var(e.nodes[1]),
                    &mut coords,
                );
            }
            ElementKind::Vsource { .. } => {
                let br = map.branch_row(ei) as u32;
                for t in [e.nodes[0], e.nodes[1]] {
                    if let Some(i) = map.node_var(t) {
                        coords.push((i as u32, br));
                        coords.push((br, i as u32));
                    }
                }
            }
            ElementKind::Isource { .. } => {} // RHS only
            ElementKind::Mosfet { .. } => {
                let (d, g, s, b) = (e.nodes[0], e.nodes[1], e.nodes[2], e.nodes[3]);
                // Channel linearisation: rows {d,s} × cols {d,s,g,b},
                // covering both drain/source orientations.
                for row in [d, s] {
                    let Some(r) = map.node_var(row) else { continue };
                    for col in [d, s, g, b] {
                        if let Some(c) = map.node_var(col) {
                            coords.push((r as u32, c as u32));
                        }
                    }
                }
                // Meyer gate-capacitance companions (transient): g–s
                // and g–d conductances.
                pair(map.node_var(g), map.node_var(s), &mut coords);
                pair(map.node_var(g), map.node_var(d), &mut coords);
            }
        }
    }
    debug_assert!(coords
        .iter()
        .all(|&(r, c)| (r as usize) < n && (c as usize) < n));
    coords.sort_unstable();
    coords.dedup();
    coords
}

/// One hash bucket of the pattern cache: the full coordinate list (the
/// exact identity — collisions compare it) paired with the built
/// pattern, or `None` for a structurally singular topology.
type CacheBucket = Vec<(Vec<(u32, u32)>, Option<Arc<Pattern>>)>;

/// A thread-safe topology → [`Pattern`] map. One cache per campaign:
/// the nominal circuit, every soft fault (structure-preserving) and
/// every repeated hard-fault shape pay the symbolic analysis exactly
/// once. Entries are compared by their full coordinate list — a hash
/// collision can never alias two topologies.
#[derive(Debug, Default)]
pub struct PatternCache {
    map: Mutex<HashMap<u64, CacheBucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PatternCache {
    /// An empty cache.
    pub fn new() -> Self {
        PatternCache::default()
    }

    /// Looks up (or builds and inserts) the pattern for `coords`.
    /// `None` means the pattern is structurally singular — that result
    /// is cached too, so repeated faults on a degenerate topology don't
    /// redo the symbolic analysis just to fail again.
    pub fn get_or_build(&self, n: usize, coords: Vec<(u32, u32)>) -> Option<Arc<Pattern>> {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a over (n, coords)
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(n as u64);
        for &(r, c) in &coords {
            mix(((r as u64) << 32) | c as u64);
        }
        let mut map = self.map.lock().expect("pattern cache poisoned");
        let bucket = map.entry(h).or_default();
        if let Some((_, pat)) = bucket.iter().find(|(k, _)| *k == coords) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.inc();
            return pat.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.inc();
        let pat = Pattern::build(n, coords.clone()).map(Arc::new);
        bucket.push((coords, pat.clone()));
        pat
    }

    /// Cache hits so far (symbolic analyses avoided).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (symbolic analyses performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached topologies (including negatively cached
    /// structurally singular ones). Every miss inserts exactly one
    /// entry, so `len() == misses()` at any quiescent point — the
    /// invariant that proves each topology paid its symbolic analysis
    /// exactly once.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("pattern cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when no topology has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The concrete linear-solver backend inside an [`MnaSolver`].
#[derive(Debug)]
pub enum SolverBackend {
    /// Dense row-major LU with partial pivoting.
    Dense(MnaSystem),
    /// Sparse slot-stamped LU with reusable symbolic factorisation.
    Sparse(SparseSystem),
}

/// The linear-solver dispatch used by Newton: dense for tiny systems,
/// the pattern-reusing sparse engine otherwise, with dense partial
/// pivoting as the last-resort fallback when even a numeric re-pivot
/// dies. Carries the work counters of any backend it demoted, so
/// [`MnaSolver::stats`] survives the sparse → dense demotion.
#[derive(Debug)]
pub struct MnaSolver {
    backend: SolverBackend,
    /// Stats inherited from a demoted sparse backend.
    carried: SolverStats,
}

impl MnaSolver {
    /// Builds the solver for a circuit, honouring `kind` and reusing
    /// symbolic work from `cache` when one is supplied. Falls back to
    /// dense when the sparse pattern turns out structurally singular
    /// (dense pivoting then reports the precise failure).
    pub fn for_circuit(
        ckt: &Circuit,
        map: &UnknownMap,
        kind: SolverKind,
        cache: Option<&PatternCache>,
    ) -> MnaSolver {
        let dim = map.dim();
        let want_sparse = match kind {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => dim >= DENSE_CUTOFF,
        };
        if want_sparse {
            let coords = pattern_coords(ckt, map);
            let pattern = match cache {
                Some(cache) => cache.get_or_build(dim, coords),
                None => Pattern::build(dim, coords).map(Arc::new),
            };
            if let Some(pattern) = pattern {
                return MnaSolver::sparse(SparseSystem::new(pattern));
            }
        }
        MnaSolver::dense(MnaSystem::new(dim))
    }

    /// Wraps a dense system.
    pub fn dense(sys: MnaSystem) -> MnaSolver {
        MnaSolver {
            backend: SolverBackend::Dense(sys),
            carried: SolverStats::default(),
        }
    }

    /// Wraps a sparse system.
    pub fn sparse(sys: SparseSystem) -> MnaSolver {
        MnaSolver {
            backend: SolverBackend::Sparse(sys),
            carried: SolverStats::default(),
        }
    }

    /// The active backend (Newton drivers use this to take the
    /// baseline-snapshot shortcut on the sparse engine).
    pub fn backend_mut(&mut self) -> &mut SolverBackend {
        &mut self.backend
    }

    /// The sparse backend, when active.
    pub fn sparse_mut(&mut self) -> Option<&mut SparseSystem> {
        match &mut self.backend {
            SolverBackend::Sparse(sys) => Some(sys),
            SolverBackend::Dense(_) => None,
        }
    }

    /// True when the sparse engine is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, SolverBackend::Sparse(_))
    }

    /// Work counters over the solver's whole lifetime, including any
    /// sparse backend that has since been demoted to dense.
    pub fn stats(&self) -> SolverStats {
        let mut out = self.carried;
        if let SolverBackend::Sparse(sys) = &self.backend {
            out.merge(&sys.stats());
        }
        out
    }

    /// Solves the assembled system.
    ///
    /// A sparse system that keeps needing the dense rescue (both the
    /// frozen plan and a fresh numeric re-pivot failing, solve after
    /// solve) is paying a failed refactor plus an O(n³) re-pivot
    /// attempt plus the dense solve every iteration — after
    /// [`DEMOTE_AFTER_FALLBACKS`] consecutive rescues the solver
    /// demotes itself to plain dense for the rest of the analysis.
    ///
    /// # Errors
    /// [`SpiceError::Singular`] when the system is singular even under
    /// dense partial pivoting.
    pub fn solve(&mut self, analysis: &str) -> Result<Vec<f64>, SpiceError> {
        let mut demote = false;
        let out = match &mut self.backend {
            SolverBackend::Dense(sys) => sys.solve(analysis),
            SolverBackend::Sparse(sys) => match sys.solve(analysis) {
                Err(SpiceError::Singular { .. }) => {
                    let rescued = sys.solve_dense_fallback(analysis);
                    if rescued.is_ok() {
                        sys.consecutive_fallbacks += 1;
                        demote = sys.consecutive_fallbacks >= DEMOTE_AFTER_FALLBACKS;
                    }
                    rescued
                }
                other => {
                    sys.consecutive_fallbacks = 0;
                    other
                }
            },
        };
        if demote {
            if let SolverBackend::Sparse(sys) = &self.backend {
                self.carried.merge(&sys.stats());
            }
            self.carried.demotions += 1;
            self.backend = SolverBackend::Dense(MnaSystem::new(Stamper::dim(self)));
        }
        out
    }
}

impl Stamper for MnaSolver {
    fn dim(&self) -> usize {
        match &self.backend {
            SolverBackend::Dense(sys) => Stamper::dim(sys),
            SolverBackend::Sparse(sys) => Stamper::dim(sys),
        }
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, g: f64) {
        match &mut self.backend {
            SolverBackend::Dense(sys) => sys.add(row, col, g),
            SolverBackend::Sparse(sys) => sys.add(row, col, g),
        }
    }

    #[inline]
    fn add_rhs(&mut self, row: usize, v: f64) {
        match &mut self.backend {
            SolverBackend::Dense(sys) => sys.add_rhs(row, v),
            SolverBackend::Sparse(sys) => sys.add_rhs(row, v),
        }
    }

    fn clear(&mut self) {
        match &mut self.backend {
            SolverBackend::Dense(sys) => sys.clear(),
            SolverBackend::Sparse(sys) => sys.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a sparse system from explicit coordinates and a dense
    /// twin, stamps both identically, and returns both solutions.
    fn solve_both(n: usize, entries: &[(usize, usize, f64)], rhs: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let coords: Vec<(u32, u32)> = entries
            .iter()
            .map(|&(r, c, _)| (r as u32, c as u32))
            .collect();
        let pattern = Pattern::build(n, coords).expect("buildable pattern");
        let mut sp = SparseSystem::new(Arc::new(pattern));
        let mut de = MnaSystem::new(n);
        for &(r, c, v) in entries {
            sp.add(r, c, v);
            de.add(r, c, v);
        }
        for (i, &v) in rhs.iter().enumerate() {
            sp.add_rhs(i, v);
            de.add_rhs(i, v);
        }
        (sp.solve("sparse").unwrap(), de.solve("dense").unwrap())
    }

    #[test]
    fn sparse_matches_dense_on_spd_system() {
        // A small conductance-matrix shape (diagonally dominant).
        let entries = [
            (0, 0, 3.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -2.0),
            (2, 1, -2.0),
            (2, 2, 5.0),
        ];
        let (s, d) = solve_both(3, &entries, &[1.0, 2.0, 3.0]);
        for (a, b) in s.iter().zip(&d) {
            assert!((a - b).abs() < 1e-12, "{s:?} vs {d:?}");
        }
    }

    #[test]
    fn sparse_handles_zero_diagonal_vsource_shape() {
        // MNA with an ideal source: branch row 2 has no diagonal.
        // Matches mna.rs's voltage_divider_by_stamps.
        let entries = [
            (0, 0, 1e-3),
            (0, 1, -1e-3),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (0, 2, 1.0),
            (2, 0, 1.0),
        ];
        let (s, _) = solve_both(3, &entries, &[0.0, 0.0, 5.0]);
        assert!((s[0] - 5.0).abs() < 1e-9);
        assert!((s[1] - 2.5).abs() < 1e-9);
        assert!((s[2] + 0.0025).abs() < 1e-9);
    }

    #[test]
    fn refactor_reuses_structure_across_value_changes() {
        let coords = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let pattern = Arc::new(Pattern::build(2, coords).unwrap());
        let mut sys = SparseSystem::new(pattern);
        for scale in [1.0, 2.0, 0.5, 1e-6] {
            sys.clear();
            sys.add(0, 0, 2.0 * scale);
            sys.add(0, 1, 1.0 * scale);
            sys.add(1, 0, 1.0 * scale);
            sys.add(1, 1, 3.0 * scale);
            sys.add_rhs(0, 5.0 * scale);
            sys.add_rhs(1, 10.0 * scale);
            let x = sys.solve("refactor").unwrap();
            assert!((x[0] - 1.0).abs() < 1e-12, "scale {scale}: {x:?}");
            assert!((x[1] - 3.0).abs() < 1e-12, "scale {scale}: {x:?}");
        }
    }

    #[test]
    fn structurally_singular_pattern_is_rejected() {
        // Column 1 is structurally empty.
        assert!(Pattern::build(2, vec![(0, 0), (1, 0)]).is_none());
    }

    #[test]
    fn numerically_singular_falls_back_to_dense_and_reports() {
        let coords = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let pattern = Arc::new(Pattern::build(2, coords).unwrap());
        let mut solver = MnaSolver::sparse(SparseSystem::new(pattern));
        // Numerically dependent rows: the sparse pivot check trips, the
        // re-pivot cannot help, the dense fallback runs, and still
        // (correctly) reports Singular.
        solver.add(0, 0, 1.0);
        solver.add(0, 1, 2.0);
        solver.add(1, 0, 2.0);
        solver.add(1, 1, 4.0);
        solver.add_rhs(0, 1.0);
        assert!(matches!(
            solver.solve("fallback"),
            Err(SpiceError::Singular { .. })
        ));
        let stats = solver.stats();
        // The re-pivot attempt finds no usable pivot (numeric_plan
        // fails outright), so only the frozen refactor ran.
        assert_eq!(stats.refactorisations, 1);
        assert_eq!(stats.repivots, 1);
        assert_eq!(stats.dense_fallbacks, 1);
    }

    #[test]
    fn stats_survive_demotion_to_dense() {
        // A solvable-only-densely system: each solve takes the frozen
        // try, the re-pivot, and the dense rescue; after the second
        // consecutive rescue the dispatcher demotes, and the counters
        // accumulated by the sparse backend must remain visible.
        // Column 0 is a singleton holding 1e-20, so both the
        // structural order (Markowitz cost 0) and the threshold
        // re-pivot (sole entry ⇒ ratio 1) must pivot on (0,0) — a
        // pivot twenty decades below its own row scale, which trips
        // the sparse engine's row-relative test twice per solve. The
        // dense rescue judges pivots against their *column* scale
        // (tiny but consistent here) and solves it.
        let coords = vec![(0, 0), (0, 1), (1, 1)];
        let pattern = Arc::new(Pattern::build(2, coords).unwrap());
        let mut solver = MnaSolver::sparse(SparseSystem::new(pattern));
        for round in 0..2 {
            solver.clear();
            solver.add(0, 0, 1e-20);
            solver.add(0, 1, 1.0);
            solver.add(1, 1, 1.0);
            solver.add_rhs(0, 1.0);
            solver.add_rhs(1, 1.0);
            let x = solver.solve("demote").expect("dense rescue solves");
            assert!(x[0].abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-12, "{x:?}");
            let expect_sparse = round == 0;
            assert_eq!(solver.is_sparse(), expect_sparse, "round {round}");
        }
        let stats = solver.stats();
        assert_eq!(stats.dense_fallbacks, 2);
        assert_eq!(stats.demotions, 1);
        assert_eq!(stats.repivots, 2);
        assert_eq!(stats.refactorisations, 4, "frozen try + retry, twice");
        // Further dense solves leave the carried stats untouched.
        solver.clear();
        solver.add(0, 0, 1.0);
        solver.add(1, 1, 1.0);
        solver.solve("post-demotion").unwrap();
        assert_eq!(solver.stats(), stats);
    }

    #[test]
    fn dead_structural_pivot_repivots_numerically() {
        // The structural order can start on a numerically tiny pivot
        // (a gmin-scale diagonal) whose row carries unit-scale
        // couplings — the shape that kills a frozen order through
        // factor growth. The numeric re-pivot must rescue it and stick
        // as the solver-local plan.
        let entries = [
            (0, 0, 1e-12),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 1e-12),
            (0, 2, 0.5),
            (2, 0, 0.5),
            (2, 2, 2.0),
        ];
        let n = 3;
        let coords: Vec<(u32, u32)> = entries
            .iter()
            .map(|&(r, c, _)| (r as u32, c as u32))
            .collect();
        let pattern = Pattern::build(n, coords).unwrap();
        let mut sp = SparseSystem::new(Arc::new(pattern));
        let mut de = MnaSystem::new(n);
        for &(r, c, v) in &entries {
            sp.add(r, c, v);
            de.add(r, c, v);
        }
        for i in 0..n {
            sp.add_rhs(i, (i + 1) as f64);
            de.add_rhs(i, (i + 1) as f64);
        }
        let xs = sp.solve("repivot").unwrap();
        assert!(sp.repivoted(), "growth guard must trigger the re-pivot");
        let xd = de.solve("dense").unwrap();
        for (a, b) in xs.iter().zip(&xd) {
            let scale = b.abs().max(1.0);
            assert!((a - b).abs() < 1e-9 * scale, "{xs:?} vs {xd:?}");
        }
    }

    #[test]
    fn badly_scaled_sparse_system_solves() {
        // Same regression as the dense solver: tiny-but-consistent
        // scale must not be declared singular.
        let entries = [(0, 0, 1e-305), (1, 1, 2e-305)];
        let (s, _) = solve_both(2, &entries, &[3e-305, 2e-305]);
        assert!((s[0] - 3.0).abs() < 1e-9);
        assert!((s[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_cache_shares_and_counts() {
        let cache = PatternCache::new();
        let coords = vec![(0u32, 0u32), (1, 1)];
        let a = cache.get_or_build(2, coords.clone()).unwrap();
        let b = cache.get_or_build(2, coords).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the pattern");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // A different topology builds its own pattern.
        let c = cache
            .get_or_build(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)])
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn fill_in_is_handled() {
        // An arrow matrix factored top-left first fills the last
        // row/column completely — classic fill-in shape.
        let n = 5;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 4.0));
            if i + 1 < n {
                entries.push((i, n - 1, 1.0));
                entries.push((n - 1, i, 1.0));
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let (s, d) = solve_both(n, &entries, &rhs);
        for (a, b) in s.iter().zip(&d) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
