//! Batched multi-fault transient engine: k circuit variants advanced in
//! SIMD-friendly lockstep over one shared matrix structure.
//!
//! A fault campaign re-simulates the *same* testbench with a handful of
//! MNA entries perturbed per fault. The scalar path pays the full
//! per-fault cost anyway: every variant walks its own factorisation
//! plan, refactors its own matrix, and iterates its own Newton loop.
//! This module shares everything that is structural and batches
//! everything that is numeric:
//!
//! * [`BatchGroup`] — one symbolic factorisation for a whole group of
//!   same-shape fault variants. The pattern is built over the *union*
//!   of every member's structural nonzeros, with pivot selection
//!   restricted to the *intersection* (entries present in every lane),
//!   so a single elimination order is structurally valid for all of
//!   them. Source-model shorts get a cheaper special case: the injected
//!   ideal source only adds a border row/column, so the group factors
//!   the unmodified testbench block and folds the border in with a
//!   rank-1 bordered-block solve per lane.
//! * [`BatchedSystem`] — structure-of-arrays numeric state: assembled
//!   values, RHS, LU factors and solutions are stored lane-major
//!   (`vals[slot * k + lane]`), so the refactorisation and triangular
//!   solves walk **one** index stream from the shared plan while the
//!   inner loops run contiguous `k`-wide chunks the compiler can
//!   auto-vectorise. Failed or retired lanes are masked by zeroing
//!   their pivot reciprocals — zeros propagate harmlessly, NaNs would
//!   not.
//! * [`run_group`] — a batched transient driver mirroring
//!   [`crate::tran`]: shared drift-free grid, per-lane Newton
//!   convergence masks (a converged lane's iterate is latched so its
//!   trajectory is independent of its batch-mates), per-lane damped
//!   retry, and lane compaction — a lane whose sample callback stops
//!   it (fault detected) or whose Newton iteration dies is retired and
//!   its slot refilled from the pending queue.
//!
//! ## The scalar-fallback contract
//!
//! The batch path never step-halves and never re-pivots per lane: any
//! lane the lockstep kernel cannot finish cleanly (dead pivot, element
//! growth, non-finite iterate, damped-Newton exhaustion, degenerate
//! border) is **ejected** and reported with `completed = false`. The
//! caller re-runs that variant through the scalar path, which has the
//! full robustness ladder. Verdicts therefore come either from a clean
//! lockstep run or from the scalar engine — never from a degraded
//! batch lane. Groups whose solved block is below
//! [`crate::sparse::DENSE_CUTOFF`] or whose pivot restriction leaves no
//! transversal refuse to build at all ([`BatchGroup::build`] returns
//! `None`) and run scalar. See `docs/batched.md`.

use crate::dcop::{dc_operating_point_with, newton_update, NewtonOpts};
use crate::devices::{
    stamp_linear, stamp_nonlinear, CapCompanion, StampParams, StampPlan, UnknownMap,
};
use crate::mna::{Stamper, REL_PIVOT_TOL};
use crate::netlist::{Circuit, ElementKind};
use crate::sparse::{
    pattern_coords, Pattern, PatternCache, Plan, DENSE_CUTOFF, GROWTH_LIMIT, NO_SLOT,
};
use crate::tran::{cap_instances, CapInstance, CapState, Integrator, TranSpec};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

static BATCHES: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.batch.batches");
static LANES: cat_telemetry::StaticCounter = cat_telemetry::StaticCounter::new("spice.batch.lanes");
static COMPACTIONS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.batch.compactions");
static REFILLS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.batch.refills");
static EJECTIONS: cat_telemetry::StaticCounter =
    cat_telemetry::StaticCounter::new("spice.batch.ejections");

/// The shared symbolic half of a batch: one factorisation plan valid
/// for every member of a group of same-shape circuit variants.
#[derive(Debug, Clone)]
pub struct BatchGroup {
    /// Rows/columns actually factored (excludes the border in border
    /// mode).
    n_solve: usize,
    /// Full unknown-vector dimension of every member.
    dim: usize,
    /// Node count (including ground) of every member.
    node_count: usize,
    /// Border mode: every member's last element is an appended ideal
    /// V-source whose branch row/column is folded in by a bordered
    /// solve instead of being part of the factored block.
    border: bool,
    pattern: Arc<Pattern>,
}

impl BatchGroup {
    /// Recognises the bordered-group shape: `faulty` is `base` plus one
    /// appended V-source (the source-model short injection) with no new
    /// nodes, so its matrix is the base matrix plus one border
    /// row/column.
    pub fn is_border(base: &Circuit, faulty: &Circuit) -> bool {
        faulty.node_count() == base.node_count()
            && faulty.elements().len() == base.elements().len() + 1
            && matches!(
                faulty.elements().last().map(|e| &e.kind),
                Some(ElementKind::Vsource { .. })
            )
    }

    /// Builds the shared plan for a group of circuit variants. All
    /// members must agree on node count and unknown dimension (and, in
    /// border mode, end with the appended V-source). Returns `None`
    /// when the group cannot be batched — solved block under
    /// [`DENSE_CUTOFF`], mismatched shapes, or a pivot restriction with
    /// no structural transversal — in which case the members run
    /// through the scalar path instead.
    pub fn build(circuits: &[&Circuit], border: bool) -> Option<BatchGroup> {
        let first = circuits.first()?;
        let node_count = first.node_count();
        let dim = UnknownMap::new(first).dim();
        let n_solve = if border { dim.checked_sub(1)? } else { dim };
        if n_solve < DENSE_CUTOFF {
            return None;
        }
        let mut union: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        for ckt in circuits {
            if ckt.validate().is_err() || ckt.node_count() != node_count {
                return None;
            }
            let map = UnknownMap::new(ckt);
            if map.dim() != dim {
                return None;
            }
            if border {
                let last_ei = ckt.elements().len() - 1;
                if !matches!(ckt.elements()[last_ei].kind, ElementKind::Vsource { .. })
                    || map.branch_row(last_ei) != dim - 1
                {
                    return None;
                }
            }
            let mut coords = pattern_coords(ckt, &map);
            coords.sort_unstable();
            coords.dedup();
            for (r, c) in coords {
                if border && ((r as usize) >= n_solve || (c as usize) >= n_solve) {
                    // The border row/column is handled outside the
                    // factored block.
                    continue;
                }
                union.insert((r, c));
                *counts.entry((r, c)).or_insert(0) += 1;
            }
        }
        let k = circuits.len();
        let allowed: HashSet<(u32, u32)> = counts
            .into_iter()
            .filter(|&(_, c)| c == k)
            .map(|(rc, _)| rc)
            .collect();
        let pattern = Pattern::build_restricted(n_solve, union.into_iter().collect(), &allowed)?;
        Some(BatchGroup {
            n_solve,
            dim,
            node_count,
            border,
            pattern: Arc::new(pattern),
        })
    }

    /// Full unknown-vector dimension of every member.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the group solves through the bordered-block path.
    pub fn border(&self) -> bool {
        self.border
    }
}

/// Structure-of-arrays numeric state for `k` lanes sharing one
/// [`BatchGroup`] plan. Every per-entry quantity is stored lane-major
/// (`[entry 0: lane 0..k][entry 1: lane 0..k]…`), so the factorisation
/// walks the plan's index stream once and the innermost loops are
/// contiguous `k`-wide chunks.
#[derive(Debug)]
pub struct BatchedSystem {
    k: usize,
    n: usize,
    dim: usize,
    border: bool,
    pattern: Arc<Pattern>,
    /// Assembled values, `nnz × k`.
    vals: Vec<f64>,
    /// Right-hand side of the factored block, `n × k`.
    rhs: Vec<f64>,
    /// Border column (entries at `(row, n_solve)`), `n × k`.
    bcol: Vec<f64>,
    /// Border row (entries at `(n_solve, col)`), `n × k`.
    brow: Vec<f64>,
    /// Border diagonal `(n_solve, n_solve)`, `k`.
    bdiag: Vec<f64>,
    /// Border RHS, `k`.
    brhs: Vec<f64>,
    base_vals: Vec<f64>,
    base_rhs: Vec<f64>,
    base_bcol: Vec<f64>,
    base_brow: Vec<f64>,
    base_bdiag: Vec<f64>,
    base_brhs: Vec<f64>,
    /// LU factors, `nnz_factored × k`.
    lu: Vec<f64>,
    /// Pivot reciprocals, `n × k`; `0.0` marks a masked/failed lane so
    /// zeros (not NaNs) propagate through its arithmetic.
    inv_diag: Vec<f64>,
    /// Scatter workspace, `n × k`.
    work: Vec<f64>,
    /// Permuted solution of the main RHS, `n × k`.
    y: Vec<f64>,
    /// Permuted solution of the border column, `n × k`.
    z: Vec<f64>,
    /// Unpermuted main solution, `n × k`.
    xy: Vec<f64>,
    /// Unpermuted border-column solution, `n × k`.
    xz: Vec<f64>,
    /// Final per-lane solutions, `dim × k`.
    x: Vec<f64>,
    // k-sized scratch.
    a_max: Vec<f64>,
    factor_max: Vec<f64>,
    scale: Vec<f64>,
    num: Vec<f64>,
    den: Vec<f64>,
}

impl BatchedSystem {
    /// Allocates numeric state for `k` lanes over `group`'s plan.
    pub fn new(group: &BatchGroup, k: usize) -> Self {
        let n = group.n_solve;
        let nnz = group.pattern.nnz();
        let nlu = group.pattern.nnz_factored();
        BatchedSystem {
            k,
            n,
            dim: group.dim,
            border: group.border,
            pattern: group.pattern.clone(),
            vals: vec![0.0; nnz * k],
            rhs: vec![0.0; n * k],
            bcol: vec![0.0; n * k],
            brow: vec![0.0; n * k],
            bdiag: vec![0.0; k],
            brhs: vec![0.0; k],
            base_vals: vec![0.0; nnz * k],
            base_rhs: vec![0.0; n * k],
            base_bcol: vec![0.0; n * k],
            base_brow: vec![0.0; n * k],
            base_bdiag: vec![0.0; k],
            base_brhs: vec![0.0; k],
            lu: vec![0.0; nlu * k],
            inv_diag: vec![0.0; n * k],
            work: vec![0.0; n * k],
            y: vec![0.0; n * k],
            z: vec![0.0; n * k],
            xy: vec![0.0; n * k],
            xz: vec![0.0; n * k],
            x: vec![0.0; group.dim * k],
            a_max: vec![0.0; k],
            factor_max: vec![0.0; k],
            scale: vec![0.0; k],
            num: vec![0.0; k],
            den: vec![0.0; k],
        }
    }

    /// A [`Stamper`] view of one lane: devices stamp through the shared
    /// slot map; in border mode, writes touching the border row/column
    /// are intercepted into the per-lane border arrays.
    pub fn lane(&mut self, lane: usize) -> LaneStamper<'_> {
        debug_assert!(lane < self.k);
        LaneStamper { sys: self, lane }
    }

    /// Zeroes one lane's assembled values and RHS.
    fn clear_lane(&mut self, lane: usize) {
        let kw = self.k;
        let nnz = self.pattern.nnz();
        for s in 0..nnz {
            self.vals[s * kw + lane] = 0.0;
        }
        for r in 0..self.n {
            self.rhs[r * kw + lane] = 0.0;
            self.bcol[r * kw + lane] = 0.0;
            self.brow[r * kw + lane] = 0.0;
        }
        self.bdiag[lane] = 0.0;
        self.brhs[lane] = 0.0;
    }

    /// Saves the currently assembled values as the per-step baseline
    /// (the step-constant linear stamps).
    pub fn snapshot_baseline(&mut self) {
        self.base_vals.copy_from_slice(&self.vals);
        self.base_rhs.copy_from_slice(&self.rhs);
        self.base_bcol.copy_from_slice(&self.bcol);
        self.base_brow.copy_from_slice(&self.brow);
        self.base_bdiag.copy_from_slice(&self.bdiag);
        self.base_brhs.copy_from_slice(&self.brhs);
    }

    /// Restores the baseline for the next Newton iteration's nonlinear
    /// restamp.
    pub fn restore_baseline(&mut self) {
        self.vals.copy_from_slice(&self.base_vals);
        self.rhs.copy_from_slice(&self.base_rhs);
        self.bcol.copy_from_slice(&self.base_bcol);
        self.brow.copy_from_slice(&self.base_brow);
        self.bdiag.copy_from_slice(&self.base_bdiag);
        self.brhs.copy_from_slice(&self.base_brhs);
    }

    /// Lockstep refactorisation + triangular solves for every lane.
    /// `active` masks lanes that should be solved at all; `ok` is
    /// cleared for any active lane whose factorisation dies (dead
    /// pivot, element growth, degenerate border) — the numeric checks
    /// mirror the scalar kernel in [`crate::sparse`] per lane. Results
    /// land in the internal solution array (see
    /// [`BatchedSystem::solution`]); masked and failed lanes produce
    /// zeros, never NaNs.
    pub fn solve(&mut self, active: &[bool], ok: &mut [bool]) {
        let pattern = self.pattern.clone();
        let plan = &pattern.plan;
        let kw = self.k;
        let n = self.n;
        self.a_max.fill(0.0);
        self.factor_max.fill(0.0);

        // Up-looking row LU over the frozen plan: one index stream,
        // k-wide value chunks. Unlike the scalar kernel there is no
        // `f != 0` shortcut — lanes never agree on zeros, and an
        // unconditional contiguous loop is what vectorises.
        for r in 0..n {
            let (start, end) = (plan.row_start[r] as usize, plan.row_start[r + 1] as usize);
            for idx in start..end {
                let pos = plan.cols[idx] as usize * kw;
                let slot = plan.slot_at[idx];
                if slot == NO_SLOT {
                    self.work[pos..pos + kw].fill(0.0);
                } else {
                    let s = slot as usize * kw;
                    for l in 0..kw {
                        let v = self.vals[s + l];
                        self.work[pos + l] = v;
                        if v.abs() > self.a_max[l] {
                            self.a_max[l] = v.abs();
                        }
                    }
                }
            }
            let dk = plan.diag[r] as usize;
            for idx in start..dk {
                let j = plan.cols[idx] as usize;
                let jb = j * kw;
                for l in 0..kw {
                    self.work[jb + l] *= self.inv_diag[jb + l];
                }
                let dj = plan.diag[j] as usize;
                let jend = plan.row_start[j + 1] as usize;
                for idx2 in dj + 1..jend {
                    let tb = plan.cols[idx2] as usize * kw;
                    let ub = idx2 * kw;
                    for l in 0..kw {
                        self.work[tb + l] -= self.work[jb + l] * self.lu[ub + l];
                    }
                }
            }
            self.scale.fill(0.0);
            for idx in start..end {
                let pos = plan.cols[idx] as usize * kw;
                let ob = idx * kw;
                for l in 0..kw {
                    let v = self.work[pos + l];
                    self.lu[ob + l] = v;
                    if v.abs() > self.scale[l] {
                        self.scale[l] = v.abs();
                    }
                }
            }
            let db = dk * kw;
            let ib = r * kw;
            for l in 0..kw {
                if self.scale[l] > self.factor_max[l] {
                    self.factor_max[l] = self.scale[l];
                }
                let pivot = self.lu[db + l];
                if active[l] && ok[l] && pivot != 0.0 && pivot.abs() > REL_PIVOT_TOL * self.scale[l]
                {
                    self.inv_diag[ib + l] = 1.0 / pivot;
                } else {
                    self.inv_diag[ib + l] = 0.0;
                    if active[l] {
                        ok[l] = false;
                    }
                }
            }
        }
        for l in 0..kw {
            if active[l] && ok[l] && self.factor_max[l] > GROWTH_LIMIT * self.a_max[l] {
                ok[l] = false;
            }
        }

        // Main solve, all lanes at once.
        substitute(
            plan,
            n,
            kw,
            &self.lu,
            &self.inv_diag,
            &self.rhs,
            &mut self.y,
        );
        for r in 0..n {
            let cb = plan.col_perm[r] as usize * kw;
            let yb = r * kw;
            self.xy[cb..cb + kw].copy_from_slice(&self.y[yb..yb + kw]);
        }

        if self.border {
            // Bordered-block elimination: with the block A factored,
            //   [A u; wᵀ d]·[x; i] = [b; e]
            // solves as  z = A⁻¹u,  y = A⁻¹b,
            //   i = (e − wᵀy) / (d − wᵀz),  x = y − i·z.
            // One extra triangular solve per refactorisation instead of
            // refactoring an (n+1)-sized matrix per lane.
            substitute(
                plan,
                n,
                kw,
                &self.lu,
                &self.inv_diag,
                &self.bcol,
                &mut self.z,
            );
            for r in 0..n {
                let cb = plan.col_perm[r] as usize * kw;
                let zb = r * kw;
                self.xz[cb..cb + kw].copy_from_slice(&self.z[zb..zb + kw]);
            }
            self.num.copy_from_slice(&self.brhs);
            self.den.copy_from_slice(&self.bdiag);
            for c in 0..n {
                let cb = c * kw;
                for l in 0..kw {
                    self.num[l] -= self.brow[cb + l] * self.xy[cb + l];
                    self.den[l] -= self.brow[cb + l] * self.xz[cb + l];
                }
            }
            let bb = n * kw;
            for l in 0..kw {
                let i_lane = if active[l] && ok[l] {
                    let i = self.num[l] / self.den[l];
                    if i.is_finite() {
                        i
                    } else {
                        // Degenerate border (d − wᵀz = 0): the lane
                        // cannot be solved in bordered form.
                        ok[l] = false;
                        0.0
                    }
                } else {
                    0.0
                };
                self.x[bb + l] = i_lane;
            }
            for c in 0..n {
                let cb = c * kw;
                for l in 0..kw {
                    self.x[cb + l] = self.xy[cb + l] - self.x[bb + l] * self.xz[cb + l];
                }
            }
        } else {
            self.x[..n * kw].copy_from_slice(&self.xy);
        }
    }

    /// Copies one lane's latest solution (full `dim` unknowns) into
    /// `out`.
    pub fn solution(&self, lane: usize, out: &mut [f64]) {
        for (r, slot) in out.iter_mut().enumerate().take(self.dim) {
            *slot = self.x[r * self.k + lane];
        }
    }
}

/// Forward + back substitution over the shared plan for all lanes at
/// once. `rhs` is in original row order; the permuted solution lands in
/// `y` (position order).
fn substitute(
    plan: &Plan,
    n: usize,
    kw: usize,
    lu: &[f64],
    inv_diag: &[f64],
    rhs: &[f64],
    y: &mut [f64],
) {
    for r in 0..n {
        let pb = plan.row_perm[r] as usize * kw;
        let yb = r * kw;
        y[yb..yb + kw].copy_from_slice(&rhs[pb..pb + kw]);
        let (start, dk) = (plan.row_start[r] as usize, plan.diag[r] as usize);
        for idx in start..dk {
            let jb = plan.cols[idx] as usize * kw;
            let ub = idx * kw;
            for l in 0..kw {
                y[yb + l] -= lu[ub + l] * y[jb + l];
            }
        }
    }
    for r in (0..n).rev() {
        let yb = r * kw;
        let dk = plan.diag[r] as usize;
        let end = plan.row_start[r + 1] as usize;
        for idx in dk + 1..end {
            let jb = plan.cols[idx] as usize * kw;
            let ub = idx * kw;
            for l in 0..kw {
                y[yb + l] -= lu[ub + l] * y[jb + l];
            }
        }
        for l in 0..kw {
            y[yb + l] *= inv_diag[yb + l];
        }
    }
}

/// A [`Stamper`] for one lane of a [`BatchedSystem`].
pub struct LaneStamper<'a> {
    sys: &'a mut BatchedSystem,
    lane: usize,
}

impl Stamper for LaneStamper<'_> {
    fn dim(&self) -> usize {
        self.sys.dim
    }

    fn add(&mut self, row: usize, col: usize, g: f64) {
        let kw = self.sys.k;
        let n = self.sys.n;
        if self.sys.border && (row == n || col == n) {
            if row == n && col == n {
                self.sys.bdiag[self.lane] += g;
            } else if row == n {
                self.sys.brow[col * kw + self.lane] += g;
            } else {
                self.sys.bcol[row * kw + self.lane] += g;
            }
            return;
        }
        let slot = self.sys.pattern.slot_of[row * n + col];
        debug_assert!(
            slot != NO_SLOT,
            "stamp outside the batched pattern at ({row}, {col})"
        );
        self.sys.vals[slot as usize * kw + self.lane] += g;
    }

    fn add_rhs(&mut self, row: usize, v: f64) {
        if self.sys.border && row == self.sys.n {
            self.sys.brhs[self.lane] += v;
            return;
        }
        self.sys.rhs[row * self.sys.k + self.lane] += v;
    }

    fn clear(&mut self) {
        self.sys.clear_lane(self.lane);
    }
}

/// One circuit variant queued for a batched transient run.
#[derive(Debug, Clone, Copy)]
pub struct LaneJob<'c> {
    /// Caller-chosen identifier, passed back through the sample
    /// callback and the [`LaneReport`].
    pub id: usize,
    /// The variant to simulate.
    pub circuit: &'c Circuit,
}

/// Outcome of one [`LaneJob`] in a batched run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneReport {
    /// The job's `id`.
    pub id: usize,
    /// Accepted timesteps.
    pub steps: u64,
    /// Newton iterations spent on accepted steps.
    pub newton_iterations: u64,
    /// The sample callback stopped the lane before the grid ended.
    pub stopped_early: bool,
    /// `true` when the lane ran start-to-finish (or was stopped by its
    /// callback) under the lockstep kernel; `false` when it was ejected
    /// and must be re-run through the scalar path.
    pub completed: bool,
}

/// Aggregate counters for one [`run_group`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchRunStats {
    /// Lane width the batch ran at.
    pub width: usize,
    /// Lane assignments (initial fill + refills).
    pub lanes: u64,
    /// Lanes started from the pending queue after a slot freed up.
    pub refills: u64,
    /// Lanes retired before reaching the end of the grid (detection
    /// early-stop or ejection).
    pub compactions: u64,
    /// Lanes the lockstep kernel could not finish (re-run scalar).
    pub ejections: u64,
    /// Total accepted steps across lanes.
    pub steps: u64,
    /// Total Newton iterations across lanes.
    pub newton_iterations: u64,
}

/// Per-job precomputed context (map, capacitances, stamp plan).
struct JobCtx<'c> {
    map: UnknownMap,
    instances: Vec<CapInstance>,
    plan: StampPlan<'c>,
}

/// Live state of one occupied lane slot.
struct Lane {
    job: usize,
    /// Completed full steps on the shared grid.
    step: usize,
    x: Vec<f64>,
    caps: Vec<CapState>,
    steps: u64,
    iters: u64,
}

/// Per-lane Newton bookkeeping for the step in flight.
struct NewtonLane {
    x: Vec<f64>,
    x_start: Vec<f64>,
    damped: bool,
    iter: usize,
    /// `Some(Ok(iters))` converged (iterate latched), `Some(Err(()))`
    /// failed both phases.
    done: Option<Result<usize, ()>>,
}

enum LaneStart {
    Started(Lane),
    /// The initial sample already stopped the lane.
    Finished(LaneReport),
    Ejected(LaneReport),
}

/// Computes a lane's initial solution exactly as the scalar transient
/// does: UIC honours `.ic` lines and capacitor `ic=` values; otherwise
/// a full DC operating point (same ladder, same solver, same cache).
fn initial_solution(
    ckt: &Circuit,
    map: &UnknownMap,
    instances: &[CapInstance],
    spec: &TranSpec,
    cache: Option<&PatternCache>,
) -> Option<Vec<f64>> {
    if spec.uic {
        let mut x0 = vec![0.0; map.dim()];
        for &(node, v) in &ckt.initial_conditions {
            if let Some(i) = map.node_var(node) {
                x0[i] = v;
            }
        }
        for inst in instances {
            if let Some(v) = inst.ic {
                if inst.b == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.a) {
                        x0[i] = v;
                    }
                } else if inst.a == Circuit::GROUND {
                    if let Some(i) = map.node_var(inst.b) {
                        x0[i] = -v;
                    }
                }
            }
        }
        Some(x0)
    } else {
        dc_operating_point_with(ckt, spec.solver, cache).ok()
    }
}

#[allow(clippy::too_many_arguments)]
fn start_lane<F: FnMut(usize, f64, &[f64]) -> bool>(
    j: usize,
    jobs: &[LaneJob<'_>],
    ctxs: &[Option<JobCtx<'_>>],
    spec: &TranSpec,
    cache: Option<&PatternCache>,
    n_nodes: usize,
    dim: usize,
    on_sample: &mut F,
) -> LaneStart {
    let ejected = LaneReport {
        id: jobs[j].id,
        steps: 0,
        newton_iterations: 0,
        stopped_early: false,
        completed: false,
    };
    let Some(ctx) = ctxs[j].as_ref() else {
        return LaneStart::Ejected(ejected);
    };
    let Some(x0) = initial_solution(jobs[j].circuit, &ctx.map, &ctx.instances, spec, cache) else {
        // The scalar rerun will hit (and report) the same DC failure.
        return LaneStart::Ejected(ejected);
    };
    debug_assert_eq!(x0.len(), dim);
    let caps: Vec<CapState> = ctx
        .instances
        .iter()
        .map(|inst| CapState {
            v_prev: ctx.map.voltage(&x0, inst.a) - ctx.map.voltage(&x0, inst.b),
            i_prev: 0.0,
        })
        .collect();
    if !on_sample(jobs[j].id, 0.0, &x0[..n_nodes]) {
        return LaneStart::Finished(LaneReport {
            id: jobs[j].id,
            steps: 0,
            newton_iterations: 0,
            stopped_early: true,
            completed: true,
        });
    }
    LaneStart::Started(Lane {
        job: j,
        step: 0,
        x: x0,
        caps,
        steps: 0,
        iters: 0,
    })
}

/// Runs every job through `group`'s shared structure, `width` lanes at
/// a time, streaming accepted samples to `on_sample(id, t, voltages)`
/// exactly like [`crate::tran::tran_with`] does per circuit (the
/// callback returning `false` retires the lane). Lanes advance in
/// lockstep; a freed slot (detection, completion, ejection) is refilled
/// from the remaining jobs. Returns one [`LaneReport`] per job, in job
/// order, plus the run's aggregate counters. Jobs with
/// `completed == false` must be re-run through the scalar path.
pub fn run_group<F>(
    group: &BatchGroup,
    width: usize,
    spec: &TranSpec,
    jobs: &[LaneJob<'_>],
    cache: Option<&PatternCache>,
    mut on_sample: F,
) -> (Vec<LaneReport>, BatchRunStats)
where
    F: FnMut(usize, f64, &[f64]) -> bool,
{
    let _span = cat_telemetry::span!("spice.batch");
    let width = width.max(1).min(jobs.len().max(1));
    let mut stats = BatchRunStats {
        width,
        ..BatchRunStats::default()
    };
    BATCHES.inc();

    let n_nodes = group.node_count - 1;
    let dim = group.dim;
    let (full_steps, partial) = spec.grid();

    // Precompute per-job context; a job whose stamp plan cannot be
    // built (unknown model) is ejected outright.
    let ctxs: Vec<Option<JobCtx<'_>>> = jobs
        .iter()
        .map(|job| {
            let map = UnknownMap::new(job.circuit);
            if map.dim() != dim || job.circuit.node_count() != group.node_count {
                return None;
            }
            StampPlan::new(job.circuit).ok().map(|plan| JobCtx {
                map,
                instances: cap_instances(job.circuit),
                plan,
            })
        })
        .collect();

    let mut reports: Vec<Option<LaneReport>> = vec![None; jobs.len()];
    let mut sys = BatchedSystem::new(group, width);
    let mut lanes: Vec<Option<Lane>> = (0..width).map(|_| None).collect();
    let mut next_job = 0usize;

    // Fills `slot` from the queue; records reports for jobs that never
    // get off the ground.
    macro_rules! fill_slot {
        ($slot:expr, $is_refill:expr) => {
            while next_job < jobs.len() {
                let j = next_job;
                next_job += 1;
                match start_lane(j, jobs, &ctxs, spec, cache, n_nodes, dim, &mut on_sample) {
                    LaneStart::Started(lane) => {
                        stats.lanes += 1;
                        if $is_refill {
                            stats.refills += 1;
                        }
                        lanes[$slot] = Some(lane);
                        break;
                    }
                    LaneStart::Finished(report) => {
                        stats.lanes += 1;
                        reports[j] = Some(report);
                    }
                    LaneStart::Ejected(report) => {
                        stats.lanes += 1;
                        stats.ejections += 1;
                        reports[j] = Some(report);
                    }
                }
            }
        };
    }

    #[allow(clippy::needless_range_loop)] // `fill_slot!` borrows several arrays at `slot`
    for slot in 0..width {
        fill_slot!(slot, false);
    }

    let plain = &spec.newton;
    let damped_opts = NewtonOpts {
        max_iter: plain.max_iter * 3,
        max_step: 0.1,
        ..plain.clone()
    };
    let mut x_new = vec![0.0; dim];
    let mut t1s = vec![0.0f64; width];
    let mut partials = vec![false; width];
    let mut companions: Vec<Vec<CapCompanion>> = (0..width).map(|_| Vec::new()).collect();

    loop {
        let occupied: Vec<usize> = (0..width).filter(|&l| lanes[l].is_some()).collect();
        if occupied.is_empty() {
            break;
        }

        // Per-lane step setup on the shared drift-free grid: each lane
        // is at its own local step index (refilled lanes restart at 0),
        // so the first step of *that lane* is always backward Euler —
        // identical to the scalar start-up rule.
        for &l in &occupied {
            let st = lanes[l].as_ref().expect("occupied lane");
            let ctx = ctxs[st.job].as_ref().expect("started lane has context");
            let (t1, integ, is_partial) = if st.step < full_steps {
                let t1 = (st.step + 1) as f64 * spec.tstep;
                let integ = if st.step == 0 {
                    Integrator::BackwardEuler
                } else {
                    spec.integrator
                };
                (t1, integ, false)
            } else {
                let t_stop = partial.expect("lane past full grid only with a partial step");
                let integ = if full_steps == 0 {
                    Integrator::BackwardEuler
                } else {
                    spec.integrator
                };
                (t_stop, integ, true)
            };
            let t0 = st.step as f64 * spec.tstep;
            let dt = t1 - t0;
            companions[l].clear();
            companions[l].extend(ctx.instances.iter().zip(st.caps.iter()).map(|(inst, cs)| {
                let (geq, ieq) = match integ {
                    Integrator::BackwardEuler => {
                        let geq = inst.c / dt;
                        (geq, -geq * cs.v_prev)
                    }
                    Integrator::Trapezoidal => {
                        let geq = 2.0 * inst.c / dt;
                        (geq, -geq * cs.v_prev - cs.i_prev)
                    }
                };
                CapCompanion {
                    a: inst.a,
                    b: inst.b,
                    geq,
                    ieq,
                }
            }));
            t1s[l] = t1;
            partials[l] = is_partial;
        }

        // Step-constant stamps once per step, then snapshot.
        for &l in &occupied {
            let st = lanes[l].as_ref().expect("occupied lane");
            let ctx = ctxs[st.job].as_ref().expect("started lane has context");
            sys.clear_lane(l);
            let params = StampParams {
                time: t1s[l],
                cap_companions: Some(&companions[l]),
                ..StampParams::default()
            };
            let mut stamper = sys.lane(l);
            stamp_linear(jobs[st.job].circuit, &ctx.map, &mut stamper, &params);
        }
        sys.snapshot_baseline();

        // Lockstep Newton with per-lane convergence masks. A converged
        // lane's iterate is latched (it stops stamping and its solve
        // output is ignored), so each lane's trajectory is independent
        // of which other lanes share the batch.
        let mut newton: Vec<Option<NewtonLane>> = (0..width).map(|_| None).collect();
        for &l in &occupied {
            let st = lanes[l].as_ref().expect("occupied lane");
            newton[l] = Some(NewtonLane {
                x: st.x.clone(),
                x_start: st.x.clone(),
                damped: false,
                iter: 0,
                done: None,
            });
        }
        loop {
            let pending: Vec<usize> = occupied
                .iter()
                .copied()
                .filter(|&l| newton[l].as_ref().is_some_and(|nl| nl.done.is_none()))
                .collect();
            if pending.is_empty() {
                break;
            }
            sys.restore_baseline();
            let mut active = vec![false; width];
            for &l in &pending {
                active[l] = true;
            }
            for &l in &pending {
                let st = lanes[l].as_ref().expect("occupied lane");
                let ctx = ctxs[st.job].as_ref().expect("started lane has context");
                let nl = newton[l].as_ref().expect("pending lane");
                let params = StampParams {
                    time: t1s[l],
                    cap_companions: Some(&companions[l]),
                    ..StampParams::default()
                };
                let mut stamper = sys.lane(l);
                stamp_nonlinear(
                    jobs[st.job].circuit,
                    &ctx.map,
                    &ctx.plan,
                    &nl.x,
                    &mut stamper,
                    &params,
                );
            }
            let mut ok = active.clone();
            sys.solve(&active, &mut ok);
            for &l in &pending {
                let nl = newton[l].as_mut().expect("pending lane");
                let mut failed = !ok[l];
                if !failed {
                    sys.solution(l, &mut x_new);
                    if x_new.iter().any(|v| !v.is_finite()) {
                        failed = true;
                    }
                }
                if !failed {
                    let opts = if nl.damped { &damped_opts } else { plain };
                    nl.iter += 1;
                    if newton_update(&mut nl.x, &x_new, opts) {
                        nl.done = Some(Ok(nl.iter));
                    } else if nl.iter >= opts.max_iter {
                        failed = true;
                    }
                }
                if failed && nl.done.is_none() {
                    if nl.damped {
                        // Both phases exhausted: the scalar path (with
                        // its halving ladder) takes over.
                        nl.done = Some(Err(()));
                    } else {
                        nl.damped = true;
                        nl.iter = 0;
                        nl.x.copy_from_slice(&nl.x_start);
                    }
                }
            }
        }

        // Commit, record, retire, refill.
        for &l in &occupied {
            let result = newton[l]
                .as_ref()
                .and_then(|nl| nl.done)
                .expect("newton loop resolves every lane");
            match result {
                Ok(iters) => {
                    let st = lanes[l].as_mut().expect("occupied lane");
                    let ctx = ctxs[st.job].as_ref().expect("started lane has context");
                    let nl = newton[l].as_ref().expect("resolved lane");
                    st.steps += 1;
                    st.iters += iters as u64;
                    for ((inst, cs), cc) in ctx
                        .instances
                        .iter()
                        .zip(st.caps.iter_mut())
                        .zip(&companions[l])
                    {
                        let v_new = ctx.map.voltage(&nl.x, inst.a) - ctx.map.voltage(&nl.x, inst.b);
                        cs.i_prev = cc.geq * v_new + cc.ieq;
                        cs.v_prev = v_new;
                    }
                    st.x.copy_from_slice(&nl.x);
                    let keep_going = on_sample(jobs[st.job].id, t1s[l], &st.x[..n_nodes]);
                    let finished_grid = if partials[l] {
                        // The final partial step records unconditionally
                        // in the scalar driver too.
                        true
                    } else {
                        st.step += 1;
                        st.step == full_steps && partial.is_none()
                    };
                    if finished_grid || !keep_going {
                        let report = LaneReport {
                            id: jobs[st.job].id,
                            steps: st.steps,
                            newton_iterations: st.iters,
                            stopped_early: !keep_going && !finished_grid,
                            completed: true,
                        };
                        if !keep_going && !finished_grid {
                            stats.compactions += 1;
                        }
                        stats.steps += st.steps;
                        stats.newton_iterations += st.iters;
                        reports[st.job] = Some(report);
                        lanes[l] = None;
                        fill_slot!(l, true);
                    }
                }
                Err(()) => {
                    let st = lanes[l].take().expect("occupied lane");
                    stats.ejections += 1;
                    stats.compactions += 1;
                    stats.steps += st.steps;
                    stats.newton_iterations += st.iters;
                    reports[st.job] = Some(LaneReport {
                        id: jobs[st.job].id,
                        steps: st.steps,
                        newton_iterations: st.iters,
                        stopped_early: false,
                        completed: false,
                    });
                    fill_slot!(l, true);
                }
            }
        }
    }

    LANES.add(stats.lanes);
    COMPACTIONS.add(stats.compactions);
    REFILLS.add(stats.refills);
    EJECTIONS.add(stats.ejections);
    // Batched steps and iterations fold into the same global counters
    // the scalar driver feeds, so `spice.tran.steps` /
    // `spice.newton.iterations` stay meaningful across both paths
    // (`spice.tran.runs` stays scalar-only by design).
    crate::tran::TRAN_STEPS.add(stats.steps);
    crate::tran::NEWTON_ITERATIONS.add(stats.newton_iterations);

    let reports = reports
        .into_iter()
        .map(|r| r.expect("every job resolves to a report"))
        .collect();
    (reports, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_netlist;
    use crate::sparse::SolverKind;
    use crate::tran::tran_with;

    /// An RC ladder long enough to clear `DENSE_CUTOFF` (13 non-ground
    /// nodes + 1 branch row = 14 unknowns), with a scaling knob on one
    /// mid-ladder resistor so plain-mode lanes differ numerically.
    fn ladder(r5_ohms: f64, extra: &str) -> Circuit {
        let mut text = String::from("rc ladder\nv1 in 0 dc 5\nr0 in n1 1k\n");
        for i in 1..=12 {
            let r = if i == 5 {
                format!("{r5_ohms}")
            } else {
                "1k".to_string()
            };
            let next = if i == 12 {
                "nend".to_string()
            } else {
                format!("n{}", i + 1)
            };
            text.push_str(&format!("r{i} n{i} {next} {r}\nc{i} n{i} 0 1n\n"));
        }
        text.push_str(extra);
        text.push_str(".end\n");
        parse_netlist(&text).expect("ladder netlist parses")
    }

    fn spec() -> TranSpec {
        let mut spec = TranSpec::new(1e-6, 2e-5);
        spec.solver = SolverKind::Sparse;
        spec
    }

    /// Collects `(t, voltages)` samples for a scalar reference run.
    fn scalar_samples(ckt: &Circuit, spec: &TranSpec) -> Vec<(f64, Vec<f64>)> {
        let mut out = Vec::new();
        tran_with(ckt, spec, |t, x| {
            out.push((t, x.to_vec()));
            true
        })
        .expect("scalar reference run succeeds");
        out
    }

    type Samples = Vec<Vec<(f64, Vec<f64>)>>;

    fn batched_samples(
        group: &BatchGroup,
        width: usize,
        spec: &TranSpec,
        jobs: &[LaneJob<'_>],
    ) -> (Samples, Vec<LaneReport>, BatchRunStats) {
        let mut samples: Samples = vec![Vec::new(); jobs.len()];
        let (reports, stats) = run_group(group, width, spec, jobs, None, |id, t, x| {
            samples[id].push((t, x.to_vec()));
            true
        });
        (samples, reports, stats)
    }

    fn assert_waveforms_match(scalar: &[(f64, Vec<f64>)], batched: &[(f64, Vec<f64>)]) {
        assert_eq!(scalar.len(), batched.len(), "sample counts differ");
        for ((ts, xs), (tb, xb)) in scalar.iter().zip(batched) {
            assert_eq!(ts, tb, "sample times must be bit-identical");
            for (a, b) in xs.iter().zip(xb) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "waveforms diverged: {a} vs {b} at t={ts}"
                );
            }
        }
    }

    #[test]
    fn plain_group_matches_scalar_lanes() {
        let variants: Vec<Circuit> = [800.0, 1000.0, 1500.0, 4700.0]
            .map(|r| ladder(r, ""))
            .into();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let group = BatchGroup::build(&refs, false).expect("plain group builds");
        assert!(!group.border());
        let spec = spec();
        let jobs: Vec<LaneJob<'_>> = refs
            .iter()
            .enumerate()
            .map(|(id, ckt)| LaneJob { id, circuit: ckt })
            .collect();
        let (samples, reports, stats) = batched_samples(&group, jobs.len(), &spec, &jobs);
        assert_eq!(stats.ejections, 0);
        for (i, ckt) in refs.iter().enumerate() {
            assert!(reports[i].completed);
            assert!(!reports[i].stopped_early);
            let reference = scalar_samples(ckt, &spec);
            assert_waveforms_match(&reference, &samples[i]);
            assert_eq!(reports[i].steps, (reference.len() - 1) as u64);
        }
    }

    #[test]
    fn border_group_matches_scalar_lanes() {
        // Source-model shorts: the base ladder plus one appended ideal
        // 0 V source per lane, shorting a different node to ground.
        let base = ladder(1000.0, "");
        let variants: Vec<Circuit> = ["n2", "n6", "n9"]
            .iter()
            .map(|node| ladder(1000.0, &format!("vshort {node} 0 dc 0\n")))
            .collect();
        for v in &variants {
            assert!(BatchGroup::is_border(&base, v));
        }
        let refs: Vec<&Circuit> = variants.iter().collect();
        let group = BatchGroup::build(&refs, true).expect("border group builds");
        assert!(group.border());
        let spec = spec();
        let jobs: Vec<LaneJob<'_>> = refs
            .iter()
            .enumerate()
            .map(|(id, ckt)| LaneJob { id, circuit: ckt })
            .collect();
        let (samples, reports, stats) = batched_samples(&group, jobs.len(), &spec, &jobs);
        assert_eq!(stats.ejections, 0);
        for (i, ckt) in refs.iter().enumerate() {
            assert!(reports[i].completed);
            let reference = scalar_samples(ckt, &spec);
            assert_waveforms_match(&reference, &samples[i]);
        }
    }

    #[test]
    fn narrow_batch_refills_from_queue_and_compacts_stopped_lanes() {
        let variants: Vec<Circuit> = [500.0, 900.0, 1300.0, 2100.0, 3400.0]
            .map(|r| ladder(r, ""))
            .into();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let group = BatchGroup::build(&refs, false).expect("plain group builds");
        let spec = spec();
        let jobs: Vec<LaneJob<'_>> = refs
            .iter()
            .enumerate()
            .map(|(id, ckt)| LaneJob { id, circuit: ckt })
            .collect();
        // Stop job 1 after its third accepted sample; everything else
        // runs to completion through a 2-wide batch.
        let mut seen = vec![0usize; jobs.len()];
        let (reports, stats) = run_group(&group, 2, &spec, &jobs, None, |id, _t, _x| {
            seen[id] += 1;
            !(id == 1 && seen[id] > 3)
        });
        assert_eq!(stats.width, 2);
        assert!(stats.refills >= 3, "5 jobs over 2 lanes must refill");
        assert_eq!(stats.lanes, 5);
        assert!(stats.compactions >= 1);
        assert_eq!(stats.ejections, 0);
        assert!(reports[1].stopped_early && reports[1].completed);
        assert_eq!(reports[1].steps, 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.completed);
            if i != 1 {
                assert!(!r.stopped_early);
            }
        }
        let total: u64 = reports.iter().map(|r| r.steps).sum();
        assert_eq!(stats.steps, total);
    }

    #[test]
    fn width_one_matches_wider_batches() {
        let variants: Vec<Circuit> = [700.0, 1000.0, 2000.0].map(|r| ladder(r, "")).into();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let group = BatchGroup::build(&refs, false).expect("plain group builds");
        let spec = spec();
        let jobs: Vec<LaneJob<'_>> = refs
            .iter()
            .enumerate()
            .map(|(id, ckt)| LaneJob { id, circuit: ckt })
            .collect();
        let (narrow, _, _) = batched_samples(&group, 1, &spec, &jobs);
        let (wide, _, _) = batched_samples(&group, 3, &spec, &jobs);
        // Lane latching makes each lane's trajectory independent of its
        // batch-mates, so widths agree bit-for-bit.
        for (a, b) in narrow.iter().zip(&wide) {
            assert_eq!(a.len(), b.len());
            for ((ta, xa), (tb, xb)) in a.iter().zip(b) {
                assert_eq!(ta, tb);
                assert_eq!(xa, xb);
            }
        }
    }

    #[test]
    fn tiny_groups_refuse_to_build() {
        let small = parse_netlist("tiny rc\nv1 in 0 dc 1\nr1 in out 1k\nc1 out 0 1n\n.end\n")
            .expect("tiny netlist parses");
        assert!(BatchGroup::build(&[&small], false).is_none());
    }

    #[test]
    fn partial_final_step_is_recorded() {
        // tstop off the grid: 20 full steps plus a partial one.
        let variants: Vec<Circuit> = [900.0, 1100.0].map(|r| ladder(r, "")).into();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let group = BatchGroup::build(&refs, false).expect("plain group builds");
        let mut spec = spec();
        spec.tstop = 2.05e-5;
        let jobs: Vec<LaneJob<'_>> = refs
            .iter()
            .enumerate()
            .map(|(id, ckt)| LaneJob { id, circuit: ckt })
            .collect();
        let (samples, reports, _) = batched_samples(&group, 2, &spec, &jobs);
        for (i, ckt) in refs.iter().enumerate() {
            assert!(reports[i].completed);
            let reference = scalar_samples(ckt, &spec);
            assert_waveforms_match(&reference, &samples[i]);
            let last_t = samples[i].last().expect("has samples").0;
            assert_eq!(last_t, 2.05e-5);
        }
    }
}
