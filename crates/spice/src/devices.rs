//! Device evaluation and MNA stamping.
//!
//! One function, [`stamp_all`], loads the whole circuit into an
//! [`MnaSystem`] for a single Newton iteration, linearising nonlinear
//! devices about the current solution estimate.

use crate::mna::Stamper;
use crate::netlist::{Circuit, ElementKind, MosModel, MosPolarity, NodeId};
use crate::SpiceError;
use std::collections::HashMap;

/// Maps circuit nodes and voltage-source branches to unknown indices.
#[derive(Debug, Clone)]
pub struct UnknownMap {
    node_count: usize,
    vsrc_rows: HashMap<usize, usize>,
}

impl UnknownMap {
    /// Builds the map for a circuit: nodes 1..N become unknowns 0..N-1,
    /// every V-source element gets a branch-current row after them.
    pub fn new(ckt: &Circuit) -> Self {
        let mut vsrc_rows = HashMap::new();
        let mut next = ckt.node_count() - 1;
        for (ei, e) in ckt.elements().iter().enumerate() {
            if matches!(e.kind, ElementKind::Vsource { .. }) {
                vsrc_rows.insert(ei, next);
                next += 1;
            }
        }
        UnknownMap {
            node_count: ckt.node_count(),
            vsrc_rows,
        }
    }

    /// Total number of unknowns.
    pub fn dim(&self) -> usize {
        self.node_count - 1 + self.vsrc_rows.len()
    }

    /// Number of circuit nodes including ground (the node rows are
    /// `0..node_count() - 1`).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The unknown index for a node (`None` for ground).
    pub fn node_var(&self, n: NodeId) -> Option<usize> {
        if n == Circuit::GROUND {
            None
        } else {
            Some(n - 1)
        }
    }

    /// The branch-current row of the V-source at element index `ei`.
    ///
    /// # Panics
    /// Panics if `ei` is not a voltage source.
    pub fn branch_row(&self, ei: usize) -> usize {
        self.vsrc_rows[&ei]
    }

    /// Voltage of node `n` in solution vector `x`.
    pub fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match self.node_var(n) {
            None => 0.0,
            Some(i) => x[i],
        }
    }
}

/// Companion model of a capacitance for the current timestep, bound to
/// a node pair. Covers both explicit capacitor elements and
/// device-internal capacitances (MOS gate caps).
#[derive(Debug, Clone, Copy)]
pub struct CapCompanion {
    /// First node.
    pub a: NodeId,
    /// Second node.
    pub b: NodeId,
    /// Equivalent conductance (C/dt for BE, 2C/dt for TRAP).
    pub geq: f64,
    /// Equivalent current source from `a` to `b`.
    pub ieq: f64,
}

/// Inputs describing the analysis point being stamped.
#[derive(Debug, Clone)]
pub struct StampParams<'a> {
    /// Simulation time used to evaluate source waveforms.
    pub time: f64,
    /// Capacitance companions for this timestep. `None` means DC:
    /// capacitances are open circuits.
    pub cap_companions: Option<&'a [CapCompanion]>,
    /// Conductance added in parallel with nonlinear device channels.
    pub gmin: f64,
    /// Conductance from every non-ground node to ground (keeps floating
    /// subcircuits — e.g. a stuck-open gate — solvable).
    pub gshunt: f64,
    /// Scale factor applied to independent sources (source stepping).
    pub source_scale: f64,
}

impl Default for StampParams<'_> {
    fn default() -> Self {
        StampParams {
            time: 0.0,
            cap_companions: None,
            gmin: 1e-12,
            gshunt: 1e-12,
            source_scale: 1.0,
        }
    }
}

/// Result of evaluating a MOS transistor at a bias point (primed —
/// polarity- and swap-normalised — frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain–source current (A), ≥ 0 in normal operation.
    pub ids: f64,
    /// ∂ids/∂vgs.
    pub gm: f64,
    /// ∂ids/∂vds.
    pub gds: f64,
    /// ∂ids/∂vbs.
    pub gmbs: f64,
}

/// Evaluates the Shichman–Hodges level-1 model in the primed frame
/// (voltages already normalised so that NMOS equations apply and
/// `vds ≥ 0`).
pub fn mos_eval(model: &MosModel, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> MosEval {
    debug_assert!(vds >= 0.0);
    let beta = model.kp * w / l;
    // Body effect: vth = vto' + gamma (sqrt(phi - vbs) - sqrt(phi)).
    let vto = model.vto.abs(); // primed frame uses positive threshold
    let phi = model.phi.max(1e-3);
    let sqrt_phi = phi.sqrt();
    let arg = (phi - vbs).max(1e-6);
    let sqrt_arg = arg.sqrt();
    let vth = vto + model.gamma * (sqrt_arg - sqrt_phi);
    let dvth_dvbs = -model.gamma / (2.0 * sqrt_arg);

    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cutoff.
        return MosEval {
            ids: 0.0,
            gm: 0.0,
            gds: 0.0,
            gmbs: 0.0,
        };
    }
    let clm = 1.0 + model.lambda * vds;
    if vds < vov {
        // Triode.
        let core = vov * vds - 0.5 * vds * vds;
        let ids = beta * core * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + beta * core * model.lambda;
        let gmbs = -gm_body(gm, dvth_dvbs);
        MosEval { ids, gm, gds, gmbs }
    } else {
        // Saturation.
        let ids = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * model.lambda;
        let gmbs = -gm_body(gm, dvth_dvbs);
        MosEval { ids, gm, gds, gmbs }
    }
}

/// gmbs = ∂ids/∂vbs = gm · (−∂vth/∂vbs); helper keeps the sign in one
/// place.
fn gm_body(gm: f64, dvth_dvbs: f64) -> f64 {
    gm * dvth_dvbs
}

/// Per-analysis stamp plan: MOS model references resolved once, so the
/// per-iteration assembly does no string lowering or hash lookups. Build
/// it alongside the [`crate::sparse::MnaSolver`] and reuse it for every
/// Newton iteration of the analysis.
#[derive(Debug, Clone)]
pub struct StampPlan<'c> {
    /// Resolved model per element (None for non-MOS elements), parallel
    /// to `ckt.elements()`.
    models: Vec<Option<&'c MosModel>>,
    /// Element indices of the MOSFETs, so the per-iteration nonlinear
    /// restamp walks only the devices it needs.
    mos: Vec<u32>,
}

impl<'c> StampPlan<'c> {
    /// Resolves every MOS model reference up front.
    ///
    /// # Errors
    /// [`SpiceError::Elaboration`] when a MOS references an unknown
    /// model.
    pub fn new(ckt: &'c Circuit) -> Result<Self, SpiceError> {
        let mut models = Vec::with_capacity(ckt.elements().len());
        let mut mos = Vec::new();
        for (ei, e) in ckt.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::Mosfet { model, .. } => {
                    let m = ckt.models.get(&model.to_ascii_lowercase()).ok_or_else(|| {
                        SpiceError::Elaboration(format!(
                            "element {} references undefined model `{model}`",
                            e.name
                        ))
                    })?;
                    models.push(Some(m));
                    mos.push(ei as u32);
                }
                _ => models.push(None),
            }
        }
        Ok(StampPlan { models, mos })
    }
}

/// Loads the linearised circuit at solution estimate `x` into `sys`.
/// Compatibility wrapper that resolves MOS models on every call; the
/// hot paths build a [`StampPlan`] once and use
/// [`stamp_all_planned`].
///
/// # Errors
/// [`SpiceError::Elaboration`] when a MOS references an unknown model.
pub fn stamp_all<S: Stamper>(
    ckt: &Circuit,
    map: &UnknownMap,
    x: &[f64],
    sys: &mut S,
    params: &StampParams<'_>,
) -> Result<(), SpiceError> {
    let plan = StampPlan::new(ckt)?;
    stamp_all_planned(ckt, map, &plan, x, sys, params);
    Ok(())
}

/// Loads the linearised circuit at solution estimate `x` into `sys`,
/// using the pre-resolved `plan` — the allocation-free assembly the
/// Newton loop runs every iteration.
pub fn stamp_all_planned<S: Stamper>(
    ckt: &Circuit,
    map: &UnknownMap,
    plan: &StampPlan<'_>,
    x: &[f64],
    sys: &mut S,
    params: &StampParams<'_>,
) {
    sys.clear();
    stamp_linear(ckt, map, sys, params);
    stamp_nonlinear(ckt, map, plan, x, sys, params);
}

/// Stamps everything that does **not** depend on the Newton iterate:
/// gshunt, capacitance companions, resistors and the independent
/// sources. Within one Newton solve these values are constant, so the
/// sparse engine loads them once per timestep and restores the snapshot
/// each iteration instead of re-stamping.
pub fn stamp_linear<S: Stamper>(
    ckt: &Circuit,
    map: &UnknownMap,
    sys: &mut S,
    params: &StampParams<'_>,
) {
    // Node-to-ground shunts keep isolated nodes from making the matrix
    // singular (a stuck-open fault can float whole subcircuits).
    if params.gshunt > 0.0 {
        for n in 1..map.node_count {
            sys.stamp_conductance(Some(n - 1), None, params.gshunt);
        }
    }

    // Capacitance companions (explicit capacitors and MOS gate caps) —
    // nothing in DC, where capacitances are open.
    if let Some(companions) = params.cap_companions {
        for cc in companions {
            let a = map.node_var(cc.a);
            let b = map.node_var(cc.b);
            sys.stamp_conductance(a, b, cc.geq);
            sys.stamp_current(a, b, cc.ieq);
        }
    }

    for (ei, e) in ckt.elements().iter().enumerate() {
        match &e.kind {
            ElementKind::Resistor { r } => {
                let g = 1.0 / *r;
                sys.stamp_conductance(map.node_var(e.nodes[0]), map.node_var(e.nodes[1]), g);
            }
            ElementKind::Capacitor { .. } => {
                // Handled through the companion list above.
            }
            ElementKind::Vsource { wave } => {
                let v = wave.value_at(params.time) * params.source_scale;
                sys.stamp_vsource(
                    map.branch_row(ei),
                    map.node_var(e.nodes[0]),
                    map.node_var(e.nodes[1]),
                    v,
                );
            }
            ElementKind::Isource { wave } => {
                let i = wave.value_at(params.time) * params.source_scale;
                sys.stamp_current(map.node_var(e.nodes[0]), map.node_var(e.nodes[1]), i);
            }
            ElementKind::Mosfet { .. } => {}
        }
    }
}

/// Stamps the iterate-dependent devices (the MOSFET linearisations) at
/// solution estimate `x`.
pub fn stamp_nonlinear<S: Stamper>(
    ckt: &Circuit,
    map: &UnknownMap,
    plan: &StampPlan<'_>,
    x: &[f64],
    sys: &mut S,
    params: &StampParams<'_>,
) {
    let elements = ckt.elements();
    for &ei in &plan.mos {
        let e = &elements[ei as usize];
        let ElementKind::Mosfet { w, l, .. } = &e.kind else {
            unreachable!("plan.mos indexes only MOSFETs");
        };
        let model = plan.models[ei as usize].expect("plan resolves every MOS model");
        stamp_mosfet(e.nodes.as_slice(), model, *w, *l, map, x, sys, params);
    }
}

/// Linearises and stamps one MOSFET.
#[allow(clippy::too_many_arguments)]
fn stamp_mosfet<S: Stamper>(
    nodes: &[NodeId],
    model: &MosModel,
    w: f64,
    l: f64,
    map: &UnknownMap,
    x: &[f64],
    sys: &mut S,
    params: &StampParams<'_>,
) {
    let (d, g, s, b) = (nodes[0], nodes[1], nodes[2], nodes[3]);
    let sign = match model.polarity {
        MosPolarity::Nmos => 1.0,
        MosPolarity::Pmos => -1.0,
    };
    let vd = map.voltage(x, d);
    let vg = map.voltage(x, g);
    let vs = map.voltage(x, s);
    let vb = map.voltage(x, b);

    // The MOS is symmetric: operate in the frame where vds' >= 0.
    let (nd, ns) = if sign * (vd - vs) >= 0.0 {
        (d, s)
    } else {
        (s, d)
    };
    let vnd = map.voltage(x, nd);
    let vns = map.voltage(x, ns);
    let vgs_p = sign * (vg - vns);
    let vds_p = sign * (vnd - vns);
    let vbs_p = sign * (vb - vns);

    let ev = mos_eval(model, w, l, vgs_p, vds_p, vbs_p);

    // Translate the primed-frame linearisation into unprimed stamps (see
    // DESIGN.md §5.5): every sign cancels because both the controlling
    // voltage and the injected current flip together.
    //
    // The three textbook stamps (channel conductance + two VCCSs
    // controlled against the source) are emitted pre-combined — eight
    // accumulations instead of sixteen, with the gate/bulk columns
    // skipped entirely for cutoff devices. This is the kernel's hottest
    // loop; aliasing (diode-connected gates) stays correct because
    // every write is `+=`.
    let vnd_i = map.node_var(nd);
    let vns_i = map.node_var(ns);
    let vg_i = map.node_var(g);
    let vb_i = map.node_var(b);

    let g_ch = ev.gds + params.gmin;
    let g_sum = ev.gm + ev.gmbs;
    let ieq = sign * (ev.ids - ev.gm * vgs_p - ev.gds * vds_p - ev.gmbs * vbs_p);
    if let Some(r) = vnd_i {
        sys.add(r, r, g_ch);
        if let Some(c) = vns_i {
            sys.add(r, c, -g_ch - g_sum);
        }
        if ev.gm != 0.0 {
            if let Some(c) = vg_i {
                sys.add(r, c, ev.gm);
            }
        }
        if ev.gmbs != 0.0 {
            if let Some(c) = vb_i {
                sys.add(r, c, ev.gmbs);
            }
        }
        sys.add_rhs(r, -ieq);
    }
    if let Some(r) = vns_i {
        if let Some(c) = vnd_i {
            sys.add(r, c, -g_ch);
        }
        sys.add(r, r, g_ch + g_sum);
        if ev.gm != 0.0 {
            if let Some(c) = vg_i {
                sys.add(r, c, -ev.gm);
            }
        }
        if ev.gmbs != 0.0 {
            if let Some(c) = vb_i {
                sys.add(r, c, -ev.gmbs);
            }
        }
        sys.add_rhs(r, ieq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosModel {
        MosModel::default_nmos("n")
    }

    #[test]
    fn cutoff_has_zero_current() {
        let m = nmos();
        let ev = mos_eval(&m, 10e-6, 1e-6, 0.5, 2.0, 0.0);
        assert_eq!(ev.ids, 0.0);
        assert_eq!(ev.gm, 0.0);
    }

    #[test]
    fn saturation_current_matches_formula() {
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let (vgs, vds) = (2.0, 3.0);
        let ev = mos_eval(&m, w, l, vgs, vds, 0.0);
        let beta = m.kp * w / l;
        let vov = vgs - m.vto;
        let expect = 0.5 * beta * vov * vov * (1.0 + m.lambda * vds);
        assert!((ev.ids - expect).abs() < 1e-12);
        assert!(ev.gm > 0.0 && ev.gds > 0.0);
    }

    #[test]
    fn triode_current_matches_formula() {
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let (vgs, vds) = (3.0, 0.5);
        let ev = mos_eval(&m, w, l, vgs, vds, 0.0);
        let beta = m.kp * w / l;
        let vov = vgs - m.vto;
        let expect = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + m.lambda * vds);
        assert!((ev.ids - expect).abs() < 1e-12);
    }

    #[test]
    fn triode_saturation_continuous_at_boundary() {
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let vgs = 2.0;
        let vdsat = vgs - m.vto;
        let below = mos_eval(&m, w, l, vgs, vdsat - 1e-9, 0.0);
        let above = mos_eval(&m, w, l, vgs, vdsat + 1e-9, 0.0);
        assert!((below.ids - above.ids).abs() < 1e-9);
        assert!((below.gm - above.gm).abs() < 1e-6);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos();
        // Reverse body bias (vbs < 0) raises vth, lowering the current.
        let no_bias = mos_eval(&m, 10e-6, 1e-6, 2.0, 3.0, 0.0);
        let rev_bias = mos_eval(&m, 10e-6, 1e-6, 2.0, 3.0, -2.0);
        assert!(rev_bias.ids < no_bias.ids);
        assert!(rev_bias.gmbs > 0.0, "gmbs positive: raising vbs raises ids");
    }

    #[test]
    fn numeric_derivatives_match_analytic() {
        let m = nmos();
        let (w, l) = (20e-6, 2e-6);
        for &(vgs, vds, vbs) in &[(2.5, 4.0, -1.0), (3.0, 0.4, -0.5), (1.2, 1.0, 0.0)] {
            let ev = mos_eval(&m, w, l, vgs, vds, vbs);
            let h = 1e-7;
            let dgm = (mos_eval(&m, w, l, vgs + h, vds, vbs).ids
                - mos_eval(&m, w, l, vgs - h, vds, vbs).ids)
                / (2.0 * h);
            let dgds = (mos_eval(&m, w, l, vgs, vds + h, vbs).ids
                - mos_eval(&m, w, l, vgs, vds - h, vbs).ids)
                / (2.0 * h);
            let dgmbs = (mos_eval(&m, w, l, vgs, vds, vbs + h).ids
                - mos_eval(&m, w, l, vgs, vds, vbs - h).ids)
                / (2.0 * h);
            assert!(
                (ev.gm - dgm).abs() < 1e-6 * (1.0 + dgm.abs()),
                "gm at {vgs},{vds},{vbs}"
            );
            assert!((ev.gds - dgds).abs() < 1e-6 * (1.0 + dgds.abs()), "gds");
            assert!((ev.gmbs - dgmbs).abs() < 1e-6 * (1.0 + dgmbs.abs()), "gmbs");
        }
    }

    #[test]
    fn unknown_map_layout() {
        use crate::netlist::Waveform;
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1.0 });
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(1.0),
            },
        );
        let map = UnknownMap::new(&c);
        assert_eq!(map.dim(), 3); // 2 nodes + 1 branch
        assert_eq!(map.node_var(Circuit::GROUND), None);
        assert_eq!(map.node_var(a), Some(0));
        assert_eq!(map.branch_row(1), 2);
    }
}
