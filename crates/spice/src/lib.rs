//! # spice — the kernel analogue circuit simulator
//!
//! AnaFAULT (the fault simulator crate) needs a SPICE-class kernel it
//! can call repeatedly on topology-modified netlists. The paper used
//! ELDO; this crate is the in-tree substitute: a modified-nodal-analysis
//! simulator with
//!
//! * a circuit data model designed for *in-memory topology editing*
//!   ([`Circuit`], [`Element`]) — the capability the paper points out is
//!   missing from stock simulators;
//! * a SPICE-netlist text parser ([`parser`]);
//! * Newton–Raphson DC operating point with gmin and source stepping
//!   ([`dcop`]);
//! * backward-Euler / trapezoidal transient analysis ([`tran`]);
//! * device models: resistor, capacitor, independent V/I sources
//!   (DC/PULSE/SIN/PWL) and the Shichman–Hodges MOS level-1 model with
//!   body effect and channel-length modulation ([`devices`]);
//! * waveform storage and measurement utilities ([`waveform`]).
//!
//! ## The pattern/solver split
//!
//! The linear core is split along the classic sparse-SPICE boundary
//! between *symbolic* and *numeric* work (see [`sparse`]):
//!
//! * a [`sparse::Pattern`] captures everything that depends only on
//!   the circuit **topology** — the structural nonzeros, a Markowitz
//!   pivot order, the fill-in, and a slot map so devices stamp into
//!   precomputed nonzero indices. It is built once per topology and
//!   shared (`Arc`) across every Newton iteration, every timestep and,
//!   through a [`sparse::PatternCache`], every fault of a campaign
//!   whose injection preserves the stamp structure;
//! * a [`sparse::SparseSystem`] holds the **numbers** — assembled
//!   values and the LU arrays — and refactors them over the frozen
//!   structure with no pivot search and no allocation;
//! * the [`sparse::MnaSolver`] dispatcher keeps the dense
//!   partial-pivoting LU ([`mna::MnaSystem`]) for tiny systems (below
//!   [`sparse::DENSE_CUTOFF`] unknowns) and as the automatic fallback
//!   whenever the frozen pivot order hits a numerically dead pivot, so
//!   the sparse fast path never costs robustness.
//!
//! Both backends judge singularity *relative to the column/row scale*,
//! not against an absolute epsilon — badly scaled but solvable systems
//! (routine under gmin stepping) factor normally.
//!
//! ```
//! use spice::parser::parse_netlist;
//! use spice::tran::{tran, TranSpec};
//!
//! let ckt = parse_netlist(r#"rc divider
//! v1 in 0 dc 5
//! r1 in out 1k
//! r2 out 0 1k
//! .end
//! "#)?;
//! let res = tran(&ckt, &TranSpec::new(1e-6, 1e-5))?;
//! let v_out = res.wave("out").unwrap().last_value();
//! assert!((v_out - 2.5).abs() < 1e-6);
//! # Ok::<(), spice::SpiceError>(())
//! ```

pub mod batch;
pub mod dcop;
pub mod devices;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod sparse;
pub mod tran;
pub mod waveform;

pub use batch::{run_group, BatchGroup, BatchRunStats, BatchedSystem, LaneJob, LaneReport};
pub use mna::Stamper;
pub use netlist::{Circuit, Element, ElementKind, MosModel, MosPolarity, NodeId, Waveform};
pub use sparse::{MnaSolver, Pattern, PatternCache, SolverBackend, SolverKind, SolverStats};
pub use tran::{tran, tran_cached, tran_with, tran_with_cached, TranResult, TranSpec, TranStats};
pub use waveform::Wave;

/// Errors surfaced by parsing or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Text netlist could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The circuit references an undefined model or node.
    Elaboration(String),
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: String,
        /// Diagnostic detail.
        detail: String,
    },
    /// The MNA matrix became singular.
    Singular {
        /// Which analysis hit the singularity.
        analysis: String,
    },
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SpiceError::Elaboration(m) => write!(f, "elaboration error: {m}"),
            SpiceError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            SpiceError::Singular { analysis } => {
                write!(f, "singular matrix during {analysis}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}
