//! # spice — the kernel analogue circuit simulator
//!
//! AnaFAULT (the fault simulator crate) needs a SPICE-class kernel it
//! can call repeatedly on topology-modified netlists. The paper used
//! ELDO; this crate is the in-tree substitute: a modified-nodal-analysis
//! simulator with
//!
//! * a circuit data model designed for *in-memory topology editing*
//!   ([`Circuit`], [`Element`]) — the capability the paper points out is
//!   missing from stock simulators;
//! * a SPICE-netlist text parser ([`parser`]);
//! * Newton–Raphson DC operating point with gmin and source stepping
//!   ([`dcop`]);
//! * backward-Euler / trapezoidal transient analysis ([`tran`]);
//! * device models: resistor, capacitor, independent V/I sources
//!   (DC/PULSE/SIN/PWL) and the Shichman–Hodges MOS level-1 model with
//!   body effect and channel-length modulation ([`devices`]);
//! * waveform storage and measurement utilities ([`waveform`]).
//!
//! The linear core is a dense LU with partial pivoting: the circuits of
//! interest (tens of nodes) are far below the size where sparsity wins,
//! and dense pivoting is the most robust choice for fault-perturbed
//! matrices.
//!
//! ```
//! use spice::parser::parse_netlist;
//! use spice::tran::{tran, TranSpec};
//!
//! let ckt = parse_netlist(r#"rc divider
//! v1 in 0 dc 5
//! r1 in out 1k
//! r2 out 0 1k
//! .end
//! "#)?;
//! let res = tran(&ckt, &TranSpec::new(1e-6, 1e-5))?;
//! let v_out = res.wave("out").unwrap().last_value();
//! assert!((v_out - 2.5).abs() < 1e-6);
//! # Ok::<(), spice::SpiceError>(())
//! ```

pub mod dcop;
pub mod devices;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod tran;
pub mod waveform;

pub use netlist::{Circuit, Element, ElementKind, MosModel, MosPolarity, NodeId, Waveform};
pub use tran::{tran, tran_with, TranResult, TranSpec};
pub use waveform::Wave;

/// Errors surfaced by parsing or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Text netlist could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The circuit references an undefined model or node.
    Elaboration(String),
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: String,
        /// Diagnostic detail.
        detail: String,
    },
    /// The MNA matrix became singular.
    Singular {
        /// Which analysis hit the singularity.
        analysis: String,
    },
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SpiceError::Elaboration(m) => write!(f, "elaboration error: {m}"),
            SpiceError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            SpiceError::Singular { analysis } => {
                write!(f, "singular matrix during {analysis}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}
