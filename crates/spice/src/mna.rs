//! Modified nodal analysis: the stamping interface and the dense LU
//! solver.
//!
//! Unknown vector layout: `[v_1 .. v_{N-1}, i_{V1} .. i_{Vk}]` — node
//! voltages for every node except ground, then one branch current per
//! independent voltage source. Two matrix backends implement the
//! [`Stamper`] interface: the dense row-major [`MnaSystem`] here (the
//! robust choice for tiny systems) and the pattern-reusing sparse
//! engine in [`crate::sparse`] (the fast path for everything else; see
//! that module for the symbolic/numeric split).

use crate::SpiceError;

/// Relative pivot threshold shared by the dense and sparse LU: a pivot
/// counts as singular only when it is this small *relative to the scale
/// of its column* (dense) or row (sparse). An absolute threshold
/// misfires on badly scaled but perfectly solvable systems — gmin
/// stepping routinely produces rows around 1e-12, and a fault-isolated
/// subcircuit can sit many decades below that while still having a
/// well-conditioned diagonal at its own scale.
///
/// The constant sits just above machine epsilon (≈ 5 ε) rather than at
/// a "comfortable" 1e-12: fault simulation *legitimately* factors
/// systems with condition numbers near 1e14 — a 0.01 Ω bridge (100 S)
/// in series with a gmin path (1e-12 S) leaves a Schur-complement
/// pivot fourteen decades below its column scale, and the paper's
/// resistor fault model depends on solving exactly that. Only pivots
/// indistinguishable from elimination round-off are rejected.
pub(crate) const REL_PIVOT_TOL: f64 = 1e-15;

/// The MNA assembly interface: anything devices can stamp into.
///
/// Required methods are the raw accumulators; the `stamp_*` helpers are
/// provided so every backend shares identical stamp semantics.
pub trait Stamper {
    /// System dimension.
    fn dim(&self) -> usize;

    /// Adds `g` at `(row, col)`. Indices refer to the unknown vector; a
    /// `None` (ground) entry is skipped by the stamping helpers below.
    fn add(&mut self, row: usize, col: usize, g: f64);

    /// Adds `v` to the right-hand side at `row`.
    fn add_rhs(&mut self, row: usize, v: f64);

    /// Zeroes matrix and right-hand side for the next Newton iteration.
    fn clear(&mut self);

    /// Stamps a conductance `g` between unknowns `a` and `b`
    /// (`None` = ground).
    fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        if let Some(i) = a {
            self.add(i, i, g);
        }
        if let Some(j) = b {
            self.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (a, b) {
            self.add(i, j, -g);
            self.add(j, i, -g);
        }
    }

    /// Stamps a current `i` flowing *out of* unknown `a` and *into*
    /// unknown `b` (SPICE convention for a source from a to b).
    fn stamp_current(&mut self, a: Option<usize>, b: Option<usize>, i: f64) {
        if let Some(ia) = a {
            self.add_rhs(ia, -i);
        }
        if let Some(ib) = b {
            self.add_rhs(ib, i);
        }
    }

    /// Stamps a transconductance: current into (c→d) controlled by the
    /// voltage between (a→b): `i_cd = gm · v_ab`.
    fn stamp_vccs(
        &mut self,
        c: Option<usize>,
        d: Option<usize>,
        a: Option<usize>,
        b: Option<usize>,
        gm: f64,
    ) {
        for (row, sign_row) in [(c, 1.0), (d, -1.0)] {
            let Some(r) = row else { continue };
            if let Some(i) = a {
                self.add(r, i, sign_row * gm);
            }
            if let Some(j) = b {
                self.add(r, j, -sign_row * gm);
            }
        }
    }

    /// Stamps an ideal voltage source as the `k`-th branch-current
    /// unknown (absolute index `branch_row`), forcing `v_p − v_n = v`.
    fn stamp_vsource(&mut self, branch_row: usize, p: Option<usize>, n: Option<usize>, v: f64) {
        if let Some(ip) = p {
            self.add(ip, branch_row, 1.0);
            self.add(branch_row, ip, 1.0);
        }
        if let Some(in_) = n {
            self.add(in_, branch_row, -1.0);
            self.add(branch_row, in_, -1.0);
        }
        self.add_rhs(branch_row, v);
    }
}

/// A dense row-major matrix with its right-hand side, sized for MNA.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    n: usize,
    a: Vec<f64>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
}

impl Stamper for MnaSystem {
    fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, g: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.a[row * self.n + col] += g;
    }

    #[inline]
    fn add_rhs(&mut self, row: usize, v: f64) {
        debug_assert!(row < self.n);
        self.rhs[row] += v;
    }

    fn clear(&mut self) {
        self.a.fill(0.0);
        self.rhs.fill(0.0);
    }
}

impl MnaSystem {
    /// Creates a zeroed `n × n` system.
    pub fn new(n: usize) -> Self {
        MnaSystem {
            n,
            a: vec![0.0; n * n],
            rhs: vec![0.0; n],
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets the right-hand side from a slice (used by the sparse
    /// engine's dense fallback).
    pub(crate) fn set_rhs(&mut self, rhs: &[f64]) {
        self.rhs.copy_from_slice(rhs);
    }

    /// Solves the system in place by LU with partial pivoting, returning
    /// the solution vector.
    ///
    /// Singularity is judged *relative to each column's original
    /// scale* ([`REL_PIVOT_TOL`]): a column whose best pivot collapses
    /// by thirteen decades against its own entries is dependent for any
    /// practical purpose, while a tiny-but-consistent column (a badly
    /// scaled yet solvable system) factors normally.
    ///
    /// # Errors
    /// [`SpiceError::Singular`] when no usable pivot exists.
    pub fn solve(&mut self, analysis: &str) -> Result<Vec<f64>, SpiceError> {
        let n = self.n;
        let a = &mut self.a;
        let b = &mut self.rhs;
        let mut perm: Vec<usize> = (0..n).collect();

        // Per-column scale of the *original* matrix: the reference for
        // the relative singularity test below.
        let mut col_scale = vec![0.0f64; n];
        for row in 0..n {
            for (col, scale) in col_scale.iter_mut().enumerate() {
                *scale = scale.max(a[row * n + col].abs());
            }
        }

        for col in 0..n {
            // Partial pivot.
            let mut best = col;
            let mut best_mag = a[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let mag = a[perm[row] * n + col].abs();
                if mag > best_mag {
                    best = row;
                    best_mag = mag;
                }
            }
            if best_mag <= REL_PIVOT_TOL * col_scale[col] {
                // Covers the all-zero column (scale 0 ⇒ best_mag 0).
                return Err(SpiceError::Singular {
                    analysis: analysis.to_string(),
                });
            }
            perm.swap(col, best);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in &perm[(col + 1)..n] {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = factor; // store L
                for k in (col + 1)..n {
                    a[r * n + k] -= factor * a[prow * n + k];
                }
                b[r] -= factor * b[prow];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for col in (0..n).rev() {
            let r = perm[col];
            let mut sum = b[r];
            for k in (col + 1)..n {
                sum -= a[r * n + k] * x[k];
            }
            x[col] = sum / a[r * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut s = MnaSystem::new(3);
        for i in 0..3 {
            s.add(i, i, 1.0);
            s.add_rhs(i, (i + 1) as f64);
        }
        let x = s.solve("test").unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let mut s = MnaSystem::new(2);
        s.add(0, 1, 1.0);
        s.add(1, 0, 2.0);
        s.add_rhs(0, 3.0);
        s.add_rhs(1, 4.0);
        let x = s.solve("test").unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut s = MnaSystem::new(2);
        s.add(0, 0, 1.0);
        s.add(0, 1, 1.0);
        s.add(1, 0, 1.0);
        s.add(1, 1, 1.0);
        s.add_rhs(0, 1.0);
        assert!(matches!(s.solve("test"), Err(SpiceError::Singular { .. })));
    }

    #[test]
    fn badly_scaled_but_solvable_system_factors() {
        // Regression: the old absolute 1e-300 cutoff declared this
        // diagonal system singular even though it is perfectly
        // conditioned at its own scale.
        let mut s = MnaSystem::new(2);
        s.add(0, 0, 1e-305);
        s.add(1, 1, 2e-305);
        s.add_rhs(0, 3e-305);
        s.add_rhs(1, 2e-305);
        let x = s.solve("test").unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9, "x0 = {}", x[0]);
        assert!((x[1] - 1.0).abs() < 1e-9, "x1 = {}", x[1]);
    }

    #[test]
    fn mixed_scale_gmin_row_is_not_singular() {
        // One row at gmin scale (1e-12), one at unit scale — the
        // classic gmin-stepping shape. Must factor.
        let mut s = MnaSystem::new(2);
        s.add(0, 0, 1e-12);
        s.add(1, 1, 1.0);
        s.add_rhs(0, 2e-12);
        s.add_rhs(1, 3.0);
        let x = s.solve("test").unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_columns_relative_to_scale_detected() {
        // Columns identical up to 1e-16 of their scale: numerically
        // singular even though every entry is far above 1e-300.
        let mut s = MnaSystem::new(2);
        s.add(0, 0, 1e6);
        s.add(0, 1, 1e6);
        s.add(1, 0, 2e6);
        s.add(1, 1, 2e6);
        s.add_rhs(0, 1.0);
        assert!(matches!(s.solve("test"), Err(SpiceError::Singular { .. })));
    }

    #[test]
    fn voltage_divider_by_stamps() {
        // V=5 on node0 via branch row 2; R1 between 0 and 1, R2 node1 to gnd.
        // Unknowns: v0, v1, i_v.
        let mut s = MnaSystem::new(3);
        let g1 = 1.0 / 1000.0;
        let g2 = 1.0 / 1000.0;
        s.stamp_conductance(Some(0), Some(1), g1);
        s.stamp_conductance(Some(1), None, g2);
        s.stamp_vsource(2, Some(0), None, 5.0);
        let x = s.solve("divider").unwrap();
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 2.5).abs() < 1e-9);
        // Source current: 5V across 2k = 2.5 mA flowing out of + terminal.
        assert!((x[2] + 0.0025).abs() < 1e-9);
    }

    #[test]
    fn vccs_stamp_directions() {
        // gm * v(a) injected into node c from ground; check sign.
        // Unknowns: a(0), c(1). Drive a with a 1V source (branch 2).
        let mut s = MnaSystem::new(3);
        s.stamp_vsource(2, Some(0), None, 1.0);
        s.stamp_conductance(Some(1), None, 1.0); // 1S load at c
                                                 // current c<-d controlled by v(a)-0, gm=2: i flows from c to d(ground)
        s.stamp_vccs(Some(1), None, Some(0), None, 2.0);
        let x = s.solve("vccs").unwrap();
        // KCL at c: g*v_c + gm*v_a = 0 -> v_c = -2.0
        assert!((x[1] + 2.0).abs() < 1e-12);
    }
}
