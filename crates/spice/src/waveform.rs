//! Waveform storage and measurement utilities.
//!
//! AnaFAULT's detection criterion compares faulty and nominal waveforms
//! within amplitude/time tolerances, and the VCO experiments measure
//! oscillation frequency and amplitude — all of that lives here.

/// A sampled waveform: strictly increasing times with one value each.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Wave {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Wave {
    /// Builds a wave from parallel `times`/`values` vectors.
    ///
    /// # Panics
    /// Panics when lengths differ or times are not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "times must be strictly increasing"
        );
        Wave { times, values }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the wave has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The final sample value.
    ///
    /// # Panics
    /// Panics on an empty wave.
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("empty waveform")
    }

    /// Linear interpolation at time `t`, clamped to the end values.
    pub fn value_at(&self, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        // Binary search for the bracketing interval.
        let idx = self.times.partition_point(|&x| x < t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Minimum sampled value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sampled value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak-to-peak amplitude.
    pub fn amplitude(&self) -> f64 {
        self.max() - self.min()
    }

    /// Times where the wave crosses `threshold` rising (linear
    /// interpolation between samples).
    pub fn rising_crossings(&self, threshold: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.times.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            if v0 < threshold && v1 >= threshold {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let f = (threshold - v0) / (v1 - v0);
                out.push(t0 + f * (t1 - t0));
            }
        }
        out
    }

    /// Estimated oscillation period from rising crossings of the mid
    /// level; `None` when fewer than two crossings exist.
    pub fn period(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let mid = (self.max() + self.min()) / 2.0;
        let crossings = self.rising_crossings(mid);
        if crossings.len() < 2 {
            return None;
        }
        // Average of successive gaps is robust against a ragged first
        // cycle after power-up.
        let gaps: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
        Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
    }

    /// Estimated oscillation frequency (Hz); `None` when not periodic.
    pub fn frequency(&self) -> Option<f64> {
        self.period().map(|p| 1.0 / p)
    }

    /// Maximum absolute difference against `other`, sampled at *this*
    /// wave's time points.
    pub fn max_abs_diff(&self, other: &Wave) -> f64 {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (v - other.value_at(t)).abs())
            .fold(0.0, f64::max)
    }

    /// First time at which this wave deviates from `nominal` by more
    /// than `v_tol`, allowing the nominal to shift by up to `t_tol` in
    /// time (the paper's Fig. 5 criterion: 2 V amplitude, 0.2 µs time
    /// tolerance). Returns `None` when never detected.
    ///
    /// A deviation at time `t` only counts when **no** nominal value in
    /// the window `[t − t_tol, t + t_tol]` lies within `v_tol` of the
    /// faulty value: phase wobble inside the time tolerance is forgiven.
    ///
    /// A non-finite sample (NaN/∞ from a diverged faulty solve) is
    /// always a detected deviation: a simulation that blows up is the
    /// opposite of tracking the nominal, and NaN comparison semantics
    /// must not be allowed to classify it as silently undetected.
    pub fn first_detection(&self, nominal: &Wave, v_tol: f64, t_tol: f64) -> Option<f64> {
        for (&t, &v) in self.times.iter().zip(&self.values) {
            if !nominal.tracks(t, v, v_tol, t_tol) {
                return Some(t);
            }
        }
        None
    }

    /// True when this wave, taken as the nominal reference, explains the
    /// sample `(t, v)`: some value within `[t − t_tol, t + t_tol]` lies
    /// within `v_tol` of `v`. This is the per-point predicate behind
    /// [`Wave::first_detection`], exposed so streaming consumers (e.g.
    /// an early-stopping fault campaign) can evaluate detection sample
    /// by sample with identical semantics.
    pub fn tracks(&self, t: f64, v: f64, v_tol: f64, t_tol: f64) -> bool {
        // A non-finite sample can never be explained by a (finite)
        // nominal — and must not slip through via NaN/∞ comparison
        // edge cases (e.g. `∞ − ∞ = NaN`, or an infinite `v_tol`).
        if !v.is_finite() {
            return false;
        }
        let (lo, hi) = (t - t_tol, t + t_tol);
        // Check the window end-points (interpolated) …
        if (self.value_at(lo) - v).abs() <= v_tol || (self.value_at(hi) - v).abs() <= v_tol {
            return true;
        }
        // … every sample inside the window …
        let start = self.times.partition_point(|&x| x < lo);
        let mut i = start;
        while i < self.times.len() && self.times[i] <= hi {
            if (self.values[i] - v).abs() <= v_tol {
                return true;
            }
            i += 1;
        }
        // … and segments crossing the level `v` at a time inside the
        // window (the nominal passes exactly through `v` there).
        for i in 1..self.times.len() {
            let (t0, t1) = (self.times[i - 1], self.times[i]);
            if t1 < lo {
                continue;
            }
            if t0 > hi {
                break;
            }
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let brackets = ((v0 - v) <= 0.0) != ((v1 - v) <= 0.0) || v0 == v || v1 == v;
            if brackets && v1 != v0 {
                let tc = t0 + (t1 - t0) * (v - v0) / (v1 - v0);
                if tc >= lo && tc <= hi {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Wave {
        Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 10.0, 20.0, 30.0])
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 5.0);
        assert_eq!(w.value_at(99.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_panic() {
        let _ = Wave::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn amplitude_and_extrema() {
        let w = Wave::new(vec![0.0, 1.0, 2.0], vec![-2.0, 5.0, 1.0]);
        assert_eq!(w.min(), -2.0);
        assert_eq!(w.max(), 5.0);
        assert_eq!(w.amplitude(), 7.0);
    }

    #[test]
    fn period_of_square_wave() {
        // 1 kHz square wave sampled at 10 kHz for 5 ms.
        let mut times = Vec::new();
        let mut vals = Vec::new();
        for i in 0..50 {
            let t = i as f64 * 1e-4;
            times.push(t);
            vals.push(if (t * 1e3) as i64 % 2 == 0 { 0.0 } else { 5.0 });
        }
        let w = Wave::new(times, vals);
        let f = w.frequency().unwrap();
        assert!((f - 500.0).abs() / 500.0 < 0.2, "got {f}");
    }

    #[test]
    fn identical_waves_never_detect() {
        let w = ramp();
        assert_eq!(w.first_detection(&w, 0.1, 0.0), None);
    }

    #[test]
    fn gross_deviation_detected_at_onset() {
        let nominal = Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0, 0.0]);
        let faulty = Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.0, 5.0, 5.0]);
        let t = faulty.first_detection(&nominal, 2.0, 0.0).unwrap();
        assert_eq!(t, 2.0);
    }

    #[test]
    fn time_tolerance_forgives_phase_shift() {
        // Same ramp shifted by 0.1 in time: inside t_tol there is always
        // a matching nominal value.
        let nominal = ramp();
        // Final sample stays inside the nominal's range: a shifted wave
        // that *exceeds* the nominal envelope at the end of the record
        // is genuinely detectable.
        let shifted = Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 11.0, 21.0, 30.0]);
        // Values differ by 1.0 > v_tol 0.5, but time shift 0.1 maps onto
        // the nominal ramp (slope 10 => 0.1 time ≙ 1.0 value).
        assert_eq!(shifted.first_detection(&nominal, 0.5, 0.15), None);
        // Without time tolerance it is detected immediately.
        assert!(shifted.first_detection(&nominal, 0.5, 0.0).is_some());
    }

    #[test]
    fn non_finite_samples_always_detect() {
        let nominal = Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0, 0.0]);
        // NaN injected mid-record (a diverged Newton solve): detected
        // at the first non-finite sample even with huge tolerances.
        let faulty = Wave::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.0, f64::NAN, 0.0]);
        assert_eq!(faulty.first_detection(&nominal, 1e9, 1.0), Some(2.0));
        // Same for +/- infinity — including the `∞ − ∞ = NaN` trap
        // when the tolerance itself is infinite.
        let faulty = Wave::new(vec![0.0, 1.0], vec![0.0, f64::INFINITY]);
        assert_eq!(
            faulty.first_detection(&nominal, f64::INFINITY, 0.0),
            Some(1.0)
        );
        let faulty = Wave::new(vec![0.0, 1.0], vec![0.0, f64::NEG_INFINITY]);
        assert_eq!(faulty.first_detection(&nominal, 2.0, 0.5), Some(1.0));
        // The per-sample predicate agrees.
        assert!(!nominal.tracks(1.0, f64::NAN, 1e9, 1.0));
    }

    #[test]
    fn max_abs_diff_measures_worst_case() {
        let a = ramp();
        let mut v = a.values().to_vec();
        v[2] += 7.0;
        let b = Wave::new(a.times().to_vec(), v);
        assert_eq!(b.max_abs_diff(&a), 7.0);
    }
}
