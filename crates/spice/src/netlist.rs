//! The circuit data model.
//!
//! Designed for in-memory topology editing: the fault injector adds and
//! removes elements, rewires individual terminals and splits nodes. All
//! of that happens on [`Circuit`] before it is handed to an analysis.

use std::collections::HashMap;

/// Index of a circuit node. Node 0 is always ground (`"0"` / `"gnd"`).
pub type NodeId = usize;

/// MOS transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Shichman–Hodges (SPICE level-1) model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Model name as referenced by `M` cards.
    pub name: String,
    /// Polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage (V); negative for PMOS.
    pub vto: f64,
    /// Transconductance parameter µ·Cox (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Body-effect coefficient (√V).
    pub gamma: f64,
    /// Surface potential 2φF (V).
    pub phi: f64,
    /// Gate-oxide capacitance per area (F/m²), used for simple gate
    /// loading; zero disables it.
    pub cox: f64,
}

impl MosModel {
    /// Default 1 µm-era NMOS model.
    pub fn default_nmos(name: impl Into<String>) -> Self {
        MosModel {
            name: name.into(),
            polarity: MosPolarity::Nmos,
            vto: 0.8,
            kp: 80e-6,
            lambda: 0.05,
            gamma: 0.4,
            phi: 0.65,
            cox: 1.7e-3,
        }
    }

    /// Default 1 µm-era PMOS model.
    pub fn default_pmos(name: impl Into<String>) -> Self {
        MosModel {
            name: name.into(),
            polarity: MosPolarity::Pmos,
            vto: -0.9,
            kp: 27e-6,
            lambda: 0.07,
            gamma: 0.5,
            phi: 0.65,
            cox: 1.7e-3,
        }
    }
}

/// Independent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE `PULSE(v1 v2 td tr tf pw per)`.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge (s).
        td: f64,
        /// Rise time (s).
        tr: f64,
        /// Fall time (s).
        tf: f64,
        /// Pulse width (s).
        pw: f64,
        /// Period (s); `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// SPICE `SIN(vo va freq td theta)`.
    Sin {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Frequency (Hz).
        freq: f64,
        /// Delay (s).
        td: f64,
        /// Damping factor (1/s).
        theta: f64,
    },
    /// Piecewise-linear `(time, value)` points, sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Source value at time `t` (transient semantics; DC analyses use
    /// `t = 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                period,
            } => {
                if t < *td {
                    return *v1;
                }
                let mut tl = t - td;
                if period.is_finite() && *period > 0.0 {
                    tl %= period;
                }
                if tl < *tr {
                    let f = if *tr > 0.0 { tl / tr } else { 1.0 };
                    v1 + (v2 - v1) * f
                } else if tl < tr + pw {
                    *v2
                } else if tl < tr + pw + tf {
                    let f = if *tf > 0.0 { (tl - tr - pw) / tf } else { 1.0 };
                    v2 + (v1 - v2) * f
                } else {
                    *v1
                }
            }
            Waveform::Sin {
                vo,
                va,
                freq,
                td,
                theta,
            } => {
                if t < *td {
                    *vo
                } else {
                    let tp = t - td;
                    vo + va * (-theta * tp).exp() * (2.0 * std::f64::consts::PI * freq * tp).sin()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().unwrap().1
            }
        }
    }

    /// The DC (t = 0⁻) value of the waveform.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Sin { vo, .. } => *vo,
            Waveform::Pwl(p) => p.first().map(|&(_, v)| v).unwrap_or(0.0),
        }
    }
}

/// The electrical behaviour of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// Linear resistor (Ω).
    Resistor {
        /// Resistance in ohms; must be non-zero.
        r: f64,
    },
    /// Linear capacitor (F) with optional initial condition (V).
    Capacitor {
        /// Capacitance in farads.
        c: f64,
        /// Initial voltage used when the transient runs with UIC.
        ic: Option<f64>,
    },
    /// Independent voltage source.
    Vsource {
        /// Waveform.
        wave: Waveform,
    },
    /// Independent current source (current flows from terminal 0 through
    /// the source to terminal 1).
    Isource {
        /// Waveform.
        wave: Waveform,
    },
    /// MOS transistor, terminals `[d, g, s, b]`.
    Mosfet {
        /// Model name (must exist in [`Circuit::models`]).
        model: String,
        /// Channel width (m).
        w: f64,
        /// Channel length (m).
        l: f64,
    },
}

impl ElementKind {
    /// Number of terminals this kind requires.
    pub fn terminal_count(&self) -> usize {
        match self {
            ElementKind::Mosfet { .. } => 4,
            _ => 2,
        }
    }

    /// SPICE card letter.
    pub fn letter(&self) -> char {
        match self {
            ElementKind::Resistor { .. } => 'R',
            ElementKind::Capacitor { .. } => 'C',
            ElementKind::Vsource { .. } => 'V',
            ElementKind::Isource { .. } => 'I',
            ElementKind::Mosfet { .. } => 'M',
        }
    }
}

/// A circuit element: a name, terminal nodes and a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Instance name (`M11`, `Rshort`, …).
    pub name: String,
    /// Terminal nodes; length matches `kind.terminal_count()`.
    pub nodes: Vec<NodeId>,
    /// Electrical behaviour.
    pub kind: ElementKind,
}

/// A complete circuit: named nodes, elements and MOS models.
///
/// ```
/// use spice::{Circuit, ElementKind, Waveform};
///
/// let mut ckt = Circuit::new("divider");
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add("V1", vec![vin, Circuit::GROUND], ElementKind::Vsource { wave: Waveform::Dc(5.0) });
/// ckt.add("R1", vec![vin, out], ElementKind::Resistor { r: 1e3 });
/// ckt.add("R2", vec![out, Circuit::GROUND], ElementKind::Resistor { r: 1e3 });
/// assert_eq!(ckt.node_count(), 3);
/// assert_eq!(ckt.node_order(out), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Human-readable title (first netlist line).
    pub title: String,
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    elements: Vec<Element>,
    /// MOS models by name.
    pub models: HashMap<String, MosModel>,
    /// `.ic` initial node voltages (node, volts).
    pub initial_conditions: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// The ground node id.
    pub const GROUND: NodeId = 0;

    /// Creates an empty circuit containing only the ground node.
    pub fn new(title: impl Into<String>) -> Self {
        let mut node_lookup = HashMap::new();
        node_lookup.insert("0".to_string(), 0);
        Circuit {
            title: title.into(),
            node_names: vec!["0".to_string()],
            node_lookup,
            elements: Vec::new(),
            models: HashMap::new(),
            initial_conditions: Vec::new(),
        }
    }

    /// Returns the id for a node name, creating the node when new.
    /// `"0"`, `"gnd"` and `"gnd!"` all map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" || key == "gnd!" {
            return Circuit::GROUND;
        }
        if let Some(&id) = self.node_lookup.get(&key) {
            return id;
        }
        let id = self.node_names.len();
        self.node_names.push(key.clone());
        self.node_lookup.insert(key, id);
        id
    }

    /// Creates a fresh, uniquely named internal node (used by node
    /// splitting and series-element insertion).
    pub fn fresh_node(&mut self, hint: &str) -> NodeId {
        let mut i = 0usize;
        loop {
            let candidate = if i == 0 {
                hint.to_string()
            } else {
                format!("{hint}_{i}")
            };
            let key = candidate.to_ascii_lowercase();
            if !self.node_lookup.contains_key(&key) {
                let id = self.node_names.len();
                self.node_names.push(key.clone());
                self.node_lookup.insert(key, id);
                return id;
            }
            i += 1;
        }
    }

    /// Looks up an existing node id by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" || key == "gnd!" {
            return Some(Circuit::GROUND);
        }
        self.node_lookup.get(&key).copied()
    }

    /// The name of node `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Adds an element.
    ///
    /// # Panics
    /// Panics when the terminal count does not match the element kind or
    /// a node id is out of range.
    pub fn add(&mut self, name: impl Into<String>, nodes: Vec<NodeId>, kind: ElementKind) {
        assert_eq!(
            nodes.len(),
            kind.terminal_count(),
            "wrong terminal count for element kind"
        );
        for &n in &nodes {
            assert!(n < self.node_names.len(), "node id {n} out of range");
        }
        self.elements.push(Element {
            name: name.into(),
            nodes,
            kind,
        });
    }

    /// Registers a MOS model.
    pub fn add_model(&mut self, model: MosModel) {
        self.models.insert(model.name.to_ascii_lowercase(), model);
    }

    /// All elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable elements (the fault injector's entry point).
    pub fn elements_mut(&mut self) -> &mut Vec<Element> {
        &mut self.elements
    }

    /// Finds an element index by instance name (case-insensitive).
    pub fn find_element(&self, name: &str) -> Option<usize> {
        self.elements
            .iter()
            .position(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// The *order* of a node: how many element terminals attach to it.
    pub fn node_order(&self, node: NodeId) -> usize {
        self.elements
            .iter()
            .flat_map(|e| e.nodes.iter())
            .filter(|&&n| n == node)
            .count()
    }

    /// All `(element index, terminal index)` pairs attached to `node`.
    pub fn attachments(&self, node: NodeId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ei, e) in self.elements.iter().enumerate() {
            for (ti, &n) in e.nodes.iter().enumerate() {
                if n == node {
                    out.push((ei, ti));
                }
            }
        }
        out
    }

    /// Validates that every MOS references a known model and every node
    /// id is in range.
    ///
    /// # Errors
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.elements {
            if e.nodes.len() != e.kind.terminal_count() {
                return Err(format!("element {} has wrong terminal count", e.name));
            }
            for &n in &e.nodes {
                if n >= self.node_names.len() {
                    return Err(format!("element {} references unknown node {n}", e.name));
                }
            }
            if let ElementKind::Mosfet { model, .. } = &e.kind {
                if !self.models.contains_key(&model.to_ascii_lowercase()) {
                    return Err(format!(
                        "element {} references undefined model `{model}`",
                        e.name
                    ));
                }
            }
            if let ElementKind::Resistor { r } = e.kind {
                if r == 0.0 {
                    return Err(format!("resistor {} has zero resistance", e.name));
                }
            }
        }
        Ok(())
    }

    /// Emits the circuit as SPICE netlist text (round-trippable through
    /// [`crate::parser::parse_netlist`]).
    pub fn to_netlist(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.title);
        for e in &self.elements {
            let nodes: Vec<&str> = e.nodes.iter().map(|&n| self.node_name(n)).collect();
            match &e.kind {
                ElementKind::Resistor { r } => {
                    let _ = writeln!(s, "{} {} {} {}", e.name, nodes[0], nodes[1], r);
                }
                ElementKind::Capacitor { c, ic } => {
                    let _ = write!(s, "{} {} {} {}", e.name, nodes[0], nodes[1], c);
                    if let Some(v) = ic {
                        let _ = write!(s, " ic={v}");
                    }
                    let _ = writeln!(s);
                }
                ElementKind::Vsource { wave } | ElementKind::Isource { wave } => {
                    let _ = write!(s, "{} {} {} ", e.name, nodes[0], nodes[1]);
                    let _ = writeln!(s, "{}", format_wave(wave));
                }
                ElementKind::Mosfet { model, w, l } => {
                    let _ = writeln!(
                        s,
                        "{} {} {} {} {} {} w={w} l={l}",
                        e.name, nodes[0], nodes[1], nodes[2], nodes[3], model
                    );
                }
            }
        }
        for m in self.models.values() {
            let pol = match m.polarity {
                MosPolarity::Nmos => "nmos",
                MosPolarity::Pmos => "pmos",
            };
            let _ = writeln!(
                s,
                ".model {} {} vto={} kp={} lambda={} gamma={} phi={}",
                m.name, pol, m.vto, m.kp, m.lambda, m.gamma, m.phi
            );
        }
        for (n, v) in &self.initial_conditions {
            let _ = writeln!(s, ".ic v({})={}", self.node_name(*n), v);
        }
        s.push_str(".end\n");
        s
    }
}

fn format_wave(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("dc {v}"),
        Waveform::Pulse {
            v1,
            v2,
            td,
            tr,
            tf,
            pw,
            period,
        } => {
            if period.is_finite() {
                format!("pulse({v1} {v2} {td} {tr} {tf} {pw} {period})")
            } else {
                format!("pulse({v1} {v2} {td} {tr} {tf} {pw})")
            }
        }
        Waveform::Sin {
            vo,
            va,
            freq,
            td,
            theta,
        } => format!("sin({vo} {va} {freq} {td} {theta})"),
        Waveform::Pwl(points) => {
            let inner: Vec<String> = points.iter().map(|(t, v)| format!("{t} {v}")).collect();
            format!("pwl({})", inner.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new("t");
        assert_eq!(c.node("0"), 0);
        assert_eq!(c.node("gnd"), 0);
        assert_eq!(c.node("GND!"), 0);
        let a = c.node("a");
        assert_eq!(c.node("A"), a, "node names are case-insensitive");
    }

    #[test]
    fn node_order_counts_attachments() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add("R1", vec![a, b], ElementKind::Resistor { r: 1.0 });
        c.add(
            "R2",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1.0 },
        );
        c.add(
            "C1",
            vec![a, Circuit::GROUND],
            ElementKind::Capacitor { c: 1e-12, ic: None },
        );
        assert_eq!(c.node_order(a), 3);
        assert_eq!(c.node_order(b), 1);
        assert_eq!(c.attachments(a).len(), 3);
    }

    #[test]
    fn fresh_node_never_collides() {
        let mut c = Circuit::new("t");
        let n1 = c.node("split");
        let n2 = c.fresh_node("split");
        assert_ne!(n1, n2);
        let n3 = c.fresh_node("split");
        assert_ne!(n2, n3);
    }

    #[test]
    fn validate_catches_missing_model() {
        let mut c = Circuit::new("t");
        let d = c.node("d");
        c.add(
            "M1",
            vec![d, Circuit::GROUND, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "nope".into(),
                w: 1e-6,
                l: 1e-6,
            },
        );
        assert!(c.validate().unwrap_err().contains("undefined model"));
    }

    #[test]
    fn validate_catches_zero_resistor() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 0.0 },
        );
        assert!(c.validate().is_err());
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            td: 1e-9,
            tr: 1e-9,
            tf: 1e-9,
            pw: 5e-9,
            period: 10e-9,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5e-9) - 2.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.value_at(3e-9), 5.0); // high
        assert!((w.value_at(7.5e-9) - 2.5).abs() < 1e-9); // mid-fall
                                                          // Periodic repetition.
        assert_eq!(w.value_at(13e-9), 5.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn sin_waveform_shape() {
        let w = Waveform::Sin {
            vo: 1.0,
            va: 2.0,
            freq: 1e6,
            td: 0.0,
            theta: 0.0,
        };
        assert!((w.value_at(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value_at(0.25e-6) - 3.0).abs() < 1e-9); // peak
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert!((w.value_at(0.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(5.0), 10.0);
    }

    #[test]
    fn netlist_text_round_trip_shape() {
        let mut c = Circuit::new("rt");
        let a = c.node("a");
        c.add(
            "V1",
            vec![a, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        c.add(
            "R1",
            vec![a, Circuit::GROUND],
            ElementKind::Resistor { r: 1000.0 },
        );
        let text = c.to_netlist();
        assert!(text.contains("V1 a 0 dc 5"));
        assert!(text.contains("R1 a 0 1000"));
        assert!(text.ends_with(".end\n"));
    }
}
