//! # lift — realistic fault extraction from layout (GLRFM)
//!
//! The Rust reproduction of LIFT (paper §IV): starting from the final
//! layout and its extracted netlist, enumerate the *realistic* faults —
//! the ones actual spot defects can cause — and rank them by
//! probability of occurrence.
//!
//! The flow ("Global Layout Realistic Faults Mapping"):
//!
//! 1. the circuit is extracted from layout ([`extract`] crate) —
//!    fault extraction runs on the same geometric database;
//! 2. [`bridges`] finds every pair of nets whose shapes lie within the
//!    maximum defect diameter on a layer with a short mechanism, and
//!    weights each by critical area × defect density;
//! 3. [`opens`] analyses, for every wire segment and every contact/via,
//!    which terminals separate when the defect removes it — producing
//!    line opens (split nodes) and transistor stuck-opens;
//! 4. candidates merge by electrical effect, are ranked by `p_j` and
//!    truncated at a probability threshold — the weighted fault list
//!    handed to AnaFAULT.
//!
//! Fault labels follow the paper's Fig. 4 convention
//! (`BRI n_ds_short 5->6`, `BRI metal1_short 1->5`).

pub mod bridges;
pub mod netgraph;
pub mod opens;
pub mod schematic;

use anafault::{Fault, FaultEffect};
use defect::{Mechanism, MechanismTable, SizeDistribution};
use extract::ExtractedNetlist;
use layout::Technology;

/// The classification LIFT reports (matches the paper's §VI categories:
/// bridging, line opens, transistor stuck-opens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiftFaultClass {
    /// Bridging fault (local or global short).
    Bridge,
    /// Line open that splits a net (split node).
    LineOpen,
    /// Open that isolates a single transistor terminal.
    StuckOpen,
}

impl core::fmt::Display for LiftFaultClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LiftFaultClass::Bridge => f.write_str("bridging"),
            LiftFaultClass::LineOpen => f.write_str("line open"),
            LiftFaultClass::StuckOpen => f.write_str("stuck open"),
        }
    }
}

/// One extracted realistic fault.
#[derive(Debug, Clone)]
pub struct LiftFault {
    /// Candidate id (assigned in generation order, before reduction —
    /// ids stay sparse after ranking, like the paper's #6/#339).
    pub id: usize,
    /// Classification.
    pub class: LiftFaultClass,
    /// Whether a bridge is local (between terminals of one device) or
    /// global; `true` for non-bridges too (opens are always local).
    pub local: bool,
    /// Dominant mechanism (largest probability contribution).
    pub mechanism: Mechanism,
    /// Probability of occurrence `p_j` (expected defects per die).
    pub probability: f64,
    /// The simulation-ready fault.
    pub fault: Fault,
}

/// Extraction statistics (the §VI reduction numbers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiftStats {
    /// Bridging faults in the final list.
    pub bridges: usize,
    /// Line opens in the final list.
    pub line_opens: usize,
    /// Transistor stuck-opens in the final list.
    pub stuck_opens: usize,
    /// Candidates enumerated before merging/truncation.
    pub candidates: usize,
}

impl LiftStats {
    /// Total faults in the final list.
    pub fn total(&self) -> usize {
        self.bridges + self.line_opens + self.stuck_opens
    }
}

/// The result of a LIFT run: the ranked weighted fault list.
#[derive(Debug, Clone)]
pub struct LiftResult {
    /// Faults sorted by descending probability.
    pub faults: Vec<LiftFault>,
    /// Statistics.
    pub stats: LiftStats,
}

impl LiftResult {
    /// The simulation-ready fault list (what AnaFAULT ingests).
    pub fn fault_list(&self) -> Vec<Fault> {
        self.faults.iter().map(|f| f.fault.clone()).collect()
    }

    /// Reduction versus a complete schematic fault count, in percent
    /// (the paper reports 53 % for the VCO).
    pub fn reduction_vs(&self, schematic_fault_count: usize) -> f64 {
        if schematic_fault_count == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.stats.total() as f64 / schematic_fault_count as f64)
    }
}

/// LIFT configuration.
#[derive(Debug, Clone)]
pub struct LiftOptions {
    /// Failure mechanisms and densities (default: the paper's Tab. 1).
    pub mechanisms: MechanismTable,
    /// Defect size distribution.
    pub size_dist: SizeDistribution,
    /// Probability threshold: candidates below this never enter the
    /// list (defects too unlikely to matter). The paper's p_j span is
    /// 1e-7 … 1e-9; the default cut sits below it.
    pub p_min: f64,
    /// Port names that anchor split-node faults (testbench stays on the
    /// anchored side). Defaults to supplies.
    pub ports: Vec<String>,
}

impl Default for LiftOptions {
    fn default() -> Self {
        LiftOptions {
            mechanisms: MechanismTable::paper_defaults(),
            size_dist: SizeDistribution::default_1um(),
            p_min: 1e-10,
            ports: vec!["vdd".to_string(), "0".to_string()],
        }
    }
}

/// Runs the complete GLRFM fault extraction.
pub fn extract_faults(
    netlist: &ExtractedNetlist,
    tech: &Technology,
    options: &LiftOptions,
) -> LiftResult {
    let mut candidates = Vec::new();
    let mut next_id = 1usize;

    bridges::extract_bridges(netlist, options, &mut candidates, &mut next_id);
    opens::extract_opens(netlist, tech, options, &mut candidates, &mut next_id);

    let n_candidates = next_id - 1;

    // Rank by probability, truncate.
    let mut faults: Vec<LiftFault> = candidates
        .into_iter()
        .filter(|f| f.probability >= options.p_min)
        .collect();
    faults.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
    });

    let mut stats = LiftStats {
        candidates: n_candidates,
        ..Default::default()
    };
    for f in &faults {
        match f.class {
            LiftFaultClass::Bridge => stats.bridges += 1,
            LiftFaultClass::LineOpen => stats.line_opens += 1,
            LiftFaultClass::StuckOpen => stats.stuck_opens += 1,
        }
    }

    LiftResult { faults, stats }
}

/// Helper shared by the extraction passes: builds the display label in
/// the paper's format.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_fault(
    id: usize,
    class: LiftFaultClass,
    local: bool,
    mechanism: Mechanism,
    name: &str,
    probability: f64,
    label_detail: &str,
    effect: FaultEffect,
) -> LiftFault {
    let prefix = match class {
        LiftFaultClass::Bridge => "BRI",
        LiftFaultClass::LineOpen => "OPN",
        LiftFaultClass::StuckOpen => "SOP",
    };
    let label = format!("{prefix} {name} {label_detail}");
    LiftFault {
        id,
        class,
        local,
        mechanism,
        probability,
        fault: Fault::new(id, label, effect).with_probability(probability),
    }
}
