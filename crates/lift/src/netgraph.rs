//! Per-net connectivity graphs for open-fault effect analysis.
//!
//! A net's geometry is a graph: nodes are the canonical rectangles of
//! its fragments ("sites"), edges are same-layer contact between sites
//! plus contact/via cuts. Device terminals and labelled ports attach to
//! specific sites. Removing a site (line open) or a cut edge (contact
//! open) partitions the graph; the resulting grouping of terminals *is*
//! the electrical effect of the open.

use extract::{ExtractedNetlist, NetId};
use geom::Rect;
use std::collections::HashMap;

/// A terminal attached to a net site.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attachment {
    /// A device terminal `(element name, terminal index)` using the
    /// simulation circuit's terminal numbering (M: d=0, g=1, s=2; C:
    /// 0/1).
    Terminal(String, usize),
    /// A labelled port (testbench connection).
    Port(String),
}

impl Attachment {
    /// True for ports.
    pub fn is_port(&self) -> bool {
        matches!(self, Attachment::Port(_))
    }
}

/// One graph edge between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// First site.
    pub a: usize,
    /// Second site.
    pub b: usize,
    /// `Some(cut index)` for contact/via edges, `None` for same-layer
    /// contact. Doubled contacts produce *parallel* edges with distinct
    /// cut indices — removing one cut must leave the other intact.
    pub cut: Option<usize>,
}

/// The connectivity graph of one net.
#[derive(Debug, Clone)]
pub struct NetGraph {
    /// The net.
    pub net: NetId,
    /// Site geometry: `(fragment index, rect)` per site.
    pub sites: Vec<(usize, Rect)>,
    /// All edges (same-layer contact and cuts).
    pub edges: Vec<Edge>,
    /// Terminal/port attachments per site.
    pub attachments: Vec<(usize, Attachment)>,
}

impl NetGraph {
    /// Builds the graph for `net`.
    pub fn build(netlist: &ExtractedNetlist, net: NetId) -> NetGraph {
        let mut sites: Vec<(usize, Rect)> = Vec::new();
        let mut site_of: HashMap<(usize, usize), usize> = HashMap::new();
        for &fi in &netlist.nets[net].fragments {
            for (ri, r) in netlist.fragments[fi].region.rects().iter().enumerate() {
                site_of.insert((fi, ri), sites.len());
                sites.push((fi, *r));
            }
        }
        let mut edges: Vec<Edge> = Vec::new();
        // Same-fragment contact.
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                if sites[i].0 == sites[j].0 && sites[i].1.touches(&sites[j].1) {
                    edges.push(Edge {
                        a: i,
                        b: j,
                        cut: None,
                    });
                }
            }
        }
        // Cut edges.
        for (ci, cut) in netlist.cuts.iter().enumerate() {
            if cut.net != net {
                continue;
            }
            let find_site = |fragment: usize| {
                netlist.fragments[fragment]
                    .region
                    .rects()
                    .iter()
                    .enumerate()
                    .find(|(_, r)| r.overlaps(&cut.rect) || r.touches(&cut.rect))
                    .and_then(|(ri, _)| site_of.get(&(fragment, ri)).copied())
            };
            if let (Some(a), Some(b)) =
                (find_site(cut.upper_fragment), find_site(cut.lower_fragment))
            {
                edges.push(Edge {
                    a,
                    b,
                    cut: Some(ci),
                });
            }
        }

        // Attachments: device terminals.
        let mut attachments: Vec<(usize, Attachment)> = Vec::new();
        let attach =
            |site: Option<usize>, a: Attachment, attachments: &mut Vec<(usize, Attachment)>| {
                if let Some(s) = site {
                    attachments.push((s, a));
                }
            };
        for m in &netlist.mosfets {
            // Gate: poly site overlapping the channel.
            if m.gate == net {
                let site = sites.iter().position(|&(fi, r)| {
                    netlist.fragments[fi].layer == layout::Layer::Poly && r.overlaps(&m.channel)
                });
                attach(
                    site,
                    Attachment::Terminal(m.name.clone(), 1),
                    &mut attachments,
                );
            }
            // Source/drain: active sites touching the channel.
            for (net_id, term) in [(m.source, 2usize), (m.drain, 0usize)] {
                if net_id == net {
                    let site = sites.iter().position(|&(fi, r)| {
                        netlist.fragments[fi].layer == layout::Layer::Active
                            && netlist.fragments[fi].net == net_id
                            && r.touches(&m.channel)
                    });
                    attach(
                        site,
                        Attachment::Terminal(m.name.clone(), term),
                        &mut attachments,
                    );
                }
            }
        }
        for c in &netlist.capacitors {
            for (net_id, term, layer) in [
                (c.bottom, 0usize, layout::Layer::Metal1),
                (c.top, 1usize, layout::Layer::Metal2),
            ] {
                if net_id == net {
                    let site = sites.iter().position(|&(fi, r)| {
                        netlist.fragments[fi].layer == layer && r.overlaps(&c.plate)
                    });
                    attach(
                        site,
                        Attachment::Terminal(c.name.clone(), term),
                        &mut attachments,
                    );
                }
            }
        }
        for p in &netlist.ports {
            if netlist.fragments[p.fragment].net != net {
                continue;
            }
            let site = sites
                .iter()
                .position(|&(fi, r)| fi == p.fragment && r.contains_point(p.at));
            attach(site, Attachment::Port(p.name.clone()), &mut attachments);
        }

        NetGraph {
            net,
            sites,
            edges,
            attachments,
        }
    }

    /// All attachments on the net.
    pub fn attachment_count(&self) -> usize {
        self.attachments.len()
    }

    /// Cut indices that appear as graph edges, with their endpoint
    /// sites.
    pub fn cut_edges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.edges
            .iter()
            .filter_map(|e| e.cut.map(|ci| (ci, e.a, e.b)))
    }

    /// Splits attachments into connected groups after removing site
    /// `removed_site` (pass `usize::MAX` to remove nothing) and/or the
    /// cut edge `removed_cut` (by cut index). A doubled contact — two
    /// cuts joining the same fragments — survives single-cut removal
    /// because only the edge with the matching cut index disappears.
    /// Returns the groups of attachments, one per connected component
    /// that has any.
    pub fn partition_after_removal(
        &self,
        removed_site: usize,
        removed_cut: Option<usize>,
    ) -> Vec<Vec<Attachment>> {
        let n = self.sites.len();
        // Surviving adjacency.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.a == removed_site || e.b == removed_site {
                continue;
            }
            if removed_cut.is_some() && e.cut == removed_cut {
                continue;
            }
            adjacency[e.a].push(e.b);
            adjacency[e.b].push(e.a);
        }
        let mut comp = vec![usize::MAX; n];
        let mut next_comp = 0;
        for start in 0..n {
            if start == removed_site || comp[start] != usize::MAX {
                continue;
            }
            let mut queue = vec![start];
            comp[start] = next_comp;
            while let Some(u) = queue.pop() {
                for &v in &adjacency[u] {
                    if comp[v] != usize::MAX {
                        continue;
                    }
                    comp[v] = next_comp;
                    queue.push(v);
                }
            }
            next_comp += 1;
        }
        let mut groups: HashMap<usize, Vec<Attachment>> = HashMap::new();
        for (site, a) in &self.attachments {
            if *site == removed_site {
                // Attachment sits exactly on the destroyed segment: the
                // terminal dangles — treat as its own group.
                groups.entry(usize::MAX - 1).or_default().push(a.clone());
                continue;
            }
            groups.entry(comp[*site]).or_default().push(a.clone());
        }
        let mut out: Vec<Vec<Attachment>> = groups.into_values().collect();
        for g in &mut out {
            g.sort();
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract::{connectivity::extract, ExtractOptions};
    use geom::Point;
    use layout::{CellBuilder, Layer, Library, MosParams, MosStyle, Technology};

    fn netlist_for(cell: layout::Cell) -> ExtractedNetlist {
        let t = Technology::generic_1um();
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        let flat = lib.flatten(&name).unwrap();
        extract(&flat, &t, &ExtractOptions::default()).unwrap()
    }

    #[test]
    fn straight_wire_with_two_ports() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("w", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(40_000, 0)],
            1_500,
        );
        b.label(Layer::Metal1, Point::new(1_000, 0), "a");
        // Second label has to be a different port on the same net: allowed
        // only when names agree, so reuse the same name.
        b.label(Layer::Metal1, Point::new(39_000, 0), "a");
        let n = netlist_for(b.finish());
        let g = NetGraph::build(&n, 0);
        assert_eq!(g.attachment_count(), 2);
        // Removing nothing: one group with both ports.
        let whole = g.partition_after_removal(usize::MAX, None);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), 2);
    }

    #[test]
    fn cut_edge_removal_partitions_terminals() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("v", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(20_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal2,
            &[Point::new(20_000, 0), Point::new(20_000, 20_000)],
            1_500,
        );
        b.via(Point::new(20_000, 0));
        b.label(Layer::Metal1, Point::new(1_000, 0), "x");
        b.label(Layer::Metal2, Point::new(20_000, 19_000), "x");
        let n = netlist_for(b.finish());
        assert_eq!(n.net_count(), 1);
        let g = NetGraph::build(&n, 0);
        let cuts: Vec<_> = g.cut_edges().collect();
        assert_eq!(cuts.len(), 1);
        let parts = g.partition_after_removal(usize::MAX, Some(cuts[0].0));
        // The two ports end up in different groups.
        assert_eq!(parts.len(), 2, "{parts:?}");
    }

    #[test]
    fn doubled_cut_survives_single_removal() {
        // Two vias joining the same m1/m2 fragments: removing either one
        // must NOT partition the net.
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("v2", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(20_000, 0)],
            2_000,
        );
        b.wire(
            Layer::Metal2,
            &[Point::new(14_000, 0), Point::new(14_000, 20_000)],
            2_000,
        );
        b.via(Point::new(14_000, 0));
        b.via(Point::new(17_000, 0));
        b.wire(
            Layer::Metal2,
            &[Point::new(14_000, 0), Point::new(17_000, 0)],
            2_000,
        );
        b.label(Layer::Metal1, Point::new(1_000, 0), "x");
        b.label(Layer::Metal2, Point::new(14_000, 19_000), "x");
        let n = netlist_for(b.finish());
        assert_eq!(n.net_count(), 1);
        let g = NetGraph::build(&n, 0);
        let cuts: Vec<_> = g.cut_edges().collect();
        assert_eq!(cuts.len(), 2);
        for (ci, _, _) in cuts {
            let parts = g.partition_after_removal(usize::MAX, Some(ci));
            assert_eq!(parts.len(), 1, "cut {ci} must not partition");
        }
    }

    #[test]
    fn mos_terminals_attach() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("m", &t);
        let _g = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let n = netlist_for(b.finish());
        let m = &n.mosfets[0];
        let gate_graph = NetGraph::build(&n, m.gate);
        assert!(gate_graph
            .attachments
            .iter()
            .any(|(_, a)| *a == Attachment::Terminal("M1".into(), 1)));
        let source_graph = NetGraph::build(&n, m.source);
        assert!(source_graph
            .attachments
            .iter()
            .any(|(_, a)| *a == Attachment::Terminal("M1".into(), 2)));
    }
}
