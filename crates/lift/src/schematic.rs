//! The complete schematic-assumed fault list.
//!
//! Before any layout information exists, the conservative assumption is
//! "every terminal of every component can open, every terminal pair can
//! short" (paper §III: "the complete set of possible hard faults
//! irrespective whether or not the assumptions are realistic"). This
//! module enumerates that set; for the paper's VCO it must come out as
//! 78 + 1 opens and 73 shorts (§VI).

use anafault::{Fault, FaultEffect};
use spice::{Circuit, ElementKind};

/// The complete schematic fault list, opens and shorts separated.
#[derive(Debug, Clone)]
pub struct SchematicFaults {
    /// Single open faults (one per component terminal; capacitors get
    /// one open total — opening either plate is equivalent).
    pub opens: Vec<Fault>,
    /// Single short faults (one per distinct-node terminal pair).
    pub shorts: Vec<Fault>,
    /// Designed-short pairs skipped (e.g. diode-connected gate-drain
    /// transistors).
    pub skipped_designed_shorts: usize,
}

impl SchematicFaults {
    /// All faults, opens first.
    pub fn all(&self) -> Vec<Fault> {
        let mut v = self.opens.clone();
        v.extend(self.shorts.iter().cloned());
        v
    }

    /// Total fault count.
    pub fn total(&self) -> usize {
        self.opens.len() + self.shorts.len()
    }
}

/// Enumerates the complete single-hard-fault set of a circuit's devices
/// (MOSFETs and capacitors; testbench sources and fault-model resistors
/// are not fault sites).
pub fn schematic_faults(ckt: &Circuit) -> SchematicFaults {
    let mut opens = Vec::new();
    let mut shorts = Vec::new();
    let mut skipped = 0usize;
    let mut id = 1usize;

    for e in ckt.elements() {
        match &e.kind {
            ElementKind::Mosfet { .. } => {
                // Opens on d, g, s (bulk is the well/substrate plane —
                // not a line that opens).
                for (term, letter) in [(0usize, 'd'), (1, 'g'), (2, 's')] {
                    opens.push(Fault::new(
                        id,
                        format!("OPN {}.{letter}", e.name),
                        FaultEffect::OpenTerminal {
                            element: e.name.clone(),
                            terminal: term,
                        },
                    ));
                    id += 1;
                }
                // Shorts on terminal pairs with distinct nodes.
                for (t1, t2, tag) in [(1usize, 0usize, "gd"), (1, 2, "gs"), (0, 2, "ds")] {
                    if e.nodes[t1] == e.nodes[t2] {
                        skipped += 1; // designed short (diode-connected)
                        continue;
                    }
                    shorts.push(Fault::new(
                        id,
                        format!("BRI {}.{tag}", e.name),
                        FaultEffect::ElementShort {
                            element: e.name.clone(),
                            t1,
                            t2,
                        },
                    ));
                    id += 1;
                }
            }
            ElementKind::Capacitor { .. } => {
                opens.push(Fault::new(
                    id,
                    format!("OPN {}", e.name),
                    FaultEffect::OpenTerminal {
                        element: e.name.clone(),
                        terminal: 0,
                    },
                ));
                id += 1;
                if e.nodes[0] != e.nodes[1] {
                    shorts.push(Fault::new(
                        id,
                        format!("BRI {}", e.name),
                        FaultEffect::ElementShort {
                            element: e.name.clone(),
                            t1: 0,
                            t2: 1,
                        },
                    ));
                    id += 1;
                }
            }
            _ => {}
        }
    }

    SchematicFaults {
        opens,
        shorts,
        skipped_designed_shorts: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::{MosModel, Waveform};

    /// A miniature circuit with one diode-connected transistor.
    fn mini() -> Circuit {
        let mut c = Circuit::new("mini");
        c.add_model(MosModel::default_nmos("n"));
        let vdd = c.node("vdd");
        let a = c.node("a");
        let b = c.node("b");
        c.add(
            "V1",
            vec![vdd, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        // Diode-connected: gate == drain == a.
        c.add(
            "M1",
            vec![a, a, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "n".into(),
                w: 10e-6,
                l: 1e-6,
            },
        );
        c.add(
            "M2",
            vec![b, a, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "n".into(),
                w: 10e-6,
                l: 1e-6,
            },
        );
        c.add(
            "C1",
            vec![b, Circuit::GROUND],
            ElementKind::Capacitor { c: 1e-12, ic: None },
        );
        c
    }

    #[test]
    fn counts_follow_the_identities() {
        let f = schematic_faults(&mini());
        // Opens: 3 per transistor × 2 + 1 capacitor = 7.
        assert_eq!(f.opens.len(), 7);
        // Shorts: 3 per transistor × 2 − 1 designed (M1 g-d) − M2 g-s?
        // M2: g=a, s=0 — distinct; M2 d=b, s=0 distinct; so 3+2=5, plus
        // capacitor short (b vs 0 distinct) = 6.
        assert_eq!(f.shorts.len(), 6);
        assert_eq!(f.skipped_designed_shorts, 1);
        assert_eq!(f.total(), 13);
    }

    #[test]
    fn sources_are_not_fault_sites() {
        let f = schematic_faults(&mini());
        assert!(f.all().iter().all(|fault| !fault.label.contains("V1")));
    }

    #[test]
    fn labels_follow_convention() {
        let f = schematic_faults(&mini());
        assert!(f.opens.iter().any(|x| x.label == "OPN M1.d"));
        assert!(f.shorts.iter().any(|x| x.label == "BRI M2.gd"));
        assert!(f.opens.iter().any(|x| x.label == "OPN C1"));
    }

    #[test]
    fn ids_unique_and_dense() {
        let f = schematic_faults(&mini());
        let mut ids: Vec<usize> = f.all().iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), f.total());
    }
}
