//! Open-fault extraction: line opens, contact/via opens, stuck-opens.
//!
//! Every wire segment on a layer with an open mechanism and every
//! contact/via is a candidate removal. The effect comes from the net's
//! connectivity graph ([`crate::netgraph`]): a removal that separates
//! terminals becomes either a **stuck-open** (exactly one device
//! terminal isolated) or a **line open / split node** (larger groups).
//! Removals that separate nothing are physical failures with no
//! electrical consequence and are dropped — one of the ways LIFT's
//! realistic list gets shorter than the schematic-complete one.

use crate::netgraph::{Attachment, NetGraph};
use crate::{make_fault, LiftFault, LiftFaultClass, LiftOptions};
use anafault::FaultEffect;
use defect::{weighted_cut_open_area, weighted_open_area, Mechanism};
use extract::ExtractedNetlist;
use layout::{Layer, Technology};
use std::collections::HashMap;

/// Candidate open accumulated per electrical effect.
struct OpenAccum {
    probability: f64,
    by_mechanism: HashMap<Mechanism, f64>,
    /// The terminal group that separates (the smaller / non-anchored
    /// side), as (element, terminal) pairs; `None` while unresolved.
    moved: Vec<(String, usize)>,
    ports_on_both_sides: bool,
}

pub(crate) fn extract_opens(
    netlist: &ExtractedNetlist,
    tech: &Technology,
    options: &LiftOptions,
    out: &mut Vec<LiftFault>,
    next_id: &mut usize,
) {
    for net in 0..netlist.net_count() {
        let graph = NetGraph::build(netlist, net);
        if graph.attachment_count() < 2 {
            continue; // an open cannot separate fewer than two terminals
        }
        let mut accum: HashMap<Vec<(String, usize)>, OpenAccum> = HashMap::new();

        // Line opens: remove each site.
        for (site, &(fi, rect)) in graph.sites.iter().enumerate() {
            let layer = netlist.fragments[fi].layer;
            let mechanism = Mechanism::LineOpen(layer);
            let density = options.mechanisms.absolute_density(mechanism);
            if density <= 0.0 {
                continue;
            }
            let area = weighted_open_area(
                rect.long_side() as f64,
                rect.short_side() as f64,
                &options.size_dist,
            );
            let p = density * area;
            if p <= 0.0 {
                continue;
            }
            let parts = graph.partition_after_removal(site, None);
            record_candidate(&parts, p, mechanism, options, &mut accum);
        }

        // Cut opens: remove each cut edge.
        let cut_list: Vec<(usize, usize, usize)> = graph.cut_edges().collect();
        for &(ci, _, _) in &cut_list {
            let cut = &netlist.cuts[ci];
            let mechanism = match cut.layer {
                Layer::Via1 => Mechanism::ViaOpen,
                Layer::Contact => {
                    // Distinguish by what the cut lands on below.
                    match netlist.fragments[cut.lower_fragment].layer {
                        Layer::Poly => Mechanism::ContactOpenPoly,
                        _ => Mechanism::ContactOpenDiff,
                    }
                }
                other => {
                    debug_assert!(false, "cut on non-cut layer {other}");
                    continue;
                }
            };
            let density = options.mechanisms.absolute_density(mechanism);
            if density <= 0.0 {
                continue;
            }
            let area = weighted_cut_open_area(tech.cut_size() as f64, &options.size_dist);
            let p = density * area;
            if p <= 0.0 {
                continue;
            }
            let parts = graph.partition_after_removal(usize::MAX, Some(ci));
            record_candidate(&parts, p, mechanism, options, &mut accum);
        }

        // Emit merged candidates for this net.
        let mut merged: Vec<(Vec<(String, usize)>, OpenAccum)> = accum.into_iter().collect();
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        for (moved, acc) in merged {
            let dominant = acc
                .by_mechanism
                .iter()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .map(|(m, _)| *m)
                .expect("non-empty");
            let net_name = netlist.nets[net].name.clone();
            let is_stuck_open =
                moved.len() == 1 && netlist.mosfets.iter().any(|m| m.name == moved[0].0);
            let (class, effect, detail) = if is_stuck_open {
                let (elem, term) = moved[0].clone();
                let letter = match term {
                    0 => 'd',
                    1 => 'g',
                    2 => 's',
                    _ => '?',
                };
                (
                    LiftFaultClass::StuckOpen,
                    FaultEffect::OpenTerminal {
                        element: elem.clone(),
                        terminal: term,
                    },
                    format!("{elem}.{letter}"),
                )
            } else {
                (
                    LiftFaultClass::LineOpen,
                    FaultEffect::SplitNode {
                        node: net_name.clone(),
                        move_terminals: acc.moved.clone(),
                    },
                    net_name.clone(),
                )
            };
            let name = dominant.id();
            let mut fault = make_fault(
                *next_id,
                class,
                true,
                dominant,
                &name,
                acc.probability,
                &detail,
                effect,
            );
            if acc.ports_on_both_sides {
                fault.fault.label.push_str(" (port-side approximated)");
            }
            *next_id += 1;
            out.push(fault);
        }
    }
}

/// Folds a removal's partition into the per-effect accumulator.
fn record_candidate(
    parts: &[Vec<Attachment>],
    p: f64,
    mechanism: Mechanism,
    options: &LiftOptions,
    accum: &mut HashMap<Vec<(String, usize)>, OpenAccum>,
) {
    if parts.len() < 2 {
        return; // no electrical effect
    }
    // Decide which group moves to the new node: keep the group anchored
    // by a port (testbench side); with ports on both or no sides, keep
    // the larger group.
    let is_anchored = |g: &[Attachment]| {
        g.iter().any(|a| match a {
            Attachment::Port(name) => options.ports.iter().any(|p| p.eq_ignore_ascii_case(name)),
            _ => false,
        })
    };
    let anchored: Vec<bool> = parts.iter().map(|g| is_anchored(g)).collect();
    let n_anchored = anchored.iter().filter(|&&x| x).count();
    let ports_on_both_sides = n_anchored > 1;

    // Pick the group to move: a non-anchored one, smallest terminal
    // count; fall back to the smallest group.
    let mut candidates: Vec<usize> = (0..parts.len()).filter(|&i| !anchored[i]).collect();
    if candidates.is_empty() {
        candidates = (0..parts.len()).collect();
    }
    let moved_idx = *candidates
        .iter()
        .min_by_key(|&&i| parts[i].len())
        .expect("at least one group");
    let moved: Vec<(String, usize)> = parts[moved_idx]
        .iter()
        .filter_map(|a| match a {
            Attachment::Terminal(e, t) => Some((e.clone(), *t)),
            Attachment::Port(_) => None,
        })
        .collect();
    if moved.is_empty() {
        return; // only a port would move: not representable, and the
                // dangling port carries no device -> unobservable
    }
    let e = accum.entry(moved.clone()).or_insert_with(|| OpenAccum {
        probability: 0.0,
        by_mechanism: HashMap::new(),
        moved,
        ports_on_both_sides: false,
    });
    e.probability += p;
    *e.by_mechanism.entry(mechanism).or_insert(0.0) += p;
    e.ports_on_both_sides |= ports_on_both_sides;
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract::{connectivity::extract, ExtractOptions};
    use geom::Point;
    use layout::{CellBuilder, Library, MosParams, MosStyle};

    fn run_opens(cell: layout::Cell) -> Vec<LiftFault> {
        let t = Technology::generic_1um();
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        let flat = lib.flatten(&name).unwrap();
        let netlist = extract(&flat, &t, &ExtractOptions::default()).unwrap();
        let mut out = Vec::new();
        let mut id = 1;
        extract_opens(&netlist, &t, &LiftOptions::default(), &mut out, &mut id);
        out
    }

    #[test]
    fn isolated_wire_produces_no_open_faults() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("w", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(30_000, 0)],
            1_500,
        );
        let faults = run_opens(b.finish());
        assert!(faults.is_empty(), "{faults:?}");
    }

    #[test]
    fn gate_contact_open_isolates_gate() {
        // A MOSFET with its gate wired through a contact to metal1 with
        // a port on the far end: opening the poly route or the contact
        // isolates M1's gate -> stuck-open.
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("m", &t);
        let g = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let stub = g.gate_stub.center();
        let contact_at = Point::new(stub.x, stub.y - 4_000);
        b.min_wire(Layer::Poly, &[stub, contact_at]);
        b.contact(contact_at, Layer::Poly);
        b.wire(
            Layer::Metal1,
            &[contact_at, Point::new(30_000, contact_at.y)],
            1_500,
        );
        b.label(Layer::Metal1, Point::new(29_000, contact_at.y), "vin");
        let faults = run_opens(b.finish());
        let stuck: Vec<_> = faults
            .iter()
            .filter(|f| f.class == LiftFaultClass::StuckOpen)
            .collect();
        assert!(!stuck.is_empty(), "{faults:?}");
        assert!(
            stuck[0].fault.label.contains("M1.g"),
            "{}",
            stuck[0].fault.label
        );
        // The contact-open mechanism contributes: dominant mechanism is
        // poly open or the m1/poly contact, both acceptable dominants;
        // ensure at least one candidate carried the contact mechanism.
        assert!(stuck[0].probability > 0.0);
    }

    #[test]
    fn shared_net_open_splits_two_gates() {
        // Two MOS gates fed from one metal1 wire through two contacts;
        // opening the wire between the contacts separates the gates.
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("m2", &t);
        let g1 = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let g2 = b.mosfet(
            Point::new(40_000, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let c1 = Point::new(g1.gate_stub.center().x, g1.gate_stub.center().y - 4_000);
        let c2 = Point::new(g2.gate_stub.center().x, g2.gate_stub.center().y - 4_000);
        b.min_wire(Layer::Poly, &[g1.gate_stub.center(), c1]);
        b.min_wire(Layer::Poly, &[g2.gate_stub.center(), c2]);
        b.contact(c1, Layer::Poly);
        b.contact(c2, Layer::Poly);
        b.wire(Layer::Metal1, &[c1, c2], 1_500);
        b.label(Layer::Metal1, Point::new((c1.x + c2.x) / 2, c1.y), "vin");
        let faults = run_opens(b.finish());
        // Expect at least one stuck-open per transistor (contact/poly
        // opens isolating one gate each). A split that leaves the port
        // with one gate and isolates the other is a stuck-open of that
        // gate; splitting between the port and both gates would be a
        // line open.
        let labels: Vec<&str> = faults.iter().map(|f| f.fault.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("M1.g")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("M2.g")), "{labels:?}");
    }

    #[test]
    fn open_probabilities_scale_with_density() {
        let t = Technology::generic_1um();
        let build = || {
            let mut b = CellBuilder::new("m", &t);
            let g = b.mosfet(
                Point::new(0, 0),
                &MosParams {
                    w: 4_000,
                    l: 1_000,
                    style: MosStyle::Nmos,
                },
            );
            let stub = g.gate_stub.center();
            let contact_at = Point::new(stub.x, stub.y - 4_000);
            b.min_wire(Layer::Poly, &[stub, contact_at]);
            b.contact(contact_at, Layer::Poly);
            b.wire(
                Layer::Metal1,
                &[contact_at, Point::new(30_000, contact_at.y)],
                1_500,
            );
            b.label(Layer::Metal1, Point::new(29_000, contact_at.y), "vin");
            let cell = b.finish();
            let mut lib = Library::new("t");
            lib.add_cell(cell);
            lib.flatten("m").unwrap()
        };
        let netlist = extract(&build(), &t, &ExtractOptions::default()).unwrap();

        let run_with = |options: &LiftOptions| {
            let mut out = Vec::new();
            let mut id = 1;
            extract_opens(&netlist, &t, options, &mut out, &mut id);
            out.iter().map(|f| f.probability).sum::<f64>()
        };
        let base = run_with(&LiftOptions::default());
        let mut doubled = LiftOptions::default();
        for (m, d) in defect::MechanismTable::paper_defaults().entries() {
            if m.class() == defect::FailureClass::Open {
                doubled.mechanisms.set(*m, d * 2.0);
            }
        }
        let double = run_with(&doubled);
        assert!(
            (double / base - 2.0).abs() < 1e-9,
            "ratio {}",
            double / base
        );
    }
}
