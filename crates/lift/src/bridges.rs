//! Bridging-fault extraction.
//!
//! For every conductor layer carrying a short mechanism, every pair of
//! different-net shapes within the maximum defect diameter contributes
//! critical area. Contributions accumulate per net pair; the dominant
//! mechanism names the fault (`metal1_short`, `poly_short`, …), with
//! the special case of a source/drain bridge across a channel named
//! `n_ds_short`/`p_ds_short` as in the paper's Fig. 4.

use crate::{make_fault, LiftFault, LiftFaultClass, LiftOptions};
use anafault::FaultEffect;
use defect::{weighted_bridge_area, Mechanism};
use extract::{ExtractedNetlist, NetId, Polarity};
use geom::{edge_separation, GridIndex};
use layout::Layer;
use std::collections::HashMap;

/// Accumulated bridge candidate between two nets.
struct BridgeAccum {
    /// Total probability over all shape pairs and mechanisms.
    probability: f64,
    /// Per-mechanism contribution, to pick the dominant one.
    by_mechanism: HashMap<Mechanism, f64>,
}

pub(crate) fn extract_bridges(
    netlist: &ExtractedNetlist,
    options: &LiftOptions,
    out: &mut Vec<LiftFault>,
    next_id: &mut usize,
) {
    let x_max = options.size_dist.x_max() as i64;
    let mut accum: HashMap<(NetId, NetId), BridgeAccum> = HashMap::new();

    for layer in Layer::CONDUCTORS {
        let mechanism = Mechanism::Bridge(layer);
        let density = options.mechanisms.absolute_density(mechanism);
        if density <= 0.0 {
            continue;
        }
        // Gather all rects on this layer with their nets.
        let mut rects = Vec::new();
        for f in &netlist.fragments {
            if f.layer != layer {
                continue;
            }
            for r in f.region.rects() {
                rects.push((*r, f.net));
            }
        }
        let mut index = GridIndex::new(x_max.max(1));
        for (i, (r, _)) in rects.iter().enumerate() {
            index.insert(i, *r);
        }
        // Pairwise within reach.
        for (i, (ri, net_i)) in rects.iter().enumerate() {
            let window = ri.expanded(x_max);
            for (j, rj) in index.query_entries(&window) {
                if j <= i {
                    continue;
                }
                let net_j = rects[j].1;
                if net_j == *net_i {
                    continue;
                }
                let sep = edge_separation(ri, &rj);
                if sep.spacing as f64 >= options.size_dist.x_max() {
                    continue;
                }
                let area = weighted_bridge_area(
                    sep.parallel_length as f64,
                    sep.spacing as f64,
                    &options.size_dist,
                );
                if area <= 0.0 {
                    continue;
                }
                let p = density * area;
                let key = (net_i.min(&net_j).to_owned(), *net_i.max(&net_j));
                let e = accum.entry(key).or_insert_with(|| BridgeAccum {
                    probability: 0.0,
                    by_mechanism: HashMap::new(),
                });
                e.probability += p;
                *e.by_mechanism.entry(mechanism).or_insert(0.0) += p;
            }
        }
    }

    // Emit one fault per net pair, deterministically ordered.
    let mut pairs: Vec<((NetId, NetId), BridgeAccum)> = accum.into_iter().collect();
    pairs.sort_by_key(|(k, _)| *k);
    for ((a, b), acc) in pairs {
        let dominant = acc
            .by_mechanism
            .iter()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .map(|(m, _)| *m)
            .expect("at least one mechanism contributed");
        let (name, local) = classify_bridge(netlist, a, b, dominant);
        let mut na = netlist.nets[a].name.clone();
        let mut nb = netlist.nets[b].name.clone();
        // Present node pairs in natural order (numeric nets first, by
        // value) — matching the paper's `1->5` style labels.
        if natural_cmp(&na, &nb) == core::cmp::Ordering::Greater {
            core::mem::swap(&mut na, &mut nb);
        }
        let fault = make_fault(
            *next_id,
            LiftFaultClass::Bridge,
            local,
            dominant,
            &name,
            acc.probability,
            &format!("{na}->{nb}"),
            FaultEffect::Short { a: na, b: nb },
        );
        *next_id += 1;
        out.push(fault);
    }
}

/// Numeric-aware name ordering: `"1" < "5" < "11" < "ctrl"`.
fn natural_cmp(a: &str, b: &str) -> core::cmp::Ordering {
    match (a.parse::<u64>(), b.parse::<u64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y),
        (Ok(_), Err(_)) => core::cmp::Ordering::Less,
        (Err(_), Ok(_)) => core::cmp::Ordering::Greater,
        (Err(_), Err(_)) => a.cmp(b),
    }
}

/// Names the bridge and decides local (device-internal) vs global.
fn classify_bridge(
    netlist: &ExtractedNetlist,
    a: NetId,
    b: NetId,
    dominant: Mechanism,
) -> (String, bool) {
    // Drain-source bridge of one transistor: the paper's `n_ds_short`.
    for m in &netlist.mosfets {
        let sd = [m.source, m.drain];
        if sd.contains(&a) && sd.contains(&b) && a != b {
            let prefix = match m.polarity {
                Polarity::Nmos => "n",
                Polarity::Pmos => "p",
            };
            return (format!("{prefix}_ds_short"), true);
        }
        // Other same-device terminal pairs are local too (g-d, g-s).
        let all = [m.gate, m.source, m.drain];
        if all.contains(&a) && all.contains(&b) {
            return (dominant.id(), true);
        }
    }
    for c in &netlist.capacitors {
        let t = [c.bottom, c.top];
        if t.contains(&a) && t.contains(&b) {
            return (dominant.id(), true);
        }
    }
    (dominant.id(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract::{connectivity::extract, ExtractOptions};
    use geom::Point;
    use layout::{CellBuilder, Library, MosParams, MosStyle, Technology};

    fn run_lift(cell: layout::Cell) -> Vec<LiftFault> {
        let t = Technology::generic_1um();
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        let flat = lib.flatten(&name).unwrap();
        let netlist = extract(&flat, &t, &ExtractOptions::default()).unwrap();
        let mut out = Vec::new();
        let mut id = 1;
        extract_bridges(&netlist, &LiftOptions::default(), &mut out, &mut id);
        out
    }

    #[test]
    fn adjacent_wires_bridge_distant_do_not() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("w", &t);
        // Two wires 1.5 µm apart (bridgeable), a third 50 µm away
        // (beyond x_max = 20 µm).
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(30_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 3_000), Point::new(30_000, 3_000)],
            1_500,
        );
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 60_000), Point::new(30_000, 60_000)],
            1_500,
        );
        let faults = run_lift(b.finish());
        assert_eq!(faults.len(), 1, "{faults:?}");
        assert_eq!(faults[0].class, LiftFaultClass::Bridge);
        assert!(!faults[0].local);
        assert!(faults[0].fault.label.contains("metal1_short"));
        assert!(faults[0].probability > 0.0);
    }

    #[test]
    fn closer_pair_ranks_higher() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("w", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(30_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 3_000), Point::new(30_000, 3_000)],
            1_500,
        );
        // Third wire, farther from the middle one.
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 12_000), Point::new(30_000, 12_000)],
            1_500,
        );
        let faults = run_lift(b.finish());
        // near pair (0,1), far pairs (1,2) and maybe (0,2).
        let p_near = faults
            .iter()
            .find(|f| f.fault.label.contains("n0->n1"))
            .unwrap()
            .probability;
        let p_far = faults
            .iter()
            .find(|f| f.fault.label.contains("n1->n2"))
            .unwrap()
            .probability;
        assert!(p_near > p_far * 3.0, "near {p_near} far {p_far}");
    }

    #[test]
    fn ds_short_is_named_and_local() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("m", &t);
        b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let faults = run_lift(b.finish());
        let ds = faults
            .iter()
            .find(|f| f.fault.label.contains("n_ds_short"))
            .expect("drain-source bridge extracted");
        assert!(ds.local);
        // The 1 µm channel gap makes this the most likely bridge.
        let max_p = faults.iter().map(|f| f.probability).fold(0.0f64, f64::max);
        assert_eq!(ds.probability, max_p);
    }

    #[test]
    fn pmos_ds_short_prefix() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("m", &t);
        b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Pmos,
            },
        );
        let faults = run_lift(b.finish());
        assert!(faults.iter().any(|f| f.fault.label.contains("p_ds_short")));
    }

    #[test]
    fn metal2_bridges_use_their_own_density() {
        let t = Technology::generic_1um();
        let build = |layer| {
            let mut b = CellBuilder::new("w", &t);
            b.wire(layer, &[Point::new(0, 0), Point::new(30_000, 0)], 1_500);
            b.wire(
                layer,
                &[Point::new(0, 3_000), Point::new(30_000, 3_000)],
                1_500,
            );
            run_lift(b.finish())
        };
        let m1 = build(Layer::Metal1);
        let m2 = build(Layer::Metal2);
        // Same geometry; metal2's relative density is 1.5× metal1's.
        let ratio = m2[0].probability / m1[0].probability;
        assert!((ratio - 1.5).abs() < 1e-9, "ratio {ratio}");
        assert!(m2[0].fault.label.contains("metal2_short"));
    }
}
