//! Parameterised layout generators (PCells).
//!
//! [`CellBuilder`] wraps a [`Cell`] plus a [`Technology`] and provides
//! the primitives needed to assemble full-custom analogue layout:
//! axis-aligned wires with corner joining, contact/via stacks, and a
//! single-finger MOSFET generator that reports its terminal landing
//! pads so callers can route to them.

use crate::cell::Cell;
use crate::layer::Layer;
use crate::tech::Technology;
use geom::{Coord, Point, Rect};

/// Device polarity for the MOSFET generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosStyle {
    /// N-channel device (active in substrate).
    Nmos,
    /// P-channel device (active inside an n-well the generator draws).
    Pmos,
}

/// Parameters of a single-finger MOSFET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MosParams {
    /// Channel width in nm (the active height; the gate runs vertically).
    pub w: Coord,
    /// Channel length in nm (the poly width).
    pub l: Coord,
    /// Polarity.
    pub style: MosStyle,
}

/// The geometry a placed MOSFET exposes for routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MosGeometry {
    /// The channel rectangle (poly ∩ active).
    pub channel: Rect,
    /// Poly gate landing point (bottom gate stub end).
    pub gate_stub: Rect,
    /// Metal1 pad over the source contact (left side).
    pub source_pad: Rect,
    /// Metal1 pad over the drain contact (right side).
    pub drain_pad: Rect,
    /// Full active rectangle.
    pub active: Rect,
}

/// Builder over a [`Cell`] with technology-aware helpers.
///
/// ```
/// use layout::{CellBuilder, Layer, Technology};
/// use geom::Point;
///
/// let tech = Technology::generic_1um();
/// let mut b = CellBuilder::new("demo", &tech);
/// b.wire(Layer::Metal1, &[Point::new(0, 0), Point::new(10_000, 0), Point::new(10_000, 5_000)], 1_500);
/// let cell = b.finish();
/// assert_eq!(cell.shapes(Layer::Metal1).len(), 2);
/// ```
#[derive(Debug)]
pub struct CellBuilder<'t> {
    cell: Cell,
    tech: &'t Technology,
}

impl<'t> CellBuilder<'t> {
    /// Starts building a cell named `name` in technology `tech`.
    pub fn new(name: impl Into<String>, tech: &'t Technology) -> Self {
        CellBuilder {
            cell: Cell::new(name),
            tech,
        }
    }

    /// The technology in use.
    pub fn tech(&self) -> &Technology {
        self.tech
    }

    /// Mutable access to the underlying cell for operations the builder
    /// does not wrap.
    pub fn cell_mut(&mut self) -> &mut Cell {
        &mut self.cell
    }

    /// Finishes and returns the built cell.
    pub fn finish(self) -> Cell {
        self.cell
    }

    /// Adds a raw rectangle.
    pub fn rect(&mut self, layer: Layer, r: Rect) -> &mut Self {
        self.cell.add_rect(layer, r);
        self
    }

    /// Adds a net/pin label.
    pub fn label(&mut self, layer: Layer, at: Point, text: impl Into<String>) -> &mut Self {
        self.cell.add_label(layer, at, text);
        self
    }

    /// Draws an axis-aligned wire through `points` with the given width.
    /// Corners are joined by extending each segment by half the width.
    ///
    /// # Panics
    /// Panics if consecutive points form a diagonal segment or fewer
    /// than two points are given.
    pub fn wire(&mut self, layer: Layer, points: &[Point], width: Coord) -> &mut Self {
        assert!(points.len() >= 2, "wire needs at least two points");
        let hw = width / 2;
        for seg in points.windows(2) {
            let (a, b) = (seg[0], seg[1]);
            assert!(
                a.x == b.x || a.y == b.y,
                "wire segment {a} -> {b} must be axis-aligned"
            );
            let r = if a.y == b.y {
                // Horizontal: extend by half-width to join corners.
                Rect::new(a.x.min(b.x) - hw, a.y - hw, a.x.max(b.x) + hw, a.y + hw)
            } else {
                Rect::new(a.x - hw, a.y.min(b.y) - hw, a.x + hw, a.y.max(b.y) + hw)
            };
            self.cell.add_rect(layer, r);
        }
        self
    }

    /// Draws a minimum-width wire on `layer`.
    pub fn min_wire(&mut self, layer: Layer, points: &[Point]) -> &mut Self {
        let width = self.tech.rules(layer).min_width;
        self.wire(layer, points, width)
    }

    /// Places a contact stack at `at` joining Metal1 down to `lower`
    /// (Poly or Active): cut + metal pad + lower-layer pad.
    ///
    /// # Panics
    /// Panics if `lower` is not Poly or Active.
    pub fn contact(&mut self, at: Point, lower: Layer) -> &mut Self {
        assert!(
            matches!(lower, Layer::Poly | Layer::Active),
            "contact lands on poly or active, not {lower}"
        );
        let cs = self.tech.cut_size();
        let sur = self.tech.cut_surround();
        let cut = Rect::new(at.x - cs / 2, at.y - cs / 2, at.x + cs / 2, at.y + cs / 2);
        self.cell.add_rect(Layer::Contact, cut);
        self.cell.add_rect(Layer::Metal1, cut.expanded(sur));
        self.cell.add_rect(lower, cut.expanded(sur));
        self
    }

    /// Places a via stack at `at` joining Metal1 and Metal2.
    pub fn via(&mut self, at: Point) -> &mut Self {
        let cs = self.tech.cut_size();
        let sur = self.tech.cut_surround();
        let cut = Rect::new(at.x - cs / 2, at.y - cs / 2, at.x + cs / 2, at.y + cs / 2);
        self.cell.add_rect(Layer::Via1, cut);
        self.cell.add_rect(Layer::Metal1, cut.expanded(sur));
        self.cell.add_rect(Layer::Metal2, cut.expanded(sur));
        self
    }

    /// Places a single-finger MOSFET whose channel centre sits at `at`.
    /// The gate poly runs vertically; source is the left diffusion,
    /// drain the right. Returns the landing geometry for routing.
    ///
    /// Source/drain connections use **doubled contacts** (two cuts side
    /// by side under one pad) — the standard defect-tolerance practice
    /// that keeps a single spot defect from opening a terminal.
    pub fn mosfet(&mut self, at: Point, params: &MosParams) -> MosGeometry {
        let t = self.tech;
        let (w, l) = (params.w, params.l);
        let half_l = l / 2;
        let half_w = w / 2;
        // Room for two contacts in a row plus surrounds:
        // 1λ gap + cut + 1λ + cut + 1λ overlap.
        let cs = t.cut_size();
        let sur = t.cut_surround();
        let sd = 3 * sur + 2 * cs;
        let gext = t.gate_extension();

        let channel = Rect::new(at.x - half_l, at.y - half_w, at.x + half_l, at.y + half_w);
        let active = Rect::new(
            at.x - half_l - sd,
            at.y - half_w,
            at.x + half_l + sd,
            at.y + half_w,
        );
        let poly = Rect::new(
            at.x - half_l,
            at.y - half_w - gext,
            at.x + half_l,
            at.y + half_w + gext,
        );
        self.cell.add_rect(Layer::Active, active);
        self.cell.add_rect(Layer::Poly, poly);

        // Doubled source/drain contacts in the diffusion extensions.
        let cut_at = |cx: Coord| Rect::new(cx - cs / 2, at.y - cs / 2, cx + cs / 2, at.y + cs / 2);
        let s_cx1 = at.x - half_l - sur - cs / 2;
        let s_cx2 = s_cx1 - cs - sur;
        let d_cx1 = at.x + half_l + sur + cs / 2;
        let d_cx2 = d_cx1 + cs + sur;
        for cx in [s_cx1, s_cx2, d_cx1, d_cx2] {
            self.cell.add_rect(Layer::Contact, cut_at(cx));
        }
        let s_pad = cut_at(s_cx1).bounding_union(&cut_at(s_cx2)).expanded(sur);
        let d_pad = cut_at(d_cx1).bounding_union(&cut_at(d_cx2)).expanded(sur);
        self.cell.add_rect(Layer::Metal1, s_pad);
        self.cell.add_rect(Layer::Metal1, d_pad);

        if params.style == MosStyle::Pmos {
            self.cell
                .add_rect(Layer::Nwell, active.expanded(t.nwell_surround()));
        }

        // Gate stub: the lower poly extension, where routing attaches.
        let gate_stub = Rect::new(
            at.x - half_l,
            at.y - half_w - gext,
            at.x + half_l,
            at.y - half_w,
        );

        MosGeometry {
            channel,
            gate_stub,
            source_pad: s_pad,
            drain_pad: d_pad,
            active,
        }
    }

    /// Draws a metal1/metal2 parallel-plate capacitor with its bottom
    /// plate on Metal1 and top plate on Metal2; returns
    /// `(bottom_pad, top_pad)` Metal1/Metal2 landing rectangles.
    /// The top-plate connection comes out on Metal2.
    pub fn plate_capacitor(&mut self, ll: Point, size: Coord) -> (Rect, Rect) {
        let bottom = Rect::new(ll.x, ll.y, ll.x + size, ll.y + size);
        // Top plate inset so the bottom plate rim stays contactable.
        let inset = self.tech.rules(Layer::Metal2).min_spacing;
        let top = bottom.expanded(-inset);
        self.cell.add_rect(Layer::Metal1, bottom);
        self.cell.add_rect(Layer::Metal2, top);
        (bottom, top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::generic_1um()
    }

    #[test]
    fn wire_joins_corners() {
        let t = tech();
        let mut b = CellBuilder::new("w", &t);
        b.wire(
            Layer::Metal1,
            &[
                Point::new(0, 0),
                Point::new(10_000, 0),
                Point::new(10_000, 8_000),
            ],
            1_000,
        );
        let cell = b.finish();
        let rs = cell.shapes(Layer::Metal1);
        assert_eq!(rs.len(), 2);
        // The two segments overlap at the corner.
        assert!(rs[0].overlaps(&rs[1]) || rs[0].touches(&rs[1]));
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn diagonal_wire_panics() {
        let t = tech();
        let mut b = CellBuilder::new("w", &t);
        b.wire(Layer::Metal1, &[Point::new(0, 0), Point::new(10, 10)], 100);
    }

    #[test]
    fn contact_stack_layers() {
        let t = tech();
        let mut b = CellBuilder::new("c", &t);
        b.contact(Point::new(0, 0), Layer::Poly);
        let cell = b.finish();
        assert_eq!(cell.shapes(Layer::Contact).len(), 1);
        assert_eq!(cell.shapes(Layer::Metal1).len(), 1);
        assert_eq!(cell.shapes(Layer::Poly).len(), 1);
        // Pad covers the cut with surround.
        let cut = cell.shapes(Layer::Contact)[0];
        let pad = cell.shapes(Layer::Metal1)[0];
        assert!(pad.contains_rect(&cut));
        assert_eq!(pad.width() - cut.width(), 2 * t.cut_surround());
    }

    #[test]
    fn nmos_geometry_is_consistent() {
        let t = tech();
        let mut b = CellBuilder::new("m", &t);
        let g = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let cell = b.finish();
        // Channel is the poly/active overlap.
        let poly = cell.shapes(Layer::Poly)[0];
        let active = cell.shapes(Layer::Active)[0];
        assert_eq!(poly.intersection(&active), Some(g.channel));
        assert_eq!(g.channel.width(), 1_000); // L
        assert_eq!(g.channel.height(), 4_000); // W
                                               // Source pad left of drain pad, both inside active + surround.
        assert!(g.source_pad.x1() < g.drain_pad.x0());
        // No well for NMOS.
        assert!(cell.shapes(Layer::Nwell).is_empty());
    }

    #[test]
    fn pmos_draws_nwell() {
        let t = tech();
        let mut b = CellBuilder::new("m", &t);
        let g = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 6_000,
                l: 1_000,
                style: MosStyle::Pmos,
            },
        );
        let cell = b.finish();
        let well = cell.shapes(Layer::Nwell)[0];
        assert!(well.contains_rect(&g.active));
    }

    #[test]
    fn capacitor_plates_nest() {
        let t = tech();
        let mut b = CellBuilder::new("cap", &t);
        let (bottom, top) = b.plate_capacitor(Point::new(0, 0), 20_000);
        assert!(bottom.contains_rect(&top));
        let cell = b.finish();
        assert_eq!(cell.shapes(Layer::Metal1).len(), 1);
        assert_eq!(cell.shapes(Layer::Metal2).len(), 1);
    }
}
