//! Design-rule checking.
//!
//! Minimum width and spacing are exactly the quantities that set
//! critical areas, so a layout that violates them silently corrupts the
//! probability ranking. The VCO generator's output is DRC-checked in
//! the integration tests; user layouts can be checked the same way.

use crate::cell::FlatLayout;
use crate::layer::Layer;
use crate::tech::Technology;
use geom::{edge_separation, Coord, GridIndex, Rect, Region};

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrcViolation {
    /// Layer the violation is on.
    pub layer: Layer,
    /// Which rule failed.
    pub rule: DrcRule,
    /// Where (a representative rectangle).
    pub at: Rect,
    /// The measured value (nm).
    pub measured: Coord,
    /// The rule's limit (nm).
    pub limit: Coord,
}

/// The checked rule classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrcRule {
    /// Drawn feature narrower than the layer's minimum width.
    MinWidth,
    /// Two disjoint shapes closer than the layer's minimum spacing.
    MinSpacing,
}

impl core::fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let rule = match self.rule {
            DrcRule::MinWidth => "min-width",
            DrcRule::MinSpacing => "min-spacing",
        };
        write!(
            f,
            "{} {rule} at {}: {} nm < {} nm",
            self.layer, self.at, self.measured, self.limit
        )
    }
}

/// Checks minimum width and same-layer spacing on every conductor and
/// cut layer. Width is evaluated per canonical rectangle of the merged
/// layer region (a conservative approximation of true polygon width:
/// decomposition slivers at jogs can produce false positives, which the
/// caller may whitelist); spacing between different connected
/// components only (notches inside one component are width features).
pub fn check(flat: &FlatLayout, tech: &Technology) -> Vec<DrcViolation> {
    let mut out = Vec::new();
    for layer in Layer::ALL {
        let rules = tech.rules(layer);
        let region = Region::from_rects(flat.shapes(layer).iter().copied());
        if region.is_empty() {
            continue;
        }
        let components = region.connected_components();

        // Width: the short side of each component's rectangles, skipping
        // decomposition slivers that are flush inside the component
        // (their neighbours make up the width).
        for comp in &components {
            for r in comp.rects() {
                if r.short_side() < rules.min_width {
                    // Tolerate slivers created by rectangle decomposition:
                    // the sliver plus its touching neighbours still spans
                    // the full width. Expand and re-measure.
                    let grown = comp
                        .rects()
                        .iter()
                        .filter(|o| o.touches(r))
                        .fold(*r, |acc, o| acc.bounding_union(o));
                    if grown.short_side() < rules.min_width {
                        out.push(DrcViolation {
                            layer,
                            rule: DrcRule::MinWidth,
                            at: *r,
                            measured: grown.short_side(),
                            limit: rules.min_width,
                        });
                    }
                }
            }
        }

        // Spacing between distinct components.
        let mut index = GridIndex::new(rules.min_spacing.max(1) * 2);
        let mut comp_rects: Vec<(usize, Rect)> = Vec::new();
        for (ci, comp) in components.iter().enumerate() {
            for r in comp.rects() {
                index.insert(comp_rects.len(), *r);
                comp_rects.push((ci, *r));
            }
        }
        let mut seen: std::collections::HashSet<(usize, usize)> = Default::default();
        for (i, (ci, r)) in comp_rects.iter().enumerate() {
            let window = r.expanded(rules.min_spacing);
            for (j, other) in index.query_entries(&window) {
                if j <= i {
                    continue;
                }
                let cj = comp_rects[j].0;
                if cj == *ci {
                    continue;
                }
                let sep = edge_separation(r, &other);
                if sep.spacing > 0 && sep.spacing < rules.min_spacing {
                    let key = (*ci.min(&cj), *ci.max(&cj));
                    if seen.insert(key) {
                        out.push(DrcViolation {
                            layer,
                            rule: DrcRule::MinSpacing,
                            at: r.bounding_union(&other),
                            measured: sep.spacing,
                            limit: rules.min_spacing,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, Library};

    fn flat_of(cell: Cell) -> FlatLayout {
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        lib.flatten(&name).unwrap()
    }

    #[test]
    fn clean_layout_passes() {
        let tech = Technology::generic_1um();
        let mut c = Cell::new("ok");
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10_000, 1_500));
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 3_000, 10_000, 1_500));
        let v = check(&flat_of(c), &tech);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn narrow_wire_flagged() {
        let tech = Technology::generic_1um();
        let mut c = Cell::new("thin");
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10_000, 800));
        let v = check(&flat_of(c), &tech);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, DrcRule::MinWidth);
        assert_eq!(v[0].measured, 800);
    }

    #[test]
    fn close_wires_flagged_once_per_pair() {
        let tech = Technology::generic_1um();
        let mut c = Cell::new("close");
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10_000, 1_500));
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 2_000, 10_000, 1_500)); // 500 nm gap
        let v = check(&flat_of(c), &tech);
        let spacing: Vec<_> = v.iter().filter(|x| x.rule == DrcRule::MinSpacing).collect();
        assert_eq!(spacing.len(), 1);
        assert_eq!(spacing[0].measured, 500);
    }

    #[test]
    fn touching_shapes_are_one_component_no_spacing_check() {
        let tech = Technology::generic_1um();
        let mut c = Cell::new("joined");
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10_000, 1_500));
        c.add_rect(Layer::Metal1, Rect::from_wh(9_000, 0, 10_000, 1_500));
        let v = check(&flat_of(c), &tech);
        assert!(v.iter().all(|x| x.rule != DrcRule::MinSpacing));
    }

    #[test]
    fn decomposition_slivers_tolerated() {
        // An L of two overlapping min-width wires: the canonical
        // decomposition may create a sliver at the joint; it must not be
        // reported because its neighbourhood spans full width.
        let tech = Technology::generic_1um();
        let mut c = Cell::new("l");
        c.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10_000, 1_500));
        c.add_rect(Layer::Metal1, Rect::from_wh(8_500, 0, 1_500, 10_000));
        let v = check(&flat_of(c), &tech);
        assert!(v.iter().all(|x| x.rule != DrcRule::MinWidth), "{v:?}");
    }
}
