//! GDSII stream format reader and writer.
//!
//! A from-scratch implementation of the subset of GDSII needed to
//! exchange flattened-or-hierarchical mask layouts: `BOUNDARY` polygons,
//! `SREF` instances with orthogonal transforms, and `TEXT` labels.
//! Record framing, the excess-64 base-16 8-byte real and big-endian
//! integer encodings follow the Calma GDSII Stream Format manual.
//!
//! ```
//! use layout::{Cell, Layer, Library};
//! use layout::gds;
//! use geom::Rect;
//!
//! let mut lib = Library::new("demo");
//! let mut cell = Cell::new("top");
//! cell.add_rect(Layer::Metal1, Rect::new(0, 0, 1000, 500));
//! lib.add_cell(cell);
//! let bytes = gds::write_library(&lib)?;
//! let back = gds::read_library(&bytes)?;
//! assert_eq!(back.cell("top").unwrap().shapes(Layer::Metal1).len(), 1);
//! # Ok::<(), layout::gds::GdsError>(())
//! ```

use crate::cell::{Cell, Instance, Library, Orientation};
use crate::layer::Layer;
use geom::{Point, Polygon, Vector};

// Record types (record-type byte << 8 | data-type byte).
const HEADER: u16 = 0x0002;
const BGNLIB: u16 = 0x0102;
const LIBNAME: u16 = 0x0206;
const UNITS: u16 = 0x0305;
const ENDLIB: u16 = 0x0400;
const BGNSTR: u16 = 0x0502;
const STRNAME: u16 = 0x0606;
const ENDSTR: u16 = 0x0700;
const BOUNDARY: u16 = 0x0800;
const SREF: u16 = 0x0A00;
const TEXT: u16 = 0x0C00;
const LAYER_REC: u16 = 0x0D02;
const DATATYPE: u16 = 0x0E02;
const XY: u16 = 0x1003;
const ENDEL: u16 = 0x1100;
const SNAME: u16 = 0x1206;
const TEXTTYPE: u16 = 0x1602;
const PRESENTATION: u16 = 0x1701;
const STRING: u16 = 0x1906;
const STRANS: u16 = 0x1A01;
const MAG: u16 = 0x1B05;
const ANGLE: u16 = 0x1C05;

/// Errors produced by the GDSII codec.
#[derive(Debug, Clone, PartialEq)]
pub enum GdsError {
    /// Stream ended in the middle of a record.
    Truncated,
    /// First record was not `HEADER`.
    NotGds,
    /// A record carried an unexpected length or payload.
    Malformed(String),
    /// The stream references a GDS layer number we do not model.
    UnknownLayer(i16),
    /// Structure nesting was inconsistent (e.g. element outside a
    /// structure).
    Structure(String),
    /// A non-orthogonal transform (angle not a multiple of 90°, or
    /// magnification ≠ 1) was encountered.
    UnsupportedTransform(String),
}

impl core::fmt::Display for GdsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GdsError::Truncated => write!(f, "truncated GDSII stream"),
            GdsError::NotGds => write!(f, "stream does not begin with a GDSII HEADER record"),
            GdsError::Malformed(m) => write!(f, "malformed GDSII record: {m}"),
            GdsError::UnknownLayer(n) => write!(f, "unknown GDS layer number {n}"),
            GdsError::Structure(m) => write!(f, "inconsistent GDSII structure: {m}"),
            GdsError::UnsupportedTransform(m) => write!(f, "unsupported transform: {m}"),
        }
    }
}

impl std::error::Error for GdsError {}

// ---------------------------------------------------------------------
// 8-byte GDS real (excess-64, base-16)
// ---------------------------------------------------------------------

/// Encodes an `f64` as the GDSII 8-byte real.
fn encode_real8(value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let sign: u8 = if value < 0.0 { 0x80 } else { 0 };
    let mut v = value.abs();
    // Normalise so that mantissa ∈ [1/16, 1).
    let mut exp: i32 = 64;
    while v >= 1.0 {
        v /= 16.0;
        exp += 1;
    }
    while v < 1.0 / 16.0 {
        v *= 16.0;
        exp -= 1;
    }
    let mantissa = (v * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (exp as u8 & 0x7F);
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    out
}

/// Decodes the GDSII 8-byte real.
fn decode_real8(b: &[u8]) -> f64 {
    let sign = if b[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = (b[0] & 0x7F) as i32 - 64;
    let mut mant_bytes = [0u8; 8];
    mant_bytes[1..8].copy_from_slice(&b[1..8]);
    let mantissa = u64::from_be_bytes(mant_bytes) as f64 / 2f64.powi(56);
    sign * mantissa * 16f64.powi(exp)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn record(&mut self, tag: u16, payload: &[u8]) {
        let len = 4 + payload.len();
        assert!(len <= u16::MAX as usize, "GDS record too long");
        assert!(
            payload.len().is_multiple_of(2),
            "GDS payload must be even-sized"
        );
        self.out.extend_from_slice(&(len as u16).to_be_bytes());
        self.out.extend_from_slice(&tag.to_be_bytes());
        self.out.extend_from_slice(payload);
    }

    fn int16s(&mut self, tag: u16, values: &[i16]) {
        let mut p = Vec::with_capacity(values.len() * 2);
        for v in values {
            p.extend_from_slice(&v.to_be_bytes());
        }
        self.record(tag, &p);
    }

    fn int32s(&mut self, tag: u16, values: &[i32]) {
        let mut p = Vec::with_capacity(values.len() * 4);
        for v in values {
            p.extend_from_slice(&v.to_be_bytes());
        }
        self.record(tag, &p);
    }

    fn ascii(&mut self, tag: u16, s: &str) {
        let mut p = s.as_bytes().to_vec();
        if p.len() % 2 == 1 {
            p.push(0);
        }
        self.record(tag, &p);
    }

    fn real8s(&mut self, tag: u16, values: &[f64]) {
        let mut p = Vec::with_capacity(values.len() * 8);
        for v in values {
            p.extend_from_slice(&encode_real8(*v));
        }
        self.record(tag, &p);
    }
}

fn orientation_to_strans(o: Orientation) -> (bool, f64) {
    match o {
        Orientation::R0 => (false, 0.0),
        Orientation::R90 => (false, 90.0),
        Orientation::R180 => (false, 180.0),
        Orientation::R270 => (false, 270.0),
        Orientation::MX => (true, 0.0),
        Orientation::MX90 => (true, 90.0),
        Orientation::MX180 => (true, 180.0),
        Orientation::MX270 => (true, 270.0),
    }
}

fn strans_to_orientation(mirror: bool, angle: f64) -> Result<Orientation, GdsError> {
    let quarter = (angle / 90.0).round();
    if (angle - quarter * 90.0).abs() > 1e-6 {
        return Err(GdsError::UnsupportedTransform(format!(
            "angle {angle} is not a multiple of 90°"
        )));
    }
    let q = quarter.rem_euclid(4.0) as u8;
    Ok(match (mirror, q) {
        (false, 0) => Orientation::R0,
        (false, 1) => Orientation::R90,
        (false, 2) => Orientation::R180,
        (false, 3) => Orientation::R270,
        (true, 0) => Orientation::MX,
        (true, 1) => Orientation::MX90,
        (true, 2) => Orientation::MX180,
        (true, 3) => Orientation::MX270,
        _ => unreachable!(),
    })
}

/// Serialises a [`Library`] to GDSII bytes.
///
/// Units are 1 nm database units, 1 µm user units — the convention of the
/// whole workspace.
///
/// # Errors
/// Currently infallible in practice; the `Result` covers future
/// validation (e.g. record-length overflow surfaces as a panic today).
pub fn write_library(lib: &Library) -> Result<Vec<u8>, GdsError> {
    let mut w = Writer { out: Vec::new() };
    let ts = [1995i16, 3, 6, 0, 0, 0, 1995, 3, 6, 0, 0, 0];
    w.int16s(HEADER, &[600]);
    w.int16s(BGNLIB, &ts);
    w.ascii(LIBNAME, lib.name());
    // user units per db unit (µm per nm), metres per db unit.
    w.real8s(UNITS, &[1e-3, 1e-9]);
    for cell in lib.cells() {
        w.int16s(BGNSTR, &ts);
        w.ascii(STRNAME, cell.name());
        for layer in cell.used_layers() {
            for r in cell.shapes(layer) {
                w.record(BOUNDARY, &[]);
                w.int16s(LAYER_REC, &[layer.gds_number()]);
                w.int16s(DATATYPE, &[0]);
                let pts = [
                    (r.x0(), r.y0()),
                    (r.x1(), r.y0()),
                    (r.x1(), r.y1()),
                    (r.x0(), r.y1()),
                    (r.x0(), r.y0()),
                ];
                let xy: Vec<i32> = pts
                    .iter()
                    .flat_map(|&(x, y)| [x as i32, y as i32])
                    .collect();
                w.int32s(XY, &xy);
                w.record(ENDEL, &[]);
            }
        }
        for label in cell.labels() {
            w.record(TEXT, &[]);
            w.int16s(LAYER_REC, &[label.layer.gds_number()]);
            w.int16s(TEXTTYPE, &[0]);
            w.int32s(XY, &[label.at.x as i32, label.at.y as i32]);
            w.ascii(STRING, &label.text);
            w.record(ENDEL, &[]);
        }
        for inst in cell.instances() {
            w.record(SREF, &[]);
            w.ascii(SNAME, &inst.cell);
            let (mirror, angle) = orientation_to_strans(inst.orientation);
            if mirror || angle != 0.0 {
                let bits: u16 = if mirror { 0x8000 } else { 0 };
                w.record(STRANS, &bits.to_be_bytes());
                if angle != 0.0 {
                    w.real8s(ANGLE, &[angle]);
                }
            }
            w.int32s(XY, &[inst.at.dx as i32, inst.at.dy as i32]);
            w.record(ENDEL, &[]);
        }
        w.record(ENDSTR, &[]);
    }
    w.record(ENDLIB, &[]);
    Ok(w.out)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

struct Record<'a> {
    tag: u16,
    payload: &'a [u8],
}

impl<'a> Reader<'a> {
    fn next(&mut self) -> Result<Record<'a>, GdsError> {
        if self.pos + 4 > self.buf.len() {
            return Err(GdsError::Truncated);
        }
        let len = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]) as usize;
        if len < 4 || self.pos + len > self.buf.len() {
            return Err(GdsError::Truncated);
        }
        let tag = u16::from_be_bytes([self.buf[self.pos + 2], self.buf[self.pos + 3]]);
        let payload = &self.buf[self.pos + 4..self.pos + len];
        self.pos += len;
        Ok(Record { tag, payload })
    }
}

fn payload_i16(p: &[u8]) -> Result<i16, GdsError> {
    if p.len() < 2 {
        return Err(GdsError::Malformed("expected int16 payload".into()));
    }
    Ok(i16::from_be_bytes([p[0], p[1]]))
}

fn payload_string(p: &[u8]) -> String {
    let end = p.iter().position(|&b| b == 0).unwrap_or(p.len());
    String::from_utf8_lossy(&p[..end]).into_owned()
}

fn payload_points(p: &[u8]) -> Result<Vec<Point>, GdsError> {
    if !p.len().is_multiple_of(8) {
        return Err(GdsError::Malformed("XY payload not 8-byte aligned".into()));
    }
    Ok(p.chunks(8)
        .map(|c| {
            Point::new(
                i32::from_be_bytes([c[0], c[1], c[2], c[3]]) as i64,
                i32::from_be_bytes([c[4], c[5], c[6], c[7]]) as i64,
            )
        })
        .collect())
}

/// Parses GDSII bytes into a [`Library`].
///
/// # Errors
/// Returns a [`GdsError`] for truncated streams, non-GDS input, unknown
/// layer numbers or non-orthogonal instance transforms.
pub fn read_library(bytes: &[u8]) -> Result<Library, GdsError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let first = r.next()?;
    if first.tag != HEADER {
        return Err(GdsError::NotGds);
    }
    let mut lib = Library::new("unnamed");
    let mut current: Option<Cell> = None;

    loop {
        let rec = r.next()?;
        match rec.tag {
            BGNLIB | UNITS => {}
            LIBNAME => lib = Library::new(payload_string(rec.payload)),
            BGNSTR => {
                if current.is_some() {
                    return Err(GdsError::Structure("nested BGNSTR".into()));
                }
                current = Some(Cell::new("unnamed"));
            }
            STRNAME => {
                let c = current
                    .take()
                    .ok_or_else(|| GdsError::Structure("STRNAME outside structure".into()))?;
                // Rebuild with proper name keeping content (content is
                // empty at this point in well-formed streams).
                let mut named = Cell::new(payload_string(rec.payload));
                for layer in c.used_layers() {
                    for rect in c.shapes(layer) {
                        named.add_rect(layer, *rect);
                    }
                }
                current = Some(named);
            }
            ENDSTR => {
                let c = current
                    .take()
                    .ok_or_else(|| GdsError::Structure("ENDSTR outside structure".into()))?;
                lib.add_cell(c);
            }
            BOUNDARY => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| GdsError::Structure("BOUNDARY outside structure".into()))?;
                read_boundary(&mut r, cell)?;
            }
            TEXT => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| GdsError::Structure("TEXT outside structure".into()))?;
                read_text(&mut r, cell)?;
            }
            SREF => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| GdsError::Structure("SREF outside structure".into()))?;
                read_sref(&mut r, cell)?;
            }
            ENDLIB => return Ok(lib),
            _ => {} // skip records we do not model (PATH width etc.)
        }
    }
}

fn read_boundary(r: &mut Reader<'_>, cell: &mut Cell) -> Result<(), GdsError> {
    let mut layer: Option<Layer> = None;
    let mut points: Vec<Point> = Vec::new();
    loop {
        let rec = r.next()?;
        match rec.tag {
            LAYER_REC => {
                let n = payload_i16(rec.payload)?;
                layer = Some(Layer::from_gds_number(n).ok_or(GdsError::UnknownLayer(n))?);
            }
            DATATYPE => {}
            XY => points = payload_points(rec.payload)?,
            ENDEL => break,
            _ => {}
        }
    }
    let layer = layer.ok_or_else(|| GdsError::Malformed("BOUNDARY without LAYER".into()))?;
    let poly = Polygon::new(points)
        .map_err(|e| GdsError::Malformed(format!("bad BOUNDARY outline: {e}")))?;
    cell.add_polygon(layer, &poly);
    Ok(())
}

fn read_text(r: &mut Reader<'_>, cell: &mut Cell) -> Result<(), GdsError> {
    let mut layer: Option<Layer> = None;
    let mut at: Option<Point> = None;
    let mut text = String::new();
    loop {
        let rec = r.next()?;
        match rec.tag {
            LAYER_REC => {
                let n = payload_i16(rec.payload)?;
                layer = Some(Layer::from_gds_number(n).ok_or(GdsError::UnknownLayer(n))?);
            }
            TEXTTYPE | PRESENTATION | STRANS | MAG | ANGLE => {}
            XY => at = payload_points(rec.payload)?.first().copied(),
            STRING => text = payload_string(rec.payload),
            ENDEL => break,
            _ => {}
        }
    }
    let layer = layer.ok_or_else(|| GdsError::Malformed("TEXT without LAYER".into()))?;
    let at = at.ok_or_else(|| GdsError::Malformed("TEXT without XY".into()))?;
    cell.add_label(layer, at, text);
    Ok(())
}

fn read_sref(r: &mut Reader<'_>, cell: &mut Cell) -> Result<(), GdsError> {
    let mut name = String::new();
    let mut at = Vector::new(0, 0);
    let mut mirror = false;
    let mut angle = 0.0f64;
    loop {
        let rec = r.next()?;
        match rec.tag {
            SNAME => name = payload_string(rec.payload),
            STRANS if rec.payload.len() >= 2 => {
                mirror = rec.payload[0] & 0x80 != 0;
            }
            ANGLE if rec.payload.len() >= 8 => {
                angle = decode_real8(&rec.payload[..8]);
            }
            MAG if rec.payload.len() >= 8 => {
                let m = decode_real8(&rec.payload[..8]);
                if (m - 1.0).abs() > 1e-9 {
                    return Err(GdsError::UnsupportedTransform(format!(
                        "magnification {m} ≠ 1"
                    )));
                }
            }
            XY => {
                if let Some(p) = payload_points(rec.payload)?.first() {
                    at = Vector::new(p.x, p.y);
                }
            }
            ENDEL => break,
            _ => {}
        }
    }
    if name.is_empty() {
        return Err(GdsError::Malformed("SREF without SNAME".into()));
    }
    cell.add_instance(Instance {
        cell: name,
        at,
        orientation: strans_to_orientation(mirror, angle)?,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Rect;

    #[test]
    fn real8_round_trip() {
        for v in [0.0, 1.0, -1.0, 1e-3, 1e-9, 90.0, 270.0, 0.6672, 12345.678] {
            let enc = encode_real8(v);
            let dec = decode_real8(&enc);
            let err = (dec - v).abs();
            assert!(
                err <= v.abs() * 1e-12 + 1e-300,
                "round trip {v} -> {dec} (err {err})"
            );
        }
    }

    #[test]
    fn library_round_trip_shapes_labels_instances() {
        let mut lib = Library::new("testlib");
        let mut leaf = Cell::new("leaf");
        leaf.add_rect(Layer::Poly, Rect::new(0, 0, 500, 2_000));
        leaf.add_rect(Layer::Metal1, Rect::new(-100, -100, 400, 300));
        leaf.add_label(Layer::Metal1, Point::new(10, 10), "out");
        lib.add_cell(leaf);
        let mut top = Cell::new("top");
        top.add_instance(Instance {
            cell: "leaf".into(),
            at: Vector::new(5_000, 0),
            orientation: Orientation::R270,
        });
        top.add_instance(Instance {
            cell: "leaf".into(),
            at: Vector::new(0, 5_000),
            orientation: Orientation::MX,
        });
        lib.add_cell(top);

        let bytes = write_library(&lib).unwrap();
        let back = read_library(&bytes).unwrap();
        assert_eq!(back.name(), "testlib");
        let leaf2 = back.cell("leaf").unwrap();
        assert_eq!(
            leaf2.shapes(Layer::Poly),
            lib.cell("leaf").unwrap().shapes(Layer::Poly)
        );
        assert_eq!(leaf2.labels().len(), 1);
        assert_eq!(leaf2.labels()[0].text, "out");
        let top2 = back.cell("top").unwrap();
        assert_eq!(top2.instances().len(), 2);
        assert_eq!(top2.instances()[0].orientation, Orientation::R270);
        assert_eq!(top2.instances()[1].orientation, Orientation::MX);
        // Flattened geometry identical.
        let f1 = lib.flatten("top").unwrap();
        let f2 = back.flatten("top").unwrap();
        assert_eq!(f1.shapes(Layer::Poly).len(), f2.shapes(Layer::Poly).len());
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut lib = Library::new("l");
        lib.add_cell(Cell::new("c"));
        let bytes = write_library(&lib).unwrap();
        for cut in [1usize, 3, bytes.len() / 2, bytes.len() - 1] {
            let res = read_library(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn non_gds_input_rejected() {
        // Well-framed record whose tag is BGNLIB, not HEADER.
        let not_header = [0x00, 0x06, 0x01, 0x02, 0x00, 0x00];
        assert_eq!(read_library(&not_header), Err(GdsError::NotGds));
        // Garbage whose implied record length overruns the buffer.
        assert_eq!(
            read_library(b"hello world, this is not gds "),
            Err(GdsError::Truncated)
        );
        assert_eq!(read_library(&[]), Err(GdsError::Truncated));
    }

    #[test]
    fn l_shaped_boundary_is_decomposed() {
        // Hand-craft a stream with an L-shaped BOUNDARY.
        let mut w = Writer { out: Vec::new() };
        w.int16s(HEADER, &[600]);
        w.int16s(BGNLIB, &[0; 12]);
        w.ascii(LIBNAME, "lib");
        w.real8s(UNITS, &[1e-3, 1e-9]);
        w.int16s(BGNSTR, &[0; 12]);
        w.ascii(STRNAME, "lshape");
        w.record(BOUNDARY, &[]);
        w.int16s(LAYER_REC, &[Layer::Metal1.gds_number()]);
        w.int16s(DATATYPE, &[0]);
        let pts = [
            (0, 0),
            (30, 0),
            (30, 10),
            (10, 10),
            (10, 30),
            (0, 30),
            (0, 0),
        ];
        let xy: Vec<i32> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        w.int32s(XY, &xy);
        w.record(ENDEL, &[]);
        w.record(ENDSTR, &[]);
        w.record(ENDLIB, &[]);

        let lib = read_library(&w.out).unwrap();
        let cell = lib.cell("lshape").unwrap();
        let area: i128 = cell.shapes(Layer::Metal1).iter().map(|r| r.area()).sum();
        assert_eq!(area, 500);
        assert!(cell.shapes(Layer::Metal1).len() >= 2);
    }

    #[test]
    fn unknown_layer_number_rejected() {
        let mut w = Writer { out: Vec::new() };
        w.int16s(HEADER, &[600]);
        w.ascii(LIBNAME, "lib");
        w.int16s(BGNSTR, &[0; 12]);
        w.ascii(STRNAME, "c");
        w.record(BOUNDARY, &[]);
        w.int16s(LAYER_REC, &[42]);
        w.int16s(DATATYPE, &[0]);
        w.int32s(XY, &[0, 0, 1, 0, 1, 1, 0, 1, 0, 0]);
        w.record(ENDEL, &[]);
        w.record(ENDSTR, &[]);
        w.record(ENDLIB, &[]);
        assert_eq!(read_library(&w.out), Err(GdsError::UnknownLayer(42)));
    }
}
