//! Mask layers of the single-poly, double-metal CMOS process.

/// A mask layer.
///
/// The set matches the technology of the paper's VCO (single poly,
/// double metal CMOS) plus the well needed to distinguish device
/// polarity. GDSII layer numbers follow a conventional assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// N-well: PMOS devices sit in it. Not a routing conductor.
    Nwell,
    /// Active (diffusion) area: transistor sources/drains and channels.
    Active,
    /// Polysilicon: gates and short local interconnect.
    Poly,
    /// Contact cut: connects Metal1 down to Poly or Active.
    Contact,
    /// First-level metal.
    Metal1,
    /// Via cut: connects Metal1 and Metal2.
    Via1,
    /// Second-level metal.
    Metal2,
}

impl Layer {
    /// All layers, in process order.
    pub const ALL: [Layer; 7] = [
        Layer::Nwell,
        Layer::Active,
        Layer::Poly,
        Layer::Contact,
        Layer::Metal1,
        Layer::Via1,
        Layer::Metal2,
    ];

    /// Layers that carry signal nets (participate in connectivity
    /// extraction as conductors).
    pub const CONDUCTORS: [Layer; 4] = [Layer::Active, Layer::Poly, Layer::Metal1, Layer::Metal2];

    /// Cut layers: they do not form nets themselves but join the
    /// conductors they touch.
    pub const CUTS: [Layer; 2] = [Layer::Contact, Layer::Via1];

    /// True for layers that carry nets.
    pub fn is_conductor(&self) -> bool {
        matches!(
            self,
            Layer::Active | Layer::Poly | Layer::Metal1 | Layer::Metal2
        )
    }

    /// True for contact/via cut layers.
    pub fn is_cut(&self) -> bool {
        matches!(self, Layer::Contact | Layer::Via1)
    }

    /// The conductor layers a cut can join: `(upper, lower candidates)`.
    /// Returns `None` for non-cut layers.
    pub fn cut_connects(&self) -> Option<(Layer, &'static [Layer])> {
        match self {
            Layer::Contact => Some((Layer::Metal1, &[Layer::Poly, Layer::Active])),
            Layer::Via1 => Some((Layer::Metal2, &[Layer::Metal1])),
            _ => None,
        }
    }

    /// Conventional GDSII `LAYER` number.
    pub fn gds_number(&self) -> i16 {
        match self {
            Layer::Nwell => 1,
            Layer::Active => 2,
            Layer::Poly => 3,
            Layer::Contact => 4,
            Layer::Metal1 => 5,
            Layer::Via1 => 6,
            Layer::Metal2 => 7,
        }
    }

    /// Reverse of [`Layer::gds_number`].
    pub fn from_gds_number(n: i16) -> Option<Layer> {
        Layer::ALL.iter().copied().find(|l| l.gds_number() == n)
    }

    /// Short lowercase name used in fault identifiers
    /// (e.g. `metal1_short`, matching the paper's Fig. 4 labels).
    pub fn short_name(&self) -> &'static str {
        match self {
            Layer::Nwell => "nwell",
            Layer::Active => "diff",
            Layer::Poly => "poly",
            Layer::Contact => "cont",
            Layer::Metal1 => "metal1",
            Layer::Via1 => "via",
            Layer::Metal2 => "metal2",
        }
    }
}

impl core::fmt::Display for Layer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gds_numbers_round_trip() {
        for l in Layer::ALL {
            assert_eq!(Layer::from_gds_number(l.gds_number()), Some(l));
        }
        assert_eq!(Layer::from_gds_number(99), None);
    }

    #[test]
    fn conductor_cut_partition() {
        for l in Layer::ALL {
            assert!(!(l.is_conductor() && l.is_cut()));
        }
        assert!(Layer::Metal1.is_conductor());
        assert!(Layer::Contact.is_cut());
        assert!(!Layer::Nwell.is_conductor());
    }

    #[test]
    fn cut_connectivity_declared() {
        let (upper, lowers) = Layer::Contact.cut_connects().unwrap();
        assert_eq!(upper, Layer::Metal1);
        assert!(lowers.contains(&Layer::Poly) && lowers.contains(&Layer::Active));
        assert!(Layer::Poly.cut_connects().is_none());
    }

    #[test]
    fn display_matches_paper_nomenclature() {
        assert_eq!(Layer::Metal1.to_string(), "metal1");
        assert_eq!(Layer::Active.to_string(), "diff");
    }
}
