//! # layout — IC layout database, technology description and GDSII I/O
//!
//! This crate models everything LIFT needs from a physical design:
//!
//! * [`Layer`] — the mask layers of a single-poly, double-metal CMOS
//!   process (the technology of the paper's VCO test chip);
//! * [`Technology`] — feature size, design rules (minimum widths and
//!   spacings that determine critical areas) and layer connectivity;
//! * [`Cell`], [`Library`], [`Instance`] — hierarchical layout with
//!   orthogonal transforms, plus [`FlatLayout`] produced by flattening;
//! * [`gds`] — a from-scratch GDSII stream reader/writer so layouts can
//!   be exchanged with standard EDA tools;
//! * [`builder`] — parameterised generators (MOSFET, wires, contact
//!   stacks) used to construct the VCO layout programmatically.
//!
//! ```
//! use layout::{Cell, Layer, Technology};
//! use geom::Rect;
//!
//! let tech = Technology::generic_1um();
//! let mut cell = Cell::new("top");
//! cell.add_rect(Layer::Metal1, Rect::from_wh(0, 0, 10 * tech.lambda(), 3 * tech.lambda()));
//! assert_eq!(cell.shapes(Layer::Metal1).len(), 1);
//! ```

pub mod builder;
pub mod cell;
pub mod drc;
pub mod gds;
pub mod layer;
pub mod tech;

pub use builder::{CellBuilder, MosParams, MosStyle};
pub use cell::{Cell, FlatLayout, Instance, Label, Library, Orientation};
pub use drc::{check as drc_check, DrcRule, DrcViolation};
pub use layer::Layer;
pub use tech::{DesignRules, Technology};
