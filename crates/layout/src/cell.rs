//! Hierarchical layout cells and flattening.

use crate::layer::Layer;
use geom::{Coord, Point, Polygon, Rect, Vector};
use std::collections::BTreeMap;

/// Orthogonal placement orientation (rotation in 90° steps, optional
/// mirror about the x-axis applied before rotation — the GDSII `STRANS`
/// convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Orientation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
    /// Mirrored about the x-axis (y -> -y).
    MX,
    /// Mirrored then rotated 90°.
    MX90,
    /// Mirrored then rotated 180°.
    MX180,
    /// Mirrored then rotated 270°.
    MX270,
}

impl Orientation {
    /// Applies the orientation to a point (about the origin).
    pub fn apply(&self, p: Point) -> Point {
        let (x, y) = match self {
            Orientation::R0 => (p.x, p.y),
            Orientation::R90 => (-p.y, p.x),
            Orientation::R180 => (-p.x, -p.y),
            Orientation::R270 => (p.y, -p.x),
            Orientation::MX => (p.x, -p.y),
            Orientation::MX90 => (p.y, p.x),
            Orientation::MX180 => (-p.x, p.y),
            Orientation::MX270 => (-p.y, -p.x),
        };
        Point::new(x, y)
    }

    /// Applies the orientation to a rectangle (stays axis-aligned).
    pub fn apply_rect(&self, r: Rect) -> Rect {
        Rect::from_points(self.apply(r.ll()), self.apply(r.ur()))
    }
}

/// A placed instance of another cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Name of the referenced cell.
    pub cell: String,
    /// Translation applied after orientation.
    pub at: Vector,
    /// Orthogonal orientation.
    pub orientation: Orientation,
}

/// A text label attaching a net or pin name to a point on a conductor
/// layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// The labelled layer.
    pub layer: Layer,
    /// Anchor point; the net containing a shape under this point gets
    /// the name.
    pub at: Point,
    /// The net/pin name.
    pub text: String,
}

/// A layout cell: per-layer rectangles, labels, and instances of other
/// cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cell {
    name: String,
    shapes: BTreeMap<Layer, Vec<Rect>>,
    labels: Vec<Label>,
    instances: Vec<Instance>,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(name: impl Into<String>) -> Self {
        Cell {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a rectangle on a layer. Empty rectangles are ignored.
    pub fn add_rect(&mut self, layer: Layer, rect: Rect) {
        if !rect.is_empty() {
            self.shapes.entry(layer).or_default().push(rect);
        }
    }

    /// Adds a rectilinear polygon, decomposed into rectangles.
    pub fn add_polygon(&mut self, layer: Layer, poly: &Polygon) {
        for r in poly.to_region().rects() {
            self.add_rect(layer, *r);
        }
    }

    /// Adds a text label.
    pub fn add_label(&mut self, layer: Layer, at: Point, text: impl Into<String>) {
        self.labels.push(Label {
            layer,
            at,
            text: text.into(),
        });
    }

    /// Places an instance of another cell.
    pub fn add_instance(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Shapes on `layer` (empty slice when none).
    pub fn shapes(&self, layer: Layer) -> &[Rect] {
        self.shapes.get(&layer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Layers with at least one shape.
    pub fn used_layers(&self) -> Vec<Layer> {
        self.shapes
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(l, _)| *l)
            .collect()
    }

    /// Bounding box of the cell's own shapes (instances excluded).
    pub fn local_bounding_box(&self) -> Option<Rect> {
        let mut it = self.shapes.values().flatten();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }
}

/// A collection of cells addressed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Library {
    name: String,
    cells: BTreeMap<String, Cell>,
}

/// Errors produced by library operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// A cell instance references a name not present in the library.
    MissingCell(String),
    /// Instance graph contains a cycle through the named cell.
    RecursiveHierarchy(String),
}

impl core::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LibraryError::MissingCell(n) => write!(f, "instance references missing cell `{n}`"),
            LibraryError::RecursiveHierarchy(n) => {
                write!(f, "recursive hierarchy through cell `{n}`")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            cells: Default::default(),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a cell; returns the previous cell of the same
    /// name, if any.
    pub fn add_cell(&mut self, cell: Cell) -> Option<Cell> {
        self.cells.insert(cell.name().to_string(), cell)
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Iterates over all cells in name order.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Flattens `top` and everything below it into a single-level
    /// layout.
    ///
    /// # Errors
    /// Returns [`LibraryError::MissingCell`] for dangling references and
    /// [`LibraryError::RecursiveHierarchy`] when the instance graph
    /// cycles.
    pub fn flatten(&self, top: &str) -> Result<FlatLayout, LibraryError> {
        let mut flat = FlatLayout::default();
        let mut stack: Vec<String> = Vec::new();
        self.flatten_into(
            top,
            Vector::new(0, 0),
            Orientation::R0,
            &mut flat,
            &mut stack,
        )?;
        Ok(flat)
    }

    fn flatten_into(
        &self,
        name: &str,
        at: Vector,
        orient: Orientation,
        out: &mut FlatLayout,
        stack: &mut Vec<String>,
    ) -> Result<(), LibraryError> {
        if stack.iter().any(|n| n == name) {
            return Err(LibraryError::RecursiveHierarchy(name.to_string()));
        }
        let cell = self
            .cells
            .get(name)
            .ok_or_else(|| LibraryError::MissingCell(name.to_string()))?;
        stack.push(name.to_string());
        for (layer, rects) in &cell.shapes {
            let dst = out.shapes.entry(*layer).or_default();
            for r in rects {
                dst.push(orient.apply_rect(*r).translated(at.dx, at.dy));
            }
        }
        for label in &cell.labels {
            out.labels.push(Label {
                layer: label.layer,
                at: orient.apply(label.at) + at,
                text: label.text.clone(),
            });
        }
        for inst in &cell.instances {
            // Compose: child point -> child orient -> child offset, then
            // parent orient -> parent offset. For orthogonal transforms
            // the composition is "rotate child placement by parent".
            let child_at_parent = orient.apply(Point::new(inst.at.dx, inst.at.dy));
            let combined_at = Vector::new(child_at_parent.x + at.dx, child_at_parent.y + at.dy);
            let combined_orient = compose(orient, inst.orientation);
            self.flatten_into(&inst.cell, combined_at, combined_orient, out, stack)?;
        }
        stack.pop();
        Ok(())
    }
}

/// Composition `outer ∘ inner` of two orthogonal orientations.
fn compose(outer: Orientation, inner: Orientation) -> Orientation {
    // Probe with two basis points to identify the composed transform.
    let probe = |o: Orientation, p: Point| o.apply(p);
    let e1 = probe(outer, probe(inner, Point::new(1, 0)));
    let e2 = probe(outer, probe(inner, Point::new(0, 1)));
    for cand in [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MX90,
        Orientation::MX180,
        Orientation::MX270,
    ] {
        if cand.apply(Point::new(1, 0)) == e1 && cand.apply(Point::new(0, 1)) == e2 {
            return cand;
        }
    }
    unreachable!("orthogonal transforms are closed under composition")
}

/// A flattened layout: all shapes in top-cell coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatLayout {
    /// Per-layer rectangles.
    pub shapes: BTreeMap<Layer, Vec<Rect>>,
    /// All labels.
    pub labels: Vec<Label>,
}

impl FlatLayout {
    /// Shapes on `layer` (empty slice when none).
    pub fn shapes(&self, layer: Layer) -> &[Rect] {
        self.shapes.get(&layer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total shape count across layers.
    pub fn shape_count(&self) -> usize {
        self.shapes.values().map(Vec::len).sum()
    }

    /// Bounding box over all layers.
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut it = self.shapes.values().flatten();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }

    /// Total drawn area of `layer` (overlaps counted once), in nm².
    pub fn layer_area(&self, layer: Layer) -> i128 {
        geom::Region::from_rects(self.shapes(layer).iter().copied()).area()
    }
}

/// Coordinate used by flattening helpers.
pub type FlatCoord = Coord;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_rotates_rects() {
        let r = Rect::new(0, 0, 10, 4);
        assert_eq!(Orientation::R90.apply_rect(r), Rect::new(-4, 0, 0, 10));
        assert_eq!(Orientation::R180.apply_rect(r), Rect::new(-10, -4, 0, 0));
        assert_eq!(Orientation::MX.apply_rect(r), Rect::new(0, -4, 10, 0));
    }

    #[test]
    fn orientation_composition_closure() {
        // compose() must terminate and agree with sequential application
        // for every pair.
        let all = [
            Orientation::R0,
            Orientation::R90,
            Orientation::R180,
            Orientation::R270,
            Orientation::MX,
            Orientation::MX90,
            Orientation::MX180,
            Orientation::MX270,
        ];
        let p = Point::new(3, 7);
        for a in all {
            for b in all {
                let composed = compose(a, b);
                assert_eq!(composed.apply(p), a.apply(b.apply(p)), "{a:?} ∘ {b:?}");
            }
        }
    }

    #[test]
    fn flatten_applies_transform_chain() {
        let mut lib = Library::new("lib");
        let mut leaf = Cell::new("leaf");
        leaf.add_rect(Layer::Metal1, Rect::new(0, 0, 10, 2));
        lib.add_cell(leaf);

        let mut mid = Cell::new("mid");
        mid.add_instance(Instance {
            cell: "leaf".into(),
            at: Vector::new(100, 0),
            orientation: Orientation::R90,
        });
        lib.add_cell(mid);

        let mut top = Cell::new("top");
        top.add_instance(Instance {
            cell: "mid".into(),
            at: Vector::new(0, 1000),
            orientation: Orientation::R0,
        });
        lib.add_cell(top);

        let flat = lib.flatten("top").unwrap();
        let m1 = flat.shapes(Layer::Metal1);
        assert_eq!(m1.len(), 1);
        // leaf rect rotated 90 -> [-2,0..0,10], moved by (100,0) -> [98,0..100,10], then +(0,1000)
        assert_eq!(m1[0], Rect::new(98, 1000, 100, 1010));
    }

    #[test]
    fn flatten_detects_recursion() {
        let mut lib = Library::new("lib");
        let mut a = Cell::new("a");
        a.add_instance(Instance {
            cell: "b".into(),
            at: Vector::new(0, 0),
            orientation: Orientation::R0,
        });
        let mut b = Cell::new("b");
        b.add_instance(Instance {
            cell: "a".into(),
            at: Vector::new(0, 0),
            orientation: Orientation::R0,
        });
        lib.add_cell(a);
        lib.add_cell(b);
        assert!(matches!(
            lib.flatten("a"),
            Err(LibraryError::RecursiveHierarchy(_))
        ));
    }

    #[test]
    fn flatten_missing_cell_errors() {
        let mut lib = Library::new("lib");
        let mut top = Cell::new("top");
        top.add_instance(Instance {
            cell: "ghost".into(),
            at: Vector::new(0, 0),
            orientation: Orientation::R0,
        });
        lib.add_cell(top);
        assert_eq!(
            lib.flatten("top"),
            Err(LibraryError::MissingCell("ghost".into()))
        );
    }

    #[test]
    fn labels_are_transformed() {
        let mut lib = Library::new("lib");
        let mut leaf = Cell::new("leaf");
        leaf.add_rect(Layer::Metal1, Rect::new(0, 0, 10, 10));
        leaf.add_label(Layer::Metal1, Point::new(5, 5), "vdd");
        lib.add_cell(leaf);
        let mut top = Cell::new("top");
        top.add_instance(Instance {
            cell: "leaf".into(),
            at: Vector::new(20, 0),
            orientation: Orientation::R0,
        });
        lib.add_cell(top);
        let flat = lib.flatten("top").unwrap();
        assert_eq!(flat.labels.len(), 1);
        assert_eq!(flat.labels[0].at, Point::new(25, 5));
        assert_eq!(flat.labels[0].text, "vdd");
    }

    #[test]
    fn layer_area_deduplicates_overlap() {
        let mut lib = Library::new("lib");
        let mut c = Cell::new("c");
        c.add_rect(Layer::Poly, Rect::new(0, 0, 10, 10));
        c.add_rect(Layer::Poly, Rect::new(5, 0, 15, 10));
        lib.add_cell(c);
        let flat = lib.flatten("c").unwrap();
        assert_eq!(flat.layer_area(Layer::Poly), 150);
    }
}
