//! Technology description: feature size, design rules, layer stack.
//!
//! Minimum widths and spacings are the quantities that determine defect
//! critical areas: a spot defect shorts two wires when its diameter
//! exceeds their spacing, and opens a wire when it exceeds the width.

use crate::layer::Layer;
use geom::Coord;
use std::collections::BTreeMap;

/// Width/spacing design rules for one layer, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignRules {
    /// Minimum drawn width.
    pub min_width: Coord,
    /// Minimum same-layer spacing.
    pub min_spacing: Coord,
}

/// A process technology: lambda (half feature size), per-layer rules and
/// a handful of named inter-layer rules.
///
/// [`Technology::generic_1um`] models the paper's fabrication process: a
/// single-poly, double-metal CMOS line with roughly 1 µm features,
/// expressed in MOSIS-style scalable rules with λ = 500 nm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Technology {
    name: String,
    lambda: Coord,
    rules: BTreeMap<Layer, DesignRules>,
    /// Cut (contact/via) square size.
    cut_size: Coord,
    /// Required conductor overlap around a cut.
    cut_surround: Coord,
    /// Poly gate extension beyond active.
    gate_extension: Coord,
    /// Active (source/drain) extension beyond the gate.
    sd_extension: Coord,
    /// N-well surround of PMOS active.
    nwell_surround: Coord,
}

impl Technology {
    /// The generic single-poly double-metal 1 µm CMOS process used by the
    /// whole reproduction (λ = 500 nm).
    pub fn generic_1um() -> Self {
        let l = 500; // lambda in nm
        let mut rules = BTreeMap::new();
        rules.insert(
            Layer::Nwell,
            DesignRules {
                min_width: 10 * l,
                min_spacing: 10 * l,
            },
        );
        rules.insert(
            Layer::Active,
            DesignRules {
                min_width: 3 * l,
                min_spacing: 3 * l,
            },
        );
        rules.insert(
            Layer::Poly,
            DesignRules {
                min_width: 2 * l,
                min_spacing: 2 * l,
            },
        );
        rules.insert(
            Layer::Contact,
            DesignRules {
                min_width: 2 * l,
                min_spacing: 2 * l,
            },
        );
        rules.insert(
            Layer::Metal1,
            DesignRules {
                min_width: 3 * l,
                min_spacing: 3 * l,
            },
        );
        rules.insert(
            Layer::Via1,
            DesignRules {
                min_width: 2 * l,
                min_spacing: 3 * l,
            },
        );
        rules.insert(
            Layer::Metal2,
            DesignRules {
                min_width: 3 * l,
                min_spacing: 4 * l,
            },
        );
        Technology {
            name: "generic-1um-2m1p".to_string(),
            lambda: l,
            rules,
            cut_size: 2 * l,
            cut_surround: l,
            gate_extension: 2 * l,
            // 1λ gate-to-contact + 2λ contact + 1λ active overlap.
            sd_extension: 4 * l,
            nwell_surround: 5 * l,
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// λ in nanometres.
    pub fn lambda(&self) -> Coord {
        self.lambda
    }

    /// Design rules for `layer`.
    ///
    /// # Panics
    /// Panics if the layer has no rules (all layers of
    /// [`Technology::generic_1um`] do).
    pub fn rules(&self, layer: Layer) -> DesignRules {
        self.rules[&layer]
    }

    /// Contact/via square edge length.
    pub fn cut_size(&self) -> Coord {
        self.cut_size
    }

    /// Conductor overlap required around a cut.
    pub fn cut_surround(&self) -> Coord {
        self.cut_surround
    }

    /// Poly gate extension beyond the channel.
    pub fn gate_extension(&self) -> Coord {
        self.gate_extension
    }

    /// Source/drain diffusion extension beyond the gate edge.
    pub fn sd_extension(&self) -> Coord {
        self.sd_extension
    }

    /// N-well surround of PMOS active.
    pub fn nwell_surround(&self) -> Coord {
        self.nwell_surround
    }

    /// Database units per user micron (nm per µm).
    pub fn db_per_um(&self) -> Coord {
        geom::NM_PER_UM
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::generic_1um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_tech_has_rules_for_all_layers() {
        let t = Technology::generic_1um();
        for l in Layer::ALL {
            let r = t.rules(l);
            assert!(r.min_width > 0 && r.min_spacing > 0, "{l} rules missing");
        }
    }

    #[test]
    fn metal2_spacing_wider_than_metal1() {
        // Upper metals are thicker and need more spacing — this asymmetry
        // matters for the Tab.1 defect densities (metal2 shorts are the
        // densest mechanism).
        let t = Technology::generic_1um();
        assert!(t.rules(Layer::Metal2).min_spacing > t.rules(Layer::Metal1).min_spacing);
    }

    #[test]
    fn lambda_consistency() {
        let t = Technology::generic_1um();
        assert_eq!(t.lambda(), 500);
        assert_eq!(t.rules(Layer::Poly).min_width, 2 * t.lambda());
        assert_eq!(t.cut_size(), 2 * t.lambda());
    }
}
