//! The end-to-end CAT flow.
//!
//! # Quickstart
//!
//! One [`CatSystem`] per design: extraction + LIFT run once, then any
//! number of campaigns are configured through the builder and executed
//! over LIFT's ranked fault list:
//!
//! ```no_run
//! use cat_core::{CatError, CatSystem};
//! use extract::ExtractOptions;
//! use lift::LiftOptions;
//! use spice::tran::TranSpec;
//!
//! # fn testbench(sys: &CatSystem) -> spice::Circuit { sys.circuit.clone() }
//! let (flat, tech) = vco::vco_layout();
//! let sys = CatSystem::from_layout(
//!     &flat, &tech,
//!     &ExtractOptions::default(),
//!     &LiftOptions::default(),
//! )?;
//! let campaign = sys
//!     .campaign_builder()
//!     .testbench(testbench(&sys))
//!     .tran(TranSpec::new(10e-9, 4e-6).with_uic())
//!     .observe("11")          // any-detect: call again for more pins
//!     .early_stop(true)       // drop each fault once detected
//!     .build()?;
//! let result = sys.simulate(&campaign)?;
//! println!("coverage {:.1} %", result.final_coverage());
//! # Ok::<(), CatError>(())
//! ```
//!
//! Every fallible step funnels into [`CatError`], the crate-wide error
//! type; long campaigns can stream per-fault progress through
//! [`CatSystem::simulate_with_progress`].
//!
//! # Deprecation path
//!
//! The pre-0.2 positional entry points [`CatSystem::campaign`] and
//! [`CatSystem::run_campaign`] still compile behind `#[deprecated]`
//! shims for one release; they forward to the builder and will be
//! removed afterwards. Migrate by listing the same five settings as
//! builder calls (`testbench`, `tran`, `observe`, `detection`,
//! `model`).

use anafault::{
    Campaign, CampaignBuilder, CampaignProgress, CampaignReport, CampaignResult, ConfigError,
    DetectionSpec, Fault, HardFaultModel, InjectError,
};
use extract::{ExtractError, ExtractOptions, ExtractedNetlist};
use layout::{FlatLayout, Technology};
use lift::{extract_faults, LiftOptions, LiftResult};
use spice::tran::TranSpec;
use spice::{Circuit, SpiceError};

/// The unified error type of the CAT system: everything a flow can
/// raise — extraction, simulation, fault injection and campaign
/// configuration — converts into this via `From`, so `?` composes
/// across layers.
#[derive(Debug)]
pub enum CatError {
    /// Circuit extraction failed.
    Extract(ExtractError),
    /// Simulation failed.
    Spice(SpiceError),
    /// Fault injection failed (outside a campaign, where it would be
    /// recorded per fault instead).
    Inject(InjectError),
    /// Campaign configuration was incomplete or inconsistent.
    Config(ConfigError),
}

impl core::fmt::Display for CatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CatError::Extract(e) => write!(f, "extraction: {e}"),
            CatError::Spice(e) => write!(f, "simulation: {e}"),
            CatError::Inject(e) => write!(f, "injection: {e}"),
            CatError::Config(e) => write!(f, "configuration: {e}"),
        }
    }
}

impl std::error::Error for CatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatError::Extract(e) => Some(e),
            CatError::Spice(e) => Some(e),
            CatError::Inject(e) => Some(e),
            CatError::Config(e) => Some(e),
        }
    }
}

impl From<ExtractError> for CatError {
    fn from(e: ExtractError) -> Self {
        CatError::Extract(e)
    }
}

impl From<SpiceError> for CatError {
    fn from(e: SpiceError) -> Self {
        CatError::Spice(e)
    }
}

impl From<InjectError> for CatError {
    fn from(e: InjectError) -> Self {
        CatError::Inject(e)
    }
}

impl From<ConfigError> for CatError {
    fn from(e: ConfigError) -> Self {
        CatError::Config(e)
    }
}

/// The assembled CAT system for one design: extracted netlist,
/// simulation circuit and ranked realistic fault list.
#[derive(Debug, Clone)]
pub struct CatSystem {
    /// Geometric/electrical extraction result.
    pub netlist: ExtractedNetlist,
    /// The extracted circuit (no testbench yet).
    pub circuit: Circuit,
    /// LIFT's ranked weighted fault list.
    pub lift: LiftResult,
}

impl CatSystem {
    /// Runs extraction and LIFT on a flattened layout.
    ///
    /// # Errors
    /// Propagates extraction failures ([`CatError::Extract`]).
    pub fn from_layout(
        flat: &FlatLayout,
        tech: &Technology,
        extract_options: &ExtractOptions,
        lift_options: &LiftOptions,
    ) -> Result<Self, CatError> {
        let netlist = extract::extract(flat, tech, extract_options)?;
        let circuit = netlist.to_circuit("extracted", extract_options);
        let lift = extract_faults(&netlist, tech, lift_options);
        Ok(CatSystem {
            netlist,
            circuit,
            lift,
        })
    }

    /// The simulation-ready fault list.
    pub fn fault_list(&self) -> Vec<Fault> {
        self.lift.fault_list()
    }

    /// Starts configuring a campaign (see [`CampaignBuilder`]). The
    /// caller supplies the testbench — usually [`CatSystem::circuit`]
    /// plus sources — the transient, and the observed node(s).
    pub fn campaign_builder(&self) -> CampaignBuilder {
        Campaign::builder()
    }

    /// Runs `campaign` over LIFT's ranked fault list, blocking until
    /// every fault is simulated.
    ///
    /// # Errors
    /// Fails when the nominal simulation fails ([`CatError::Spice`]).
    pub fn simulate(&self, campaign: &Campaign) -> Result<CampaignResult, CatError> {
        Ok(campaign.run(&self.fault_list())?)
    }

    /// Runs `campaign` over LIFT's ranked fault list, streaming one
    /// [`CampaignProgress`] event per completed fault.
    ///
    /// # Errors
    /// Fails when the nominal simulation fails ([`CatError::Spice`]).
    pub fn simulate_with_progress(
        &self,
        campaign: &Campaign,
        on_event: impl FnMut(&CampaignProgress),
    ) -> Result<CampaignResult, CatError> {
        let faults = self.fault_list();
        Ok(campaign.session(&faults).run_with_progress(on_event)?)
    }

    /// Runs `campaign` and aggregates the records into a
    /// [`CampaignReport`] — the one-call entry point for flows that
    /// only need the run's summary statistics and telemetry.
    ///
    /// # Errors
    /// Fails when the nominal simulation fails ([`CatError::Spice`]).
    pub fn simulate_reported(
        &self,
        campaign: &Campaign,
    ) -> Result<(CampaignResult, CampaignReport), CatError> {
        let result = self.simulate(campaign)?;
        let report = result.report();
        Ok((result, report))
    }

    /// Builds a campaign over a caller-prepared testbench circuit.
    #[deprecated(
        since = "0.2.0",
        note = "configure campaigns with `CatSystem::campaign_builder()` instead"
    )]
    pub fn campaign(
        &self,
        testbench: Circuit,
        tran: TranSpec,
        observe: &str,
        detection: DetectionSpec,
        model: HardFaultModel,
    ) -> Campaign {
        Campaign::builder()
            .testbench(testbench)
            .tran(tran)
            .observe(observe)
            .detection(detection)
            .model(model)
            .build()
            .expect("all mandatory settings are present")
    }

    /// Convenience: run the whole fault simulation with LIFT's list.
    #[deprecated(
        since = "0.2.0",
        note = "use `CatSystem::campaign_builder()` + `CatSystem::simulate()` instead"
    )]
    pub fn run_campaign(
        &self,
        testbench: Circuit,
        tran: TranSpec,
        observe: &str,
        detection: DetectionSpec,
        model: HardFaultModel,
    ) -> Result<CampaignResult, SpiceError> {
        #[allow(deprecated)]
        self.campaign(testbench, tran, observe, detection, model)
            .run(&self.fault_list())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::{ElementKind, Waveform};

    #[test]
    fn full_flow_on_vco_layout() {
        let (flat, tech) = vco::vco_layout();
        let lift_options = LiftOptions {
            ports: vec!["vdd".into(), "0".into(), "1".into(), "11".into()],
            ..LiftOptions::default()
        };
        let sys = CatSystem::from_layout(&flat, &tech, &ExtractOptions::default(), &lift_options)
            .unwrap();
        assert_eq!(sys.netlist.mosfets.len(), 26);
        assert!(sys.lift.stats.total() > 20, "stats: {:?}", sys.lift.stats);
        assert!(sys.lift.stats.bridges > 0);
        assert!(sys.lift.stats.stuck_opens + sys.lift.stats.line_opens > 0);
        // Probabilities are ranked descending.
        let ps: Vec<f64> = sys.lift.faults.iter().map(|f| f.probability).collect();
        assert!(ps.windows(2).all(|w| w[0] >= w[1]));
        assert!(sys.circuit.validate().is_ok());
    }

    #[test]
    fn campaign_runs_on_extracted_circuit() {
        let (flat, tech) = vco::vco_layout();
        let sys = CatSystem::from_layout(
            &flat,
            &tech,
            &ExtractOptions::default(),
            &LiftOptions::default(),
        )
        .unwrap();
        // Attach the paper's testbench to the extracted circuit.
        let mut tb = sys.circuit.clone();
        let vdd = tb.node("vdd");
        let vin = tb.node("1");
        tb.add(
            "VDD",
            vec![vdd, spice::Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 0.0,
                    tr: 50e-9,
                    tf: 50e-9,
                    pw: f64::INFINITY,
                    period: f64::INFINITY,
                },
            },
        );
        tb.add(
            "VIN",
            vec![vin, spice::Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(2.2),
            },
        );
        // Short campaign: top 10 faults only (full campaign is the
        // benchmark's job).
        let campaign = sys
            .campaign_builder()
            .testbench(tb)
            .tran(TranSpec::new(10e-9, 4e-6).with_uic())
            .observe("11")
            .detection(DetectionSpec::paper_fig5())
            .model(HardFaultModel::paper_resistor())
            .max_faults(10)
            .build()
            .unwrap();
        let mut events = 0usize;
        let result = sys
            .simulate_with_progress(&campaign, |_| events += 1)
            .unwrap();
        assert_eq!(result.records.len(), 10);
        assert_eq!(events, 10, "one progress event per fault");
        // The top-probability faults on this oscillator are gross
        // shorts; most should be detected.
        assert!(
            result.final_coverage() >= 50.0,
            "coverage {} too low; records: {:?}",
            result.final_coverage(),
            result
                .records
                .iter()
                .map(|r| (&r.fault.label, &r.outcome))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn deprecated_shims_still_work() {
        let (flat, tech) = vco::vco_layout();
        let sys = CatSystem::from_layout(
            &flat,
            &tech,
            &ExtractOptions::default(),
            &LiftOptions::default(),
        )
        .unwrap();
        let mut tb = sys.circuit.clone();
        vco::attach_sources(&mut tb, &vco::TestbenchParams::default());
        #[allow(deprecated)]
        let old = sys.campaign(
            tb.clone(),
            TranSpec::new(10e-9, 4e-6).with_uic(),
            "11",
            DetectionSpec::paper_fig5(),
            HardFaultModel::paper_resistor(),
        );
        let new = sys
            .campaign_builder()
            .testbench(tb)
            .tran(TranSpec::new(10e-9, 4e-6).with_uic())
            .observe("11")
            .detection(DetectionSpec::paper_fig5())
            .model(HardFaultModel::paper_resistor())
            .build()
            .unwrap();
        assert_eq!(old.observed(), new.observed());
        assert_eq!(old.detection(), new.detection());
        assert_eq!(old.model(), new.model());
    }

    #[test]
    fn cat_error_unifies_every_layer() {
        let spice_err: CatError = SpiceError::Elaboration("x".into()).into();
        let inject_err: CatError = InjectError::UnknownNode("n".into()).into();
        let config_err: CatError = ConfigError::MissingTestbench.into();
        assert!(matches!(spice_err, CatError::Spice(_)));
        assert!(matches!(inject_err, CatError::Inject(_)));
        assert!(matches!(config_err, CatError::Config(_)));
        // Display and source() are wired through.
        for e in [spice_err, inject_err, config_err] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some());
        }
    }
}
