//! The end-to-end CAT flow.

use anafault::{Campaign, CampaignResult, DetectionSpec, Fault, HardFaultModel};
use extract::{ExtractError, ExtractOptions, ExtractedNetlist};
use layout::{FlatLayout, Technology};
use lift::{extract_faults, LiftOptions, LiftResult};
use spice::tran::TranSpec;
use spice::{Circuit, SpiceError};

/// Errors from assembling the CAT system.
#[derive(Debug)]
pub enum CatError {
    /// Circuit extraction failed.
    Extract(ExtractError),
    /// Simulation failed.
    Spice(SpiceError),
}

impl core::fmt::Display for CatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CatError::Extract(e) => write!(f, "extraction: {e}"),
            CatError::Spice(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for CatError {}

impl From<ExtractError> for CatError {
    fn from(e: ExtractError) -> Self {
        CatError::Extract(e)
    }
}

impl From<SpiceError> for CatError {
    fn from(e: SpiceError) -> Self {
        CatError::Spice(e)
    }
}

/// The assembled CAT system for one design: extracted netlist,
/// simulation circuit and ranked realistic fault list.
#[derive(Debug, Clone)]
pub struct CatSystem {
    /// Geometric/electrical extraction result.
    pub netlist: ExtractedNetlist,
    /// The extracted circuit (no testbench yet).
    pub circuit: Circuit,
    /// LIFT's ranked weighted fault list.
    pub lift: LiftResult,
}

impl CatSystem {
    /// Runs extraction and LIFT on a flattened layout.
    ///
    /// # Errors
    /// Propagates extraction failures ([`CatError::Extract`]).
    pub fn from_layout(
        flat: &FlatLayout,
        tech: &Technology,
        extract_options: &ExtractOptions,
        lift_options: &LiftOptions,
    ) -> Result<Self, CatError> {
        let netlist = extract::extract(flat, tech, extract_options)?;
        let circuit = netlist.to_circuit("extracted", extract_options);
        let lift = extract_faults(&netlist, tech, lift_options);
        Ok(CatSystem {
            netlist,
            circuit,
            lift,
        })
    }

    /// The simulation-ready fault list.
    pub fn fault_list(&self) -> Vec<Fault> {
        self.lift.fault_list()
    }

    /// Builds a campaign over a caller-prepared testbench circuit
    /// (usually [`CatSystem::circuit`] plus sources).
    pub fn campaign(
        &self,
        testbench: Circuit,
        tran: TranSpec,
        observe: &str,
        detection: DetectionSpec,
        model: HardFaultModel,
    ) -> Campaign {
        Campaign {
            circuit: testbench,
            tran,
            observe: observe.to_string(),
            detection,
            model,
            threads: 0,
        }
    }

    /// Convenience: run the whole fault simulation with LIFT's list.
    ///
    /// # Errors
    /// Fails when the nominal simulation fails.
    pub fn run_campaign(
        &self,
        testbench: Circuit,
        tran: TranSpec,
        observe: &str,
        detection: DetectionSpec,
        model: HardFaultModel,
    ) -> Result<CampaignResult, SpiceError> {
        self.campaign(testbench, tran, observe, detection, model)
            .run(&self.fault_list())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::{ElementKind, Waveform};

    #[test]
    fn full_flow_on_vco_layout() {
        let (flat, tech) = vco::vco_layout();
        let lift_options = LiftOptions {
            ports: vec!["vdd".into(), "0".into(), "1".into(), "11".into()],
            ..LiftOptions::default()
        };
        let sys = CatSystem::from_layout(
            &flat,
            &tech,
            &ExtractOptions::default(),
            &lift_options,
        )
        .unwrap();
        assert_eq!(sys.netlist.mosfets.len(), 26);
        assert!(sys.lift.stats.total() > 20, "stats: {:?}", sys.lift.stats);
        assert!(sys.lift.stats.bridges > 0);
        assert!(sys.lift.stats.stuck_opens + sys.lift.stats.line_opens > 0);
        // Probabilities are ranked descending.
        let ps: Vec<f64> = sys.lift.faults.iter().map(|f| f.probability).collect();
        assert!(ps.windows(2).all(|w| w[0] >= w[1]));
        assert!(sys.circuit.validate().is_ok());
    }

    #[test]
    fn campaign_runs_on_extracted_circuit() {
        let (flat, tech) = vco::vco_layout();
        let sys = CatSystem::from_layout(
            &flat,
            &tech,
            &ExtractOptions::default(),
            &LiftOptions::default(),
        )
        .unwrap();
        // Attach the paper's testbench to the extracted circuit.
        let mut tb = sys.circuit.clone();
        let vdd = tb.node("vdd");
        let vin = tb.node("1");
        tb.add(
            "VDD",
            vec![vdd, spice::Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 0.0,
                    tr: 50e-9,
                    tf: 50e-9,
                    pw: f64::INFINITY,
                    period: f64::INFINITY,
                },
            },
        );
        tb.add(
            "VIN",
            vec![vin, spice::Circuit::GROUND],
            ElementKind::Vsource { wave: Waveform::Dc(2.2) },
        );
        // Short campaign: top 10 faults only (full campaign is the
        // benchmark's job).
        let faults: Vec<_> = sys.fault_list().into_iter().take(10).collect();
        let result = sys
            .campaign(
                tb,
                TranSpec::new(10e-9, 4e-6).with_uic(),
                "11",
                DetectionSpec::paper_fig5(),
                HardFaultModel::paper_resistor(),
            )
            .run(&faults)
            .unwrap();
        assert_eq!(result.records.len(), 10);
        // The top-probability faults on this oscillator are gross
        // shorts; most should be detected.
        assert!(
            result.final_coverage() >= 50.0,
            "coverage {} too low; records: {:?}",
            result.final_coverage(),
            result
                .records
                .iter()
                .map(|r| (&r.fault.label, &r.outcome))
                .collect::<Vec<_>>()
        );
    }
}
